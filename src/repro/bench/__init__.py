"""Benchmark runner subsystem: the repo's measured perf trajectory.

:mod:`repro.bench.runner` executes the Table 2 / Fig. 5 registry
workloads under both reachability engines, records wall time, peak
memory, and METER work counters, and writes a ``BENCH_<stamp>.json``
snapshot at the repo root.  Every perf-focused PR is judged against the
latest committed snapshot — see the BENCH section in ROADMAP.md for the
file format and how to read the trajectory.
"""

from repro.bench.runner import run_suite, write_bench_json, compare_bench

__all__ = ["run_suite", "write_bench_json", "compare_bench"]
