"""Benchmark runner: Table 2 / Fig. 5 workloads → ``BENCH_<stamp>.json``.

Each workload is run in every requested *mode*:

``optimized``
    Current defaults — dense Hopcroft canonicalization
    (:mod:`repro.automata.dense`), batched frontier expansion (symbolic
    *and* explicit: the explicit lane runs the sharded, view-batched
    interned engine), interned symbol order, hash-consed canonical DFAs.
``legacy``
    The seed pipeline kept in-tree for comparison — Moore partition
    refinement (``canonical.backend("moore")``) and per-state frontier
    expansion (``SymbolicReach(batched=False)`` /
    ``scheme1_rk(batched=False)`` on the explicit lane).
``parallel``
    Explicit lanes only: the optimized pipeline with ``jobs=2``
    multiprocess view saturation (:mod:`repro.reach.parallel`) — the
    scale-out axis, measured cold (worker pools are torn down between
    repetitions like every other cache).

The suite-wide ``--jobs`` value applies to the ``optimized`` explicit
lane, is recorded top-level in the payload, and baselines are only
comparable when their ``jobs`` values match (a parallel run must not be
gated against a serial baseline or vice versa).

Wall time is best-of-``repeats`` (first run's METER delta and peak
memory are recorded; caches are cleared before every repetition so runs
are cold).  A ``calibration_seconds`` pure-Python spin is included so
two BENCH files from different machines can be compared on normalized
time (see :func:`compare_bench`).

The JSON layout (schema ``cuba-bench/1``) is documented in ROADMAP.md's
"BENCH perf trajectory" entry; ``BENCH_*.json`` files at the repo root
are the committed perf trajectory every perf PR is judged against.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.automata import canonical
from repro.automata.ops import _sort_key
from repro.cuba.algorithm3 import algorithm3
from repro.cuba.scheme1 import scheme1_rk
from repro.errors import CubaError
from repro.models.registry import runnable_benchmarks, smallest_per_row
from repro.pds.saturation import post_star, psa_for_configs
from repro.pds.state import PDSState
from repro.reach import registry
from repro.reach.config import EngineConfig
from repro.reach.symbolic import SymbolicReach
from repro.util.caches import clear_runtime_caches
from repro.util.meter import METER, measure

SCHEMA = "cuba-bench/1"

#: METER counter prefixes worth persisting per workload.
_METER_PREFIXES = ("post_star.", "canonical.", "symbolic.", "explicit.", "wuba.")


def _meter_slice(delta: dict) -> dict:
    return {
        key: value
        for key, value in sorted(delta.items())
        if key.startswith(_METER_PREFIXES)
    }


def _clear_caches() -> None:
    """Reset every process-global cache so each repetition runs cold:
    the canonicalization memo, the Hopcroft pre-cache (PR 3), and the
    leased view-saturation worker pools (PR 4 — warm, pre-registered
    workers would otherwise carry state across repetitions; per-engine
    array tables and packed-delta caches die with the engine and need
    no reset).  Delegates to the shared
    :func:`~repro.util.caches.clear_runtime_caches` (PR 5) — the same
    cleanup the analysis server's shutdown and the store's size-pressure
    eviction hook run, so every long-lived owner of these caches clears
    them identically (the parallel module stays lazily imported inside
    it: serial bench processes never pay for, or perturb timings with,
    multiprocessing machinery)."""
    clear_runtime_caches()


def _calibrate() -> float:
    """Pure-Python spin used to normalize timings across machines.

    Best of three ~100ms runs: long enough to ride out scheduler jitter
    (a single short sample can swing tens of percent on a shared CI
    runner, which would directly scale the normalized totals the
    regression gate compares), best-of because noise only ever slows a
    spin down.
    """
    best = None
    for _ in range(3):
        start = time.perf_counter()
        total = 0
        for i in range(1_500_000):
            total += i * i % 7
        assert total >= 0
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


#: Workloads slower than this run once — repeating them buys noise
#: reduction nobody needs at that timescale.
_SINGLE_RUN_THRESHOLD = 3.0


def _measured(fn, repeats: int, memory: bool = False) -> dict:
    """Best-of-``repeats`` wall time; METER delta from run 1.

    Wall time is taken *untraced*: ``tracemalloc`` multiplies runtime
    several-fold and skews allocation-heavy code paths, so memory (via
    :func:`repro.util.meter.measure`) is an opt-in extra run.
    """
    _clear_caches()
    before = METER.snapshot()
    start = time.perf_counter()
    result = fn()
    best = time.perf_counter() - start
    record = {
        "seconds": best,
        "meter": _meter_slice(METER.delta(before)),
    }
    if best < 0.05:
        # Millisecond-scale workloads sit at the scheduler-jitter noise
        # floor; timeit-style batching (time k iterations per sample,
        # divide) averages the jitter away inside each sample.
        k = max(2, int(0.1 / max(best, 1e-5)))
        for _ in range(max(3, repeats)):
            start = time.perf_counter()
            for _i in range(k):
                _clear_caches()
                fn()
            record["seconds"] = min(
                record["seconds"], (time.perf_counter() - start) / k
            )
    elif best < _SINGLE_RUN_THRESHOLD:
        for _ in range(max(repeats, 5) - 1):
            _clear_caches()
            start = time.perf_counter()
            fn()
            record["seconds"] = min(record["seconds"], time.perf_counter() - start)
    if memory:
        _clear_caches()
        record["peak_mb"] = round(measure(fn).peak_mb, 3)
    record["seconds"] = round(record["seconds"], 5)
    return record | _describe_result(result)


def _phase_profile(fn) -> dict:
    """One extra trace-enabled repetition (cold, like every measured
    run) aggregated by span name into ``{name: {"count", "seconds"}}``.

    Runs *outside* the timed repetitions, so the recorded wall times
    stay untraced; the profile is attached as the workload entry's
    optional ``phases`` field, which :func:`compare_bench` never reads
    (it gates ``modes.optimized.seconds`` only)."""
    from repro.obs import trace

    _clear_caches()
    trace.clear()
    trace.enable()
    try:
        fn()
    finally:
        trace.disable()
    profile: dict[str, dict] = {}
    for event in trace.take():
        slot = profile.setdefault(event["name"], {"count": 0, "seconds": 0.0})
        slot["count"] += 1
        slot["seconds"] += event["dur"]
    for slot in profile.values():
        slot["seconds"] = round(slot["seconds"], 5)
    return dict(sorted(profile.items()))


def _describe_result(result) -> dict:
    verdict = getattr(result, "verdict", None)
    if verdict is None:
        return {}
    return {"verdict": verdict.value, "bound": getattr(result, "bound", None)}


def _symbolic_run(cpds, prop, max_rounds: int, mode: str, jobs: int = 1):
    backend = "dense" if mode == "optimized" else "moore"
    batched = mode == "optimized"

    def run():
        with canonical.backend(backend):
            engine = SymbolicReach(
                cpds, incremental=True, config=EngineConfig(batched=batched)
            )
            return algorithm3(cpds, prop, engine=engine, max_rounds=max_rounds)

    return run


def _wuba_run(cpds, prop, max_rounds: int, mode: str, jobs: int = 1):
    """The WUBA lane through the generic Scheme 1 driver
    (:func:`repro.cuba.lanes.run_lane`); ``legacy`` disables the
    write-free closure memo, the lane's only cache."""
    from repro.cuba.lanes import run_lane

    config = EngineConfig(incremental=(mode != "legacy"))

    def run():
        return run_lane("wuba", cpds, prop, max_rounds=max_rounds, config=config)

    return run


#: Worker count of the opt-in ``parallel`` bench mode (end-to-end
#: advance: view saturation + sharded replay) and the floor of the
#: replay-isolating ``shard`` sub-mode.
_PARALLEL_MODE_JOBS = 2


def _explicit_run(
    cpds,
    prop,
    max_rounds: int,
    mode: str,
    jobs: int = 1,
    shards: int = 0,
    replay_backend: str = "python",
):
    backend = "moore" if mode == "legacy" else "dense"
    batched = mode != "legacy"
    parallel_saturation = True
    shard_min_work = None
    if mode == "parallel":
        jobs = max(jobs, _PARALLEL_MODE_JOBS)
    elif mode == "shard":
        # Replay sharding in isolation: saturation stays in-process and
        # every level shards, so the sub-mode measures the replay
        # fan-out itself rather than the PR 4 saturation win.
        jobs = max(shards, _PARALLEL_MODE_JOBS)
        parallel_saturation = False
        shard_min_work = 0
    elif mode == "legacy":
        jobs = 1

    config = EngineConfig(
        jobs=jobs,
        batched=batched,
        backend=replay_backend,
        shard_min_work=shard_min_work,
    )

    def run():
        with canonical.backend(backend):
            return scheme1_rk(
                cpds,
                prop,
                max_rounds=max_rounds,
                parallel_saturation=parallel_saturation,
                config=config,
            )

    return run


def _canonical_micro_inputs(benches) -> list[tuple]:
    """Saturated thread PSAs + alphabets: the automata the symbolic
    engine canonicalizes, precomputed so the measured region is pure
    canonicalization."""
    inputs = []
    for cpds in benches:
        initial = cpds.initial_state()
        for index, pds in enumerate(cpds.threads):
            psa = post_star(
                pds,
                psa_for_configs(
                    pds, [PDSState(initial.shared, initial.stacks[index])]
                ),
            )
            entries = sorted(pds.shared_states, key=_sort_key)
            inputs.append((psa.automaton, cpds.symbol_table(index), entries))
    return inputs


def _canonical_micro(inputs, repetitions: int, mode: str):
    """Canonicalize saturated thread PSAs — the symbolic engine's inner
    loop in isolation, on realistic automata."""
    backend = "dense" if mode == "optimized" else "moore"

    def run():
        from repro.automata.canonical import canonical_nfa

        signatures = 0
        with canonical.backend(backend):
            for _ in range(repetitions):
                _clear_caches()
                for automaton, table, entries in inputs:
                    for shared in entries:
                        _dfa, _sig = canonical_nfa(automaton, table, initial=[shared])
                        signatures += 1
        return signatures

    return run


def run_suite(
    *,
    quick: bool = False,
    rows: set[str] | None = None,
    modes: tuple[str, ...] = ("optimized", "legacy"),
    engines: tuple[str, ...] = ("symbolic", "explicit", "wuba"),
    max_rounds: int | None = None,
    repeats: int = 3,
    label: str | None = None,
    memory: bool = False,
    jobs: int = 1,
    shards: int = 0,
    backend: str = "auto",
    phases: bool = False,
) -> dict:
    """Run the registry workloads and return the BENCH payload dict.

    ``jobs`` configures the ``optimized`` explicit lane's worker count
    and is recorded top-level in the payload; the opt-in ``parallel``
    mode (explicit lanes only) always runs the end-to-end advance with
    at least :data:`_PARALLEL_MODE_JOBS` workers regardless.
    ``shards`` sets the replay-isolating ``shard`` sub-mode's worker
    count (0 = its :data:`_PARALLEL_MODE_JOBS` default) and is recorded
    top-level too, so payloads with mismatched shard counts are never
    gated against each other (:func:`comparable_configs`).

    ``backend`` selects the explicit lanes' replay arithmetic
    (:mod:`repro.reach.vectorized`); it is resolved here (``auto`` →
    numpy when importable) and the *resolved* value is recorded
    top-level, so a payload always names the backend that actually ran
    and mismatched-backend payloads are never gated against each other.
    """
    from repro.reach.vectorized import resolve_backend

    backend = resolve_backend(backend)
    if max_rounds is None:
        max_rounds = 6 if quick else 10
    benches = smallest_per_row() if quick else runnable_benchmarks()
    if rows:
        benches = tuple(b for b in benches if b.row.split("/")[0] in rows)

    workloads = []
    built = []
    try:
        for bench in benches:
            cpds, prop = bench.build()
            built.append(cpds)
            lanes = []
            if "symbolic" in engines:
                lanes.append(("symbolic", _symbolic_run))
            if "explicit" in engines and bench.fcr:
                lanes.append(("explicit", _explicit_run))
            if "wuba" in engines and registry.engine_class("wuba").applicable(
                cpds, prop
            ):
                # The write-unbounded family (PR 9) — only on models
                # satisfying its WCR precondition, mirroring the
                # explicit lane's FCR gate.
                lanes.append(("wuba", _wuba_run))
            for lane, maker in lanes:
                entry = {"name": bench.name, "lane": lane, "modes": {}}
                optimized_runner = None
                for mode in modes:
                    if mode in ("parallel", "shard") and lane != "explicit":
                        continue  # the multiprocess advance is explicit-only
                    kwargs = (
                        {"replay_backend": backend}
                        if maker is _explicit_run
                        else {}
                    )
                    if mode in ("parallel", "shard"):
                        runner = maker(
                            cpds, prop, max_rounds, mode,
                            jobs=jobs, shards=shards, **kwargs,
                        )
                    else:
                        runner = maker(
                            cpds, prop, max_rounds, mode, jobs=jobs, **kwargs
                        )
                    record = _measured(runner, repeats, memory=memory)
                    if mode == "parallel":
                        record["jobs"] = max(jobs, _PARALLEL_MODE_JOBS)
                    elif mode == "shard":
                        record["jobs"] = max(shards, _PARALLEL_MODE_JOBS)
                    entry["modes"][mode] = record
                    if mode == "optimized":
                        optimized_runner = runner
                if phases and optimized_runner is not None:
                    entry["phases"] = _phase_profile(optimized_runner)
                _add_speedup(entry)
                workloads.append(entry)

        if "symbolic" in engines:
            entry = {
                "name": "canonicalization microbench",
                "lane": "canonical-micro",
                "modes": {},
            }
            micro_inputs = _canonical_micro_inputs(built)
            repetitions = 2 if quick else 5
            for mode in modes:
                if mode in ("parallel", "shard"):
                    continue
                entry["modes"][mode] = _measured(
                    _canonical_micro(micro_inputs, repetitions, mode),
                    repeats,
                    memory=memory,
                )
            _add_speedup(entry)
            workloads.append(entry)
    finally:
        # The last repetition's leased worker pools would otherwise only
        # be shut down by the NEXT _measured call — which never comes:
        # leave no live child processes behind for library callers.
        _clear_caches()

    payload = {
        "schema": SCHEMA,
        "stamp": time.strftime("%Y%m%dT%H%M%SZ", time.gmtime()),
        "label": label,
        "git": _git_rev(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "quick": quick,
        "max_rounds": max_rounds,
        "jobs": jobs,
        "shards": shards,
        "backend": backend,
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "calibration_seconds": round(_calibrate(), 5),
        "workloads": workloads,
        "totals": _totals(workloads, modes),
    }
    return payload


def _add_speedup(entry: dict) -> None:
    modes = entry["modes"]
    if "optimized" in modes and "legacy" in modes and modes["optimized"]["seconds"]:
        entry["speedup_vs_legacy"] = round(
            modes["legacy"]["seconds"] / modes["optimized"]["seconds"], 2
        )
    if "optimized" in modes and "parallel" in modes and modes["parallel"]["seconds"]:
        # > 1.0 means the multiprocess end-to-end advance beat serial.
        entry["parallel_speedup"] = round(
            modes["optimized"]["seconds"] / modes["parallel"]["seconds"], 2
        )
    if "optimized" in modes and "shard" in modes and modes["shard"]["seconds"]:
        # > 1.0 means sharded replay alone beat the serial replay loop.
        entry["shard_speedup"] = round(
            modes["optimized"]["seconds"] / modes["shard"]["seconds"], 2
        )


def _totals(workloads: list, modes: tuple[str, ...]) -> dict:
    totals: dict = {}
    for mode in modes:
        totals[f"{mode}_seconds"] = round(
            sum(w["modes"][mode]["seconds"] for w in workloads if mode in w["modes"]),
            5,
        )
    if totals.get("optimized_seconds") and "legacy_seconds" in totals:
        totals["speedup_vs_legacy"] = round(
            totals["legacy_seconds"] / totals["optimized_seconds"], 2
        )
    return totals


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:  # pragma: no cover - git missing
        return None
    return out.stdout.strip() or None


# Public names for the other payload writers (the loadtest harness
# stamps ``cuba-loadtest/1`` files with the same machine calibration
# and git revision so its compare gate normalizes identically).
calibrate = _calibrate
git_rev = _git_rev


def merge_modes(payload: dict, other: dict, mode_label: str) -> int:
    """Merge ``other``'s ``optimized`` measurements into ``payload`` as an
    extra mode named ``mode_label`` (matched by workload name+lane).

    Used to graft measurements taken on a different source tree — e.g.
    the pre-PR seed — into one BENCH file as the "before" column.  The
    grafted times are kept raw: measure the two trees back-to-back on an
    idle machine (the spin-based calibration is too CPU-frequency-bound
    to rescale dict-heavy workloads reliably; it is only used for the
    coarse cross-machine CI gate in :func:`compare_bench`).  Returns the
    number of workloads merged.
    """
    theirs = {
        (w["name"], w["lane"]): w["modes"].get("optimized")
        for w in other.get("workloads", ())
    }
    merged = 0
    for entry in payload["workloads"]:
        record = theirs.get((entry["name"], entry["lane"]))
        if record is None:
            continue
        entry["modes"][mode_label] = record
        if record["seconds"] and entry["modes"].get("optimized"):
            entry[f"speedup_vs_{mode_label}"] = round(
                record["seconds"] / entry["modes"]["optimized"]["seconds"], 2
            )
        merged += 1
    if merged:
        total_before = sum(
            entry["modes"][mode_label]["seconds"]
            for entry in payload["workloads"]
            if mode_label in entry["modes"]
        )
        payload["totals"][f"{mode_label}_seconds"] = round(total_before, 5)
        if payload["totals"].get("optimized_seconds"):
            payload["totals"][f"speedup_vs_{mode_label}"] = round(
                total_before / payload["totals"]["optimized_seconds"], 2
            )
        # Per-model aggregate (all lanes of one registry row summed):
        # individual millisecond lanes jitter a few percent either way,
        # the per-model sums are the meaningful no-slowdown check.
        by_model: dict[str, dict[str, float]] = {}
        for entry in payload["workloads"]:
            if mode_label not in entry["modes"]:
                continue
            slot = by_model.setdefault(entry["name"], {"optimized": 0.0, mode_label: 0.0})
            slot["optimized"] += entry["modes"]["optimized"]["seconds"]
            slot[mode_label] += entry["modes"][mode_label]["seconds"]
        payload["totals"][f"by_model_vs_{mode_label}"] = {
            name: round(slot[mode_label] / slot["optimized"], 2)
            for name, slot in by_model.items()
            if slot["optimized"]
        }
        payload.setdefault("merged_baselines", {})[mode_label] = {
            "git": other.get("git"),
            "stamp": other.get("stamp"),
            "label": other.get("label"),
        }
    return merged


def write_bench_json(payload: dict, out_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<stamp>.json`` into ``out_dir`` and return the path."""
    path = Path(out_dir) / f"BENCH_{payload['stamp']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def latest_bench_file(root: str | Path = ".") -> Path | None:
    """The newest committed ``BENCH_*.json`` under ``root`` (by stamp)."""
    files = sorted(Path(root).glob("BENCH_*.json"))
    return files[-1] if files else None


def comparable_configs(current: dict, baseline: dict) -> bool:
    """True iff two payloads were produced under the same measurement
    configuration and their totals are meaningfully comparable.

    ``jobs`` must match too (absent = 1, the pre-PR 4 default): a
    parallel run's wall times carry worker startup/IPC and scale with
    the machine's core count, so gating them against a serial baseline
    — or vice versa — would be meaningless.  So must ``shards`` (absent
    = 0, the pre-PR 6 default): mismatched shard counts change the
    ``shard`` sub-mode's fan-out and must never be gated against each
    other.  And so must ``backend`` (absent = "python", the pre-PR 8
    default): vectorized replay changes the very loop being timed, so a
    numpy payload gated against a pure-python baseline would read the
    backend swap as a perf trajectory."""
    return (
        current.get("quick") == baseline.get("quick")
        and current.get("max_rounds") == baseline.get("max_rounds")
        and current.get("jobs", 1) == baseline.get("jobs", 1)
        and current.get("shards", 0) == baseline.get("shards", 0)
        and current.get("backend", "python") == baseline.get("backend", "python")
    )


def latest_comparable_baseline(current: dict, root: str | Path = ".") -> Path | None:
    """The newest committed ``BENCH_*.json`` whose configuration matches
    ``current`` (the CI gate's baseline selector: a committed full-run
    file must not silently become the quick lane's baseline)."""
    for path in sorted(Path(root).glob("BENCH_*.json"), reverse=True):
        try:
            candidate = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):  # pragma: no cover - corrupt file
            continue
        if comparable_configs(current, candidate):
            return path
    return None


def _lane_token(lane: str) -> str:
    """A lane name normalized for cross-file matching: registry aliases
    collapse to the canonical name (a pre-PR 9 file spelling a lane
    differently still matches), non-lane keys (``canonical-micro``)
    pass through unchanged."""
    try:
        return registry.canonical_lane(lane)
    except CubaError:
        return lane


def _optimized_seconds_by_workload(payload: dict) -> dict[tuple, float]:
    return {
        (w["name"], _lane_token(w["lane"])): w["modes"]["optimized"]["seconds"]
        for w in payload.get("workloads", ())
        if "optimized" in w.get("modes", {})
    }


#: Per-lane totals below this raw time — on *either* side — are not
#: gated individually: millisecond lanes sit at the scheduler-jitter
#: noise floor and would make the gate flaky.  Checking both sides
#: keeps the floor meaningful across machine speeds (a slow-machine
#: baseline must not force a fast machine to gate a now-tiny lane, and
#: vice versa); such lanes still count toward the overall total, which
#: is gated unconditionally.
_LANE_GATE_FLOOR_SECONDS = 0.05


def _lane_of(key: tuple) -> str:
    return key[1]


def compare_bench(
    current: dict, baseline: dict, tolerance: float = 0.25
) -> tuple[bool, list[str]]:
    """Regression gate: compare optimized totals against a baseline file.

    Only workloads present in *both* files (matched by name + lane) are
    summed, so a baseline produced with a different workload set (full
    vs ``--quick``, extra rows) cannot silently skew — or neutralize —
    the gate.  Times are normalized by each payload's
    ``calibration_seconds`` when both sides carry one, so a slower CI
    machine does not read as a regression.  Returns ``(ok, messages)``;
    ``ok`` is False when the normalized optimized total over the shared
    workloads regressed more than ``tolerance`` (fraction), **or** when
    any individual lane (``symbolic`` / ``explicit`` /
    ``canonical-micro``) with a baseline total above the noise floor
    regressed beyond the same tolerance — a symbolic speedup must not
    be allowed to mask an explicit-lane regression in the summed total.
    """
    messages: list[str] = []
    if not comparable_configs(current, baseline):
        # Summing times measured under different configurations (quick
        # vs full sweep, different round budgets) produces a ratio that
        # can hide multi-x regressions; refuse rather than neutralize
        # the gate.  CI selects its baseline via
        # :func:`latest_comparable_baseline`, so this only fires on an
        # explicitly mis-chosen --compare file.
        messages.append(
            "BASELINE NOT COMPARABLE: "
            f"current quick={current.get('quick')} max_rounds={current.get('max_rounds')} "
            f"jobs={current.get('jobs', 1)} backend={current.get('backend', 'python')} "
            f"vs baseline quick={baseline.get('quick')} max_rounds={baseline.get('max_rounds')} "
            f"jobs={baseline.get('jobs', 1)} backend={baseline.get('backend', 'python')}; "
            "pick a baseline produced with the same configuration"
        )
        return False, messages
    cur_by_workload = _optimized_seconds_by_workload(current)
    base_by_workload = _optimized_seconds_by_workload(baseline)
    shared = sorted(cur_by_workload.keys() & base_by_workload.keys())
    skipped = (cur_by_workload.keys() | base_by_workload.keys()) - set(shared)
    if skipped:
        messages.append(
            f"{len(skipped)} workload(s) present on only one side, excluded: "
            + ", ".join(f"{name} ({lane})" for name, lane in sorted(skipped))
        )
    # A whole lane on only one side must be *reported*, never silently
    # ungated: a newly landed lane has no baseline yet (it enters the
    # gate once a file containing it is committed), and a lane that
    # vanished from the current run is worth a human look.
    cur_lanes = {_lane_of(key) for key in cur_by_workload}
    base_lanes = {_lane_of(key) for key in base_by_workload}
    for lane in sorted(cur_lanes - base_lanes):
        messages.append(
            f"lane {lane}: absent from the baseline, not gated this run "
            "(gated once a baseline containing it is committed)"
        )
    for lane in sorted(base_lanes - cur_lanes):
        messages.append(
            f"lane {lane}: present in the baseline but missing from the "
            "current run, not gated"
        )
    cur_total = sum(cur_by_workload[key] for key in shared)
    base_total = sum(base_by_workload[key] for key in shared)
    messages.append(f"comparing {len(shared)} shared workload(s)")
    if not cur_total or not base_total:
        return True, messages + [
            "no overlapping measured work; nothing to compare"
        ]
    cur_cal = current.get("calibration_seconds")
    base_cal = baseline.get("calibration_seconds")
    if cur_cal and base_cal:
        cur_norm = cur_total / cur_cal
        base_norm = base_total / base_cal
        messages.append(
            f"normalized totals: current {cur_norm:.1f} vs baseline "
            f"{base_norm:.1f} (calibration {cur_cal:.4f}s / {base_cal:.4f}s)"
        )
    else:  # pragma: no cover - legacy baseline without calibration
        cur_norm, base_norm = cur_total, base_total
        messages.append(
            f"raw totals: current {cur_total:.3f}s vs baseline {base_total:.3f}s"
        )
    ratio = cur_norm / base_norm
    messages.append(f"ratio {ratio:.2f} (tolerance {1 + tolerance:.2f})")
    ok = ratio <= 1 + tolerance
    if not ok:
        messages.append(
            "PERF REGRESSION: optimized wall time regressed "
            f"{(ratio - 1) * 100:.0f}% against {baseline.get('stamp')}"
        )

    # Per-lane gate: same tolerance, applied lane by lane so one lane's
    # win cannot hide another's loss inside the total.
    scale = (base_cal / cur_cal) if (cur_cal and base_cal) else 1.0
    lanes = sorted({_lane_of(key) for key in shared})
    for lane in lanes:
        keys = [key for key in shared if _lane_of(key) == lane]
        lane_base = sum(base_by_workload[key] for key in keys)
        lane_cur = sum(cur_by_workload[key] for key in keys)
        if min(lane_base, lane_cur) < _LANE_GATE_FLOOR_SECONDS:
            messages.append(
                f"lane {lane}: {min(lane_base, lane_cur):.3f}s below the "
                f"{_LANE_GATE_FLOOR_SECONDS:.2f}s gate floor, not gated"
            )
            continue
        lane_ratio = (lane_cur * scale) / lane_base
        messages.append(
            f"lane {lane}: {len(keys)} workload(s), normalized ratio "
            f"{lane_ratio:.2f}"
        )
        if lane_ratio > 1 + tolerance:
            ok = False
            messages.append(
                f"PERF REGRESSION in lane {lane}: "
                f"{(lane_ratio - 1) * 100:.0f}% against {baseline.get('stamp')}"
            )
    return ok, messages


def main(argv: list[str] | None = None) -> int:
    """CLI used by ``benchmarks/runner.py`` and ``repro.cli bench --json``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench-runner", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--quick", action="store_true", help="smallest config per row")
    parser.add_argument("--rows", help="comma-separated row numbers, e.g. 1,5,9")
    parser.add_argument(
        "--modes",
        default="optimized,legacy",
        help="comma list: optimized,legacy,parallel,shard (parallel = "
        "explicit lanes with the jobs=2 end-to-end multiprocess advance; "
        "shard = replay sharding only, saturation in-process)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the optimized explicit lane's whole "
        "advance (recorded in the payload; baselines only compare on a "
        "match)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="worker count for the 'shard' sub-mode (0 = its default of 2; "
        "recorded in the payload; baselines only compare on a match)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default="auto",
        help="replay backend for the explicit lanes (auto = numpy when "
        "installed); the resolved value is recorded in the payload and "
        "baselines only compare on a match",
    )
    parser.add_argument(
        "--engines",
        default="symbolic,explicit,wuba",
        help="comma list of lanes: symbolic,explicit,wuba (wuba rows "
        "only appear on models satisfying its WCR precondition)",
    )
    parser.add_argument("--max-rounds", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--memory",
        action="store_true",
        help="also record tracemalloc peak memory (extra traced run each)",
    )
    parser.add_argument(
        "--phases",
        action="store_true",
        help="also record per-phase span timings (one extra trace-enabled "
        "run of the optimized mode each; the compare gate ignores the "
        "resulting 'phases' field)",
    )
    parser.add_argument("--label", help="free-form label recorded in the payload")
    parser.add_argument("--out", default=".", help="directory for BENCH_<stamp>.json")
    parser.add_argument(
        "--merge-before",
        metavar="FILE",
        help="BENCH file measured on the pre-PR tree; grafted in as mode 'before'",
    )
    parser.add_argument(
        "--compare",
        metavar="FILE",
        help="baseline BENCH file; exit 1 on regression beyond --tolerance",
    )
    parser.add_argument(
        "--compare-latest",
        metavar="DIR",
        help="compare against the newest BENCH_*.json in DIR with a matching "
        "configuration (the CI gate); records only when none exists",
    )
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument(
        "--no-write", action="store_true", help="run and compare without writing"
    )
    args = parser.parse_args(argv)

    payload = run_suite(
        quick=args.quick,
        rows=set(args.rows.split(",")) if args.rows else None,
        modes=tuple(args.modes.split(",")),
        engines=tuple(args.engines.split(",")),
        max_rounds=args.max_rounds,
        repeats=args.repeats,
        label=args.label,
        memory=args.memory,
        jobs=args.jobs,
        shards=args.shards,
        backend=args.backend,
        phases=args.phases,
    )
    print(f"backend: {payload['backend']}")
    if args.merge_before:
        other = json.loads(Path(args.merge_before).read_text())
        merged = merge_modes(payload, other, "before")
        print(f"merged {merged} 'before' measurements from {args.merge_before}")

    for entry in payload["workloads"]:
        cells = [f"{entry['name']:32s} {entry['lane']:14s}"]
        for mode, record in entry["modes"].items():
            cells.append(f"{mode}={record['seconds']:.3f}s")
        if "speedup_vs_legacy" in entry:
            cells.append(f"x{entry['speedup_vs_legacy']}")
        if "speedup_vs_before" in entry:
            cells.append(f"(x{entry['speedup_vs_before']} vs before)")
        print("  ".join(cells))
    print(f"totals: {payload['totals']}")

    status = 0
    baseline_path = Path(args.compare) if args.compare else None
    if baseline_path is None and args.compare_latest:
        baseline_path = latest_comparable_baseline(payload, args.compare_latest)
        if baseline_path is None:
            print("no comparable committed baseline found; recording only")
        else:
            print(f"comparing against {baseline_path}")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        ok, messages = compare_bench(payload, baseline, args.tolerance)
        for message in messages:
            print(message)
        status = 0 if ok else 1
    if not args.no_write:
        path = write_bench_json(payload, args.out)
        print(f"wrote {path}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
