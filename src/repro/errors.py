"""Exception hierarchy for the CUBA reproduction.

Every error raised by this library derives from :class:`CubaError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes below.
"""

from __future__ import annotations


class CubaError(Exception):
    """Base class of all errors raised by this library."""


class ModelError(CubaError):
    """A PDS/CPDS definition is malformed (bad action shape, unknown
    shared state, alphabet violation, inconsistent thread count, ...)."""


class ContextExplosionError(CubaError):
    """The explicit-state engine exceeded its divergence guard.

    Raised when a single context produces more states than the configured
    limit.  This is the symptom of a program that violates finite context
    reachability (FCR, paper Sec. 5): within one context a thread's stack
    can grow without bound, so the set of states reachable in that context
    is infinite and explicit enumeration cannot terminate.
    """

    def __init__(self, message: str, *, states_seen: int = 0) -> None:
        super().__init__(message)
        self.states_seen = states_seen


class BoundExceededError(CubaError):
    """A verification run exceeded its round / resource budget without
    reaching a verdict.  The partial result is attached for inspection."""

    def __init__(self, message: str, partial=None) -> None:
        super().__init__(message)
        self.partial = partial


class FingerprintError(CubaError):
    """An analysis input cannot be content-addressed — e.g. a property
    carrying an opaque predicate whose semantics the fingerprint cannot
    capture (see :meth:`repro.core.property.Property.fingerprint_token`)."""


class SnapshotError(CubaError):
    """An engine snapshot could not be decoded or does not belong to the
    CPDS it is being restored against.  The persistent store treats this
    as a cache miss (bad blob ⇒ recompute), never as a crash."""


class ServiceError(CubaError):
    """The analysis service rejected a request (unknown engine lane,
    unparseable payload, unsupported property spec, ...)."""


class FormatError(CubaError):
    """A textual CPDS description could not be parsed."""

    def __init__(self, message: str, *, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class BoolProgError(CubaError):
    """Base class for Boolean-program front-end errors (App. B language)."""


class LexError(BoolProgError):
    """The tokenizer met an unexpected character."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(BoolProgError):
    """The parser met an unexpected token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(BoolProgError):
    """A Boolean program is syntactically valid but ill-formed
    (undefined variable, wrong arity, duplicate label, ...)."""


class TranslationError(BoolProgError):
    """A Boolean program feature cannot be translated to a CPDS."""
