"""The sequential pushdown system ``P = (Q, Σ, Δ, qI)``."""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.errors import ModelError
from repro.pds.action import Action
from repro.pds.state import PDSState

Shared = Hashable
Symbol = Hashable


class PDS:
    """A sequential pushdown system (paper Sec. 2.1).

    Shared states and alphabet symbols are registered automatically as
    actions are added; they can also be declared up front so that a PDS
    can mention states no action touches (useful when several threads
    share ``Q``).
    """

    def __init__(
        self,
        initial_shared: Shared,
        shared_states: Iterable[Shared] = (),
        alphabet: Iterable[Symbol] = (),
        name: str = "",
    ) -> None:
        self.name = name
        self.initial_shared = initial_shared
        self._shared_states: set[Shared] = {initial_shared, *shared_states}
        self._alphabet: set[Symbol] = set(alphabet)
        self._actions: list[Action] = []
        # Enabledness index: (shared, read symbol or None) -> actions.
        self._by_trigger: dict[tuple, list[Action]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_action(self, action: Action) -> Action:
        """Register an action, updating ``Q`` and ``Σ`` as needed."""
        if None in action.read or None in action.write:
            raise ModelError("stack symbols must not be None (reserved for ε)")
        self._shared_states.add(action.from_shared)
        self._shared_states.add(action.to_shared)
        self._alphabet.update(action.read)
        self._alphabet.update(action.write)
        self._actions.append(action)
        trigger = (action.from_shared, action.read_symbol)
        self._by_trigger.setdefault(trigger, []).append(action)
        return action

    def rule(
        self,
        from_shared: Shared,
        read: Sequence[Symbol] | Symbol | None,
        to_shared: Shared,
        write: Sequence[Symbol],
        label: str = "",
    ) -> Action:
        """Shorthand: build an :class:`Action` via ``Action.make`` and add it."""
        return self.add_action(Action.make(from_shared, read, to_shared, write, label))

    def declare_symbol(self, symbol: Symbol) -> None:
        """Register a stack symbol no action mentions (e.g. an initial
        stack symbol for a thread that never reads it)."""
        if symbol is None:
            raise ModelError("stack symbols must not be None (reserved for ε)")
        self._alphabet.add(symbol)

    def declare_shared(self, shared: Shared) -> None:
        """Register a shared state no action mentions."""
        self._shared_states.add(shared)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shared_states(self) -> frozenset[Shared]:
        return frozenset(self._shared_states)

    @property
    def alphabet(self) -> frozenset[Symbol]:
        return frozenset(self._alphabet)

    @property
    def actions(self) -> tuple[Action, ...]:
        return tuple(self._actions)

    def actions_for(self, shared: Shared, top: Symbol | None) -> tuple[Action, ...]:
        """Actions triggered by thread-visible state ``(shared, top)``
        (``top is None`` means the stack is empty)."""
        return tuple(self._by_trigger.get((shared, top), ()))

    def initial_state(self, stack: Sequence[Symbol] = ()) -> PDSState:
        """``⟨qI|stack⟩``; by default the paper's ``⟨qI|ε⟩``."""
        for symbol in stack:
            if symbol not in self._alphabet:
                raise ModelError(f"initial stack symbol {symbol!r} not in alphabet")
        return PDSState(self.initial_shared, tuple(stack))

    def validate(self) -> None:
        """Check global well-formedness; raise :class:`ModelError` if broken."""
        if self.initial_shared not in self._shared_states:
            raise ModelError("initial shared state missing from Q")
        for action in self._actions:
            for symbol in (*action.read, *action.write):
                if symbol not in self._alphabet:
                    raise ModelError(f"action {action} uses unknown symbol {symbol!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = f" {self.name!r}" if self.name else ""
        return (
            f"PDS{name}(|Q|={len(self._shared_states)}, "
            f"|Σ|={len(self._alphabet)}, |Δ|={len(self._actions)})"
        )
