"""The sequential pushdown system ``P = (Q, Σ, Δ, qI)``."""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.automata.intern import SymbolTable
from repro.errors import ModelError
from repro.pds.action import Action
from repro.pds.state import PDSState

Shared = Hashable
Symbol = Hashable


class PDS:
    """A sequential pushdown system (paper Sec. 2.1).

    Shared states and alphabet symbols are registered automatically as
    actions are added; they can also be declared up front so that a PDS
    can mention states no action touches (useful when several threads
    share ``Q``).
    """

    def __init__(
        self,
        initial_shared: Shared,
        shared_states: Iterable[Shared] = (),
        alphabet: Iterable[Symbol] = (),
        name: str = "",
    ) -> None:
        self.name = name
        self.initial_shared = initial_shared
        self._shared_states: set[Shared] = {initial_shared, *shared_states}
        self._alphabet: set[Symbol] = set(alphabet)
        self._actions: list[Action] = []
        # Enabledness index: (shared, read symbol or None) -> actions.
        self._by_trigger: dict[tuple, list[Action]] = {}
        # Mutation counter: bumped whenever Q, Σ, or Δ change, so the
        # derived caches below (and per-CPDS aggregates) can validate
        # cheaply instead of rebuilding frozensets on every access.
        self._version = 0
        self._frozen_cache: tuple[int, frozenset, frozenset] | None = None
        self._trigger_cache: tuple[int, dict[tuple, tuple[Action, ...]]] | None = None
        self._symbol_table: tuple[int, SymbolTable] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_action(self, action: Action) -> Action:
        """Register an action, updating ``Q`` and ``Σ`` as needed."""
        if None in action.read or None in action.write:
            raise ModelError("stack symbols must not be None (reserved for ε)")
        self._shared_states.add(action.from_shared)
        self._shared_states.add(action.to_shared)
        self._alphabet.update(action.read)
        self._alphabet.update(action.write)
        self._actions.append(action)
        trigger = (action.from_shared, action.read_symbol)
        self._by_trigger.setdefault(trigger, []).append(action)
        self._version += 1
        return action

    def rule(
        self,
        from_shared: Shared,
        read: Sequence[Symbol] | Symbol | None,
        to_shared: Shared,
        write: Sequence[Symbol],
        label: str = "",
    ) -> Action:
        """Shorthand: build an :class:`Action` via ``Action.make`` and add it."""
        return self.add_action(Action.make(from_shared, read, to_shared, write, label))

    def declare_symbol(self, symbol: Symbol) -> None:
        """Register a stack symbol no action mentions (e.g. an initial
        stack symbol for a thread that never reads it)."""
        if symbol is None:
            raise ModelError("stack symbols must not be None (reserved for ε)")
        self._alphabet.add(symbol)
        self._version += 1

    def declare_shared(self, shared: Shared) -> None:
        """Register a shared state no action mentions."""
        self._shared_states.add(shared)
        self._version += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter (grows on any ``Q``/``Σ``/``Δ`` change)."""
        return self._version

    @property
    def shared_states(self) -> frozenset[Shared]:
        cached = self._frozen_cache
        if cached is None or cached[0] != self._version:
            cached = (
                self._version,
                frozenset(self._shared_states),
                frozenset(self._alphabet),
            )
            self._frozen_cache = cached
        return cached[1]

    @property
    def alphabet(self) -> frozenset[Symbol]:
        cached = self._frozen_cache
        if cached is None or cached[0] != self._version:
            self.shared_states  # rebuilds the shared cache entry
            cached = self._frozen_cache
        return cached[2]

    @property
    def actions(self) -> tuple[Action, ...]:
        return tuple(self._actions)

    def actions_for(self, shared: Shared, top: Symbol | None) -> tuple[Action, ...]:
        """Actions triggered by thread-visible state ``(shared, top)``
        (``top is None`` means the stack is empty)."""
        return self.trigger_index().get((shared, top), ())

    def trigger_index(self) -> dict[tuple, tuple[Action, ...]]:
        """The full ``(shared, top) -> actions`` dispatch table as an
        immutable-valued dict, rebuilt only when the PDS mutates.

        Building the index also interns the alphabet into the PDS's
        :meth:`symbol_table`, so every consumer downstream of the rule
        index (saturation, canonicalization) sees the same dense symbol
        order.  The saturation engine grabs this dict once per run
        instead of paying a method call plus tuple construction per
        popped transition.
        """
        cached = self._trigger_cache
        if cached is None or cached[0] != self._version:
            self.symbol_table()
            index = {
                trigger: tuple(actions)
                for trigger, actions in self._by_trigger.items()
            }
            cached = (self._version, index)
            self._trigger_cache = cached
        return cached[1]

    def symbol_table(self) -> SymbolTable:
        """The PDS's interned stack alphabet (dense ids, canonical order),
        rebuilt only when the alphabet grows."""
        cached = self._symbol_table
        if cached is None or cached[0] != self._version:
            cached = (self._version, SymbolTable(self._alphabet))
            self._symbol_table = cached
        return cached[1]

    def initial_state(self, stack: Sequence[Symbol] = ()) -> PDSState:
        """``⟨qI|stack⟩``; by default the paper's ``⟨qI|ε⟩``."""
        for symbol in stack:
            if symbol not in self._alphabet:
                raise ModelError(f"initial stack symbol {symbol!r} not in alphabet")
        return PDSState(self.initial_shared, tuple(stack))

    def validate(self) -> None:
        """Check global well-formedness; raise :class:`ModelError` if broken."""
        if self.initial_shared not in self._shared_states:
            raise ModelError("initial shared state missing from Q")
        for action in self._actions:
            for symbol in (*action.read, *action.write):
                if symbol not in self._alphabet:
                    raise ModelError(f"action {action} uses unknown symbol {symbol!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = f" {self.name!r}" if self.name else ""
        return (
            f"PDS{name}(|Q|={len(self._shared_states)}, "
            f"|Σ|={len(self._alphabet)}, |Δ|={len(self._actions)})"
        )
