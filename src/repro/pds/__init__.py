"""Sequential pushdown systems (paper Sec. 2.1).

A PDS is a tuple ``(Q, Σ, Δ, qI)``: shared states, stack alphabet,
pushdown program, initial shared state.  This package provides the data
model, the explicit step semantics, the ``post*`` saturation construction
of pushdown store automata (App. C), and the top-of-stack projection of a
PSA's language (Alg. 4).
"""

from repro.pds.action import Action, ActionKind
from repro.pds.state import EMPTY, PDSState, format_stack, format_top
from repro.pds.pds import PDS
from repro.pds.semantics import enabled_actions, post_star_explicit, step, successors
from repro.pds.psa import PSA
from repro.pds.saturation import (
    PostStarEngine,
    format_saturation_stats,
    post_star,
    post_star_naive,
    pre_star,
    pre_star_naive,
    psa_for_configs,
)

__all__ = [
    "Action",
    "ActionKind",
    "EMPTY",
    "PDS",
    "PDSState",
    "PSA",
    "PostStarEngine",
    "format_saturation_stats",
    "enabled_actions",
    "format_stack",
    "format_top",
    "post_star",
    "post_star_naive",
    "pre_star",
    "pre_star_naive",
    "post_star_explicit",
    "psa_for_configs",
    "step",
    "successors",
]
