"""PDS states ``⟨q|w⟩`` and the top-of-stack projection ``T``.

Stacks are tuples of stack symbols with index 0 as the *top*, matching the
paper's notation ``σ1..σz`` where ``σ1`` is the top.  The empty visible
symbol (the ``ε`` case of ``T``, Eq. 1) is represented by :data:`EMPTY`
(``None``), which keeps visible states plain hashable tuples.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

Shared = Hashable
Symbol = Hashable

#: Visible-state marker for an empty stack (the ``ε`` of ``T``, Eq. 1).
EMPTY = None


def format_top(symbol: Symbol) -> str:
    """Human-readable form of a visible top symbol."""
    return "ε" if symbol is EMPTY else str(symbol)


def format_stack(stack: Sequence[Symbol]) -> str:
    """Human-readable form of a stack word (top first, ``ε`` when empty)."""
    return "".join(str(symbol) for symbol in stack) if stack else "ε"


@dataclass(frozen=True, slots=True)
class PDSState:
    """A configuration ``⟨q|w⟩`` of a sequential pushdown system.

    The hash is precomputed at construction: the local BFS trees and
    context-tree caches hash each configuration many times per
    construction, and re-hashing the stack tuple dominated lookups.
    """

    shared: Shared
    stack: tuple[Symbol, ...] = ()
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.stack, tuple):
            object.__setattr__(self, "stack", tuple(self.stack))
        object.__setattr__(self, "_hash", hash((self.shared, self.stack)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def top(self) -> Symbol:
        """Top stack symbol, or :data:`EMPTY` when the stack is empty."""
        return self.stack[0] if self.stack else EMPTY

    @property
    def stack_size(self) -> int:
        return len(self.stack)

    def visible(self) -> tuple[Shared, Symbol]:
        """Thread-visible state ``T(q, w) = (q, T(w))`` (paper Sec. 2.2)."""
        return (self.shared, self.top)

    def __str__(self) -> str:
        return f"⟨{self.shared}|{format_stack(self.stack)}⟩"
