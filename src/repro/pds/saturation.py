"""``post*`` saturation: PDS reachability as a pushdown store automaton.

Implements the classical construction of Bouajjani/Esparza/Maler (used by
the paper via Schwoon's formulation [38]) extended to the paper's
empty-stack actions ``(q,ε)→(q',w')``.

Given a P-automaton ``A`` accepting an initial set ``C`` of PDS states,
the returned PSA accepts exactly ``post*(C)``, the states reachable from
``C``.  The saturation rules are, writing ``p --γ--> q`` for "``q`` is
reachable from ``p`` by ``ε* γ ε*``" in the *current* automaton:

* pop ``(p,γ)→(p',ε)``:        add ``p' --ε--> q``    for each ``p --γ--> q``
* overwrite ``(p,γ)→(p',γ')``: add ``p' --γ'--> q``   for each ``p --γ--> q``
* push ``(p,γ)→(p',ρ0ρ1)``:    add ``p' --ρ0--> m`` and
  ``m --ρ1--> q`` for each ``p --γ--> q``, where ``m`` is a helper state
  unique to ``(p', ρ0)`` (Schwoon's ``q_{p'γ'}``)
* empty-overwrite ``(p,ε)→(p',ε)``: if ``⟨p|ε⟩`` accepted,
  add ``p' --ε--> sink``
* empty-push ``(p,ε)→(p',σ)``:      if ``⟨p|ε⟩`` accepted,
  add ``p' --σ--> sink``

where ``sink`` is a dedicated accepting state without outgoing edges, so
the last two rules add exactly the configurations ``⟨p'|ε⟩`` / ``⟨p'|σ⟩``.

The production implementation is the worklist engine
:class:`PostStarEngine` (wrapped by :func:`post_star`); the direct
transcription of the rules survives as :func:`post_star_naive`, the
differential-testing oracle.

Performance notes
-----------------
The worklist engine maintains three invariants that together make every
piece of work happen exactly once:

1. **Each transition is processed once.**  New transitions enter a FIFO
   frontier guarded by the ``seen`` set; processing a popped transition
   applies every Δ-rule it can serve as a premise for, looked up through
   the PDS's ``(control, top-symbol)`` trigger index
   (:meth:`repro.pds.pds.PDS.actions_for`) — no scan over Δ ever happens.
2. **ε-closure is materialized, not queried.**  The two-premise join
   "``p --ε--> q`` and ``q --x--> r`` yields ``p --x--> r``" is applied
   from both sides (when the ε-edge pops, against the processed
   out-edges ``rel[q]``; when the out-edge pops, against the processed
   ε-predecessors ``eps_into[q]``), so the relation ``p --γ--> q`` used
   by the saturation rules is always a *direct* edge and rules fire on
   edge labels alone.  The oracle instead re-resolves ε-closure on every
   query (now cached inside :class:`~repro.automata.nfa.NFA`, but still
   re-queried every sweep).
3. **The paper's empty-stack rules fire on evidence.**  ``⟨p|ε⟩`` is
   accepted exactly when a (derived) ε-edge connects control ``p`` to an
   accepting state; the rules fire when such an edge pops, never by
   polling.

Because saturation is a monotone closure operator, the engine supports
*incremental resaturation*: after :meth:`PostStarEngine.saturate`, extra
initial edges or configurations can be injected
(:meth:`~PostStarEngine.add_transition`, :meth:`~PostStarEngine.add_config`)
and a further :meth:`~PostStarEngine.saturate` propagates exactly the new
consequences — the result equals a cold saturation of the enlarged
initial set (confluence), at the cost of only the new frontier.  Note the
warm start grows the *initial set*; re-entering the same saturated
automaton from a different control state is **not** a sound warm start,
because edges derived for the old entry would pollute the new entry's
language.  Cross-expansion reuse in the reachability engines therefore
happens at the level of whole expansions, keyed by canonical automaton
signature (:mod:`repro.reach.symbolic`) or by local thread view
(:mod:`repro.reach.explicit`).

All engines report algorithmic work through
:data:`repro.util.meter.METER`:

=====================================  =============================================
counter                                meaning
=====================================  =============================================
``post_star.rule_applications``        Δ-rule × premise pairs processed (worklist)
``post_star.edges_added``              distinct automaton edges discovered
``post_star.eps_propagations``         derived-edge joins through ε-edges
``post_star.resaturations``            warm-start :meth:`~PostStarEngine.saturate` calls
``post_star_naive.rule_applications``  Δ-rule × premise pairs processed (oracle)
``post_star_naive.sweeps``             full passes over Δ until the fixpoint
``pre_star.rule_applications``         Δ-rule × premise pairs processed (worklist)
``pre_star.edges_added``               distinct automaton edges discovered
``pre_star_naive.sweeps``              full passes over Δ until the fixpoint
=====================================  =============================================

A *rule application* counts one attempt to apply one Δ-rule to one
premise.  The worklist engine touches each (rule, premise) pair exactly
once; the oracle re-touches all of them every sweep and needs a final
no-change sweep to detect the fixpoint, so on any input needing ≥ 2
sweeps the worklist performs strictly fewer rule applications — the
benchmarked invariant in ``tests/pds/test_saturation_meter.py``.
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Hashable, Iterable, Sequence

from repro.automata import EPSILON, NFA
from repro.errors import ModelError
from repro.pds.action import ActionKind
from repro.pds.pds import PDS
from repro.pds.psa import FINAL_SINK, PSA
from repro.pds.state import PDSState
from repro.util.meter import METER

Shared = Hashable
Symbol = Hashable


def _config_edges(state: PDSState, fresh) -> Iterable[tuple]:
    """The chain edges encoding one configuration ``⟨q|w⟩``: read ``w``
    from ``q`` through fresh chain states (supplied by ``fresh()``) into
    the accepting sink; an empty stack becomes a single ε-edge."""
    if not state.stack:
        yield (state.shared, EPSILON, FINAL_SINK)
        return
    source = state.shared
    for symbol in state.stack[:-1]:
        chain_state = fresh()
        yield (source, symbol, chain_state)
        source = chain_state
    yield (source, state.stack[-1], FINAL_SINK)


def psa_for_configs(pds: PDS, configs: Iterable[PDSState | tuple]) -> PSA:
    """Build the initial P-automaton accepting exactly ``configs``.

    Each config is a :class:`PDSState` or a ``(shared, stack)`` pair.
    Control states are all of ``pds.shared_states``; fresh chain states
    keep the "no transitions into control states" precondition.
    """
    nfa = NFA(states=pds.shared_states, accepting=[FINAL_SINK])
    counter = itertools.count()
    for config in configs:
        state = config if isinstance(config, PDSState) else PDSState(*config)
        if state.shared not in pds.shared_states:
            raise ModelError(f"config {state} has unknown shared state")
        for src, label, dst in _config_edges(
            state, lambda: ("__chain__", next(counter))
        ):
            nfa.add_transition(src, label, dst)
    return PSA(nfa, pds.shared_states)


def _check_preconditions(psa: PSA) -> None:
    nfa = psa.automaton
    for _src, _label, dst in nfa.transitions():
        if dst in psa.control_states:
            raise ModelError(
                "initial P-automaton has a transition into a control state; "
                "post* saturation requires control states to be entry-only"
            )
    for accepting in nfa.accepting:
        if accepting in psa.control_states:
            raise ModelError("control states must not be accepting initially")


def _helper(to_shared: Shared, pushed: Symbol):
    """Schwoon's per-(p', ρ0) midpoint state ``q_{p'ρ0}``."""
    return ("__push__", to_shared, pushed)


class PostStarEngine:
    """Worklist-based ``post*`` saturation with incremental resaturation.

    The engine owns the growing edge relation.  Typical one-shot use is
    ``PostStarEngine(pds, initial).saturate()`` (what :func:`post_star`
    does); incremental use saturates, injects extra initial edges or
    configurations, and saturates again::

        engine = PostStarEngine(pds, psa_for_configs(pds, base))
        psa0 = engine.saturate()
        engine.add_config(extra_state)      # warm start: only the new
        psa1 = engine.saturate()            # consequences propagate

    ``psa1`` equals a cold ``post_star`` over ``base + [extra_state]``
    (see the module's Performance notes).  The input PSA is never
    mutated; every :meth:`saturate`/:meth:`psa` call snapshots a fresh
    automaton.

    The engine resolves Δ-rules through the PDS's cached
    :meth:`~repro.pds.pds.PDS.trigger_index` — one dict shared by every
    engine over the same PDS, whose construction also interns the stack
    alphabet (so downstream canonicalization sees the dense symbol
    order) — and reports METER work in per-:meth:`drain` batches rather
    than per edge.
    """

    __slots__ = (
        "pds",
        "controls",
        "accepting",
        "_rules",
        "_seen",
        "_frontier",
        "_rel",
        "_eps_into",
        "_chain",
        "_edges_accounted",
        "_saturated_once",
    )

    def __init__(
        self, pds: PDS, initial: PSA | None = None, *, validate: bool = True
    ) -> None:
        if initial is None:
            initial = psa_for_configs(pds, [pds.initial_state()])
        if validate:
            _check_preconditions(initial)
        self._init_core(
            pds,
            frozenset(initial.control_states) | frozenset(pds.shared_states),
            frozenset(initial.automaton.accepting) | {FINAL_SINK},
            initial.automaton.transitions(),
        )

    @classmethod
    def from_edges(
        cls,
        pds: PDS,
        edges: Iterable[tuple],
        accepting: Iterable,
        controls: Iterable[Shared] | None = None,
    ) -> "PostStarEngine":
        """Engine over a raw initial edge list — the symbolic engine's
        per-context hot path, which skips materializing an intermediate
        P-automaton.  The P-automaton preconditions (no edges into
        control states, controls not accepting) are the caller's
        responsibility; ``controls`` defaults to the PDS's shared states.
        """
        engine = cls.__new__(cls)
        engine._init_core(
            pds,
            frozenset(pds.shared_states) | frozenset(controls or ()),
            frozenset(accepting) | {FINAL_SINK},
            edges,
        )
        return engine

    def _init_core(
        self, pds: PDS, controls: frozenset, accepting: frozenset, edges: Iterable
    ) -> None:
        self.pds = pds
        self.controls = controls
        self.accepting = accepting
        #: (shared, top-or-None) -> matching Δ-rules, shared across engines.
        self._rules = pds.trigger_index()

        self._seen: set[tuple] = set()
        self._frontier: deque[tuple] = deque()
        #: processed edges: src -> label -> set of dst
        self._rel: dict = {}
        #: processed ε-edges, reversed: state -> set of ε-predecessors
        self._eps_into: dict = {}
        #: fresh-chain-state counter for :meth:`add_config`
        self._chain = 0
        #: edges already reported to METER (batched in :meth:`drain`)
        self._edges_accounted = 0

        for src, label, dst in edges:
            self._push(src, label, dst)
        # Unconditional skeleton edges p' --ρ0--> m for every push rule.
        for action in pds.actions:
            if action.kind is ActionKind.PUSH:
                rho0 = action.write[0]
                self._push(action.to_shared, rho0, _helper(action.to_shared, rho0))
        self._saturated_once = False

    # ------------------------------------------------------------------
    # Frontier
    # ------------------------------------------------------------------
    def _push(self, src, label, dst) -> None:
        transition = (src, label, dst)
        if transition not in self._seen:
            self._seen.add(transition)
            self._frontier.append(transition)

    def add_transition(self, src, label, dst) -> None:
        """Inject an extra initial edge (warm-start entry point).

        The edge must satisfy the P-automaton preconditions (it must not
        point into a control state); consequences propagate on the next
        :meth:`saturate`.
        """
        if dst in self.controls:
            raise ModelError("cannot add a transition into a control state")
        self._push(src, label, dst)

    def add_config(self, config: PDSState | tuple) -> None:
        """Inject an extra initial configuration (as fresh chain edges)."""
        state = config if isinstance(config, PDSState) else PDSState(*config)
        if state.shared not in self.pds.shared_states:
            raise ModelError(f"config {state} has unknown shared state")
        for src, label, dst in _config_edges(state, self._fresh_chain):
            self._push(src, label, dst)

    def _fresh_chain(self):
        chain_state = ("__chain_inc__", self._chain)
        self._chain += 1
        return chain_state

    # ------------------------------------------------------------------
    # Saturation
    # ------------------------------------------------------------------
    def saturate(self) -> PSA:
        """Drain the frontier to the fixpoint and snapshot the PSA.

        Idempotent; after extra edges/configs were injected this is a
        warm start that processes only the new frontier.  Use
        :meth:`drain` instead when more injections follow and the
        intermediate snapshot would be discarded.
        """
        self.drain()
        return self.psa()

    def drain(self) -> "PostStarEngine":
        """Saturate in place without building a PSA snapshot."""
        if self._saturated_once and self._frontier:
            METER.bump("post_star.resaturations")
        rel = self._rel
        eps_into = self._eps_into
        # Re-fetch per drain: trigger_index() is version-cached (a dict
        # identity is returned unless the PDS mutated), so rules — and
        # any shared states they introduced — added between a saturation
        # and a warm start are picked up without per-edge lookup cost.
        # NOTE: a rule added *after* some premise edge was already
        # processed still only fires on future edges — mutate the PDS
        # before building engines for exact semantics.
        rules = self._rules = self.pds.trigger_index()
        if not self.controls >= self.pds.shared_states:
            self.controls = self.controls | self.pds.shared_states
        no_rules: tuple = ()
        accepting = self.accepting
        controls = self.controls
        frontier = self._frontier
        # _push inlined below: one membership test + two appends per
        # candidate edge, no method-call overhead on the innermost loop.
        seen = self._seen
        seen_add = seen.add
        emit = frontier.append
        rule_applications = 0
        eps_propagations = 0

        while frontier:
            transition = frontier.popleft()
            src, label, dst = transition
            rel.setdefault(src, {}).setdefault(label, set()).add(dst)

            # ε-predecessors of src read `label` through src as well.
            predecessors = eps_into.get(src)
            if predecessors:
                eps_propagations += len(predecessors)
                for predecessor in predecessors:
                    derived = (predecessor, label, dst)
                    if derived not in seen:
                        seen_add(derived)
                        emit(derived)

            if label is EPSILON:
                eps_into.setdefault(dst, set()).add(src)
                # Derive src --x--> r for everything dst already reads.
                for label2, dsts2 in rel.get(dst, {}).items():
                    eps_propagations += len(dsts2)
                    for dst2 in dsts2:
                        derived = (src, label2, dst2)
                        if derived not in seen:
                            seen_add(derived)
                            emit(derived)
                # ⟨src|ε⟩ is accepted: the paper's empty-stack rules fire.
                if dst in accepting and src in controls:
                    for action in rules.get((src, None), no_rules):
                        rule_applications += 1
                        if action.kind is ActionKind.EMPTY_OVERWRITE:
                            derived = (action.to_shared, EPSILON, FINAL_SINK)
                        else:  # EMPTY_PUSH
                            derived = (action.to_shared, action.write[0], FINAL_SINK)
                        if derived not in seen:
                            seen_add(derived)
                            emit(derived)
                continue

            # Real symbol: saturation rules for actions triggered by
            # (src, label); src is a control state whenever any match.
            matching = rules.get((src, label), no_rules)
            rule_applications += len(matching)
            for action in matching:
                kind = action.kind
                if kind is ActionKind.POP:
                    derived = (action.to_shared, EPSILON, dst)
                elif kind is ActionKind.OVERWRITE:
                    derived = (action.to_shared, action.write[0], dst)
                else:  # PUSH: write = (ρ0, ρ1)
                    rho0, rho1 = action.write
                    mid = _helper(action.to_shared, rho0)
                    skeleton = (action.to_shared, rho0, mid)
                    if skeleton not in seen:
                        seen_add(skeleton)
                        emit(skeleton)
                    derived = (mid, rho1, dst)
                if derived not in seen:
                    seen_add(derived)
                    emit(derived)

        if rule_applications:
            METER.bump("post_star.rule_applications", rule_applications)
        if eps_propagations:
            METER.bump("post_star.eps_propagations", eps_propagations)
        edges = len(self._seen) - self._edges_accounted
        if edges:
            METER.bump("post_star.edges_added", edges)
            self._edges_accounted = len(self._seen)
        self._saturated_once = True
        return self

    def snapshot_nfa(self) -> NFA:
        """The current (saturated or partial) edge relation as a bare NFA."""
        nfa = NFA(states=self.controls, accepting=self.accepting)
        nfa.add_transitions(self._seen)
        return nfa

    def detach_nfa(self) -> NFA:
        """Adopt the saturated edge relation as an NFA *without copying*.

        The returned automaton shares the engine's internal transition
        dicts: the engine must be discarded afterwards (any further
        injection + drain would mutate the "snapshot").  This is the
        symbolic engine's hot path — one context expansion builds one
        engine, drains it once, and only needs the result to read from.
        """
        self.drain()
        nfa = NFA(states=self.controls, accepting=self.accepting)
        delta = nfa._delta
        states = nfa._states
        for src, by_label in self._rel.items():
            delta[src] = by_label
            states.add(src)
            for targets in by_label.values():
                states |= targets
        return nfa

    def psa(self) -> PSA:
        """Snapshot the current (saturated or partial) automaton."""
        return PSA(self.snapshot_nfa(), self.controls)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PostStarEngine(edges={len(self._seen)}, "
            f"pending={len(self._frontier)}, controls={len(self.controls)})"
        )


def post_star(pds: PDS, initial: PSA | None = None, *, validate: bool = True) -> PSA:
    """Saturate ``initial`` into a PSA for ``post*(L(initial))``.

    When ``initial`` is omitted, the start set is the singleton
    ``{⟨qI|ε⟩}`` (the paper's initial PDS state).  The input PSA is not
    mutated.  This is the one-shot wrapper around :class:`PostStarEngine`;
    see :func:`post_star_naive` for the differential-testing oracle.
    """
    return PostStarEngine(pds, initial, validate=validate).saturate()


def post_star_naive(
    pds: PDS, initial: PSA | None = None, *, validate: bool = True
) -> PSA:
    """Reference implementation: re-apply all saturation rules until no
    transition is added, resolving ε-closure on every query.  Quadratic
    and slow, but a direct transcription of the rules — kept as the
    differential-testing oracle for :func:`post_star` and
    :class:`PostStarEngine` (see ``tests/pds/test_saturation_differential``).
    """
    if initial is None:
        initial = psa_for_configs(pds, [pds.initial_state()])
    if validate:
        _check_preconditions(initial)

    nfa = initial.automaton.copy()
    controls = set(initial.control_states) | set(pds.shared_states)
    nfa.add_accepting(FINAL_SINK)  # ensure the sink exists for ε-rules
    for shared in controls:
        nfa.add_state(shared)

    # Unconditional skeleton edges p' --ρ0--> m for every push rule.
    for action in pds.actions:
        if action.kind is ActionKind.PUSH:
            rho0 = action.write[0]
            nfa.add_transition(action.to_shared, rho0, _helper(action.to_shared, rho0))

    changed = True
    while changed:
        changed = False
        METER.bump("post_star_naive.sweeps")
        for action in pds.actions:
            kind = action.kind
            if kind.reads_empty_stack:
                # ⟨p|ε⟩ accepted iff accepting state in ε-closure of p.
                METER.bump("post_star_naive.rule_applications")
                closure = nfa.epsilon_closure([action.from_shared])
                if not (closure & nfa.accepting):
                    continue
                if kind is ActionKind.EMPTY_OVERWRITE:
                    changed |= nfa.add_transition(action.to_shared, EPSILON, FINAL_SINK)
                else:  # EMPTY_PUSH
                    changed |= nfa.add_transition(
                        action.to_shared, action.write[0], FINAL_SINK
                    )
                continue

            gamma = action.read[0]
            for target in nfa.reads(action.from_shared, gamma):
                METER.bump("post_star_naive.rule_applications")
                if kind is ActionKind.POP:
                    changed |= nfa.add_transition(action.to_shared, EPSILON, target)
                elif kind is ActionKind.OVERWRITE:
                    changed |= nfa.add_transition(
                        action.to_shared, action.write[0], target
                    )
                else:  # PUSH: write = (ρ0, ρ1)
                    rho0, rho1 = action.write
                    mid = _helper(action.to_shared, rho0)
                    changed |= nfa.add_transition(action.to_shared, rho0, mid)
                    changed |= nfa.add_transition(mid, rho1, target)
    return PSA(nfa, frozenset(controls))


def format_saturation_stats(stats: dict) -> str:
    """One-line rendering of a meter delta for benchmark tables.

    Picks out the saturation counters documented in the module's
    Performance notes; unknown keys are ignored.
    """
    parts = []
    for key, label in (
        ("post_star.rule_applications", "rules"),
        ("post_star.edges_added", "edges"),
        ("post_star.eps_propagations", "ε-joins"),
        ("post_star.resaturations", "warm-starts"),
        ("post_star_naive.rule_applications", "naive-rules"),
        ("post_star_naive.sweeps", "naive-sweeps"),
    ):
        if stats.get(key):
            parts.append(f"{label}={stats[key]}")
    return " ".join(parts) if parts else "no saturation work"


def pre_star(pds: PDS, targets: PSA | None = None, *, validate: bool = True) -> PSA:
    """Saturate ``targets`` into a PSA for ``pre*(L(targets))`` — all
    states from which some target configuration is reachable.

    The classical backward counterpart of :func:`post_star` (Bouajjani/
    Esparza/Maler): for every rule ``⟨p,γ⟩→⟨p',w'⟩`` and every path
    ``p' --w'--> q`` in the current automaton, add ``p --γ--> q``.  The
    paper's empty-stack rules contribute ``⟨p|ε⟩ ∈ pre*`` whenever their
    right-hand configuration is already accepted.

    This is the worklist formulation on the :class:`PostStarEngine`
    pattern: each transition is processed once, rules are resolved
    through premise-shape indices (no sweep over Δ), ε-closure is
    materialized as direct edges via the same two-sided join the post
    engine uses, and the two-premise push rule keeps Schwoon-style
    pending sets so the second premise fires on arrival.  Because the
    input automaton may carry ε-edges (empty-stack target configs) and
    rules add more, acceptance of ``⟨p|ε⟩`` / ``⟨p|σ⟩`` is tracked by an
    incremental "ε-accepting" set (states reaching an accepting state by
    ε-edges alone) instead of re-querying closures.  The result can
    contain derived edges absent from the sweep's automaton (and vice
    versa); the accepted *languages* coincide, which is what
    ``tests/pds/test_pre_star.py`` checks per entry state against the
    retained sweep oracle :func:`pre_star_naive`.

    METER counters: ``pre_star.rule_applications`` (rule × premise pairs
    processed) and ``pre_star.edges_added`` (distinct edges discovered).

    When ``targets`` is omitted, the target set is ``{⟨qI|ε⟩}``.
    """
    if targets is None:
        targets = psa_for_configs(pds, [pds.initial_state()])
    if validate:
        _check_preconditions(targets)

    source = targets.automaton
    controls = frozenset(targets.control_states) | pds.shared_states
    accepting = frozenset(source.accepting) | {FINAL_SINK}

    # Premise-shape indices over Δ (built once; no sweeps).
    pop_by_state: dict = {}       # to_shared -> [POP rules]
    overwrite_by_edge: dict = {}  # (to_shared, write0) -> [OVERWRITE rules]
    push_by_edge: dict = {}       # (to_shared, rho0) -> [PUSH rules]
    empty_overwrite_by_state: dict = {}  # to_shared -> [EMPTY_OVERWRITE]
    empty_push_by_edge: dict = {}        # (to_shared, write0) -> [EMPTY_PUSH]
    for action in pds.actions:
        kind = action.kind
        if kind is ActionKind.POP:
            pop_by_state.setdefault(action.to_shared, []).append(action)
        elif kind is ActionKind.OVERWRITE:
            overwrite_by_edge.setdefault(
                (action.to_shared, action.write[0]), []
            ).append(action)
        elif kind is ActionKind.PUSH:
            push_by_edge.setdefault(
                (action.to_shared, action.write[0]), []
            ).append(action)
        elif kind is ActionKind.EMPTY_OVERWRITE:
            empty_overwrite_by_state.setdefault(action.to_shared, []).append(action)
        else:  # EMPTY_PUSH
            empty_push_by_edge.setdefault(
                (action.to_shared, action.write[0]), []
            ).append(action)

    seen: set[tuple] = set()
    frontier: deque[tuple] = deque()
    rule_applications = 0

    def emit(src, label, dst) -> None:
        transition = (src, label, dst)
        if transition not in seen:
            seen.add(transition)
            frontier.append(transition)

    #: processed edges: src -> label -> set of dst
    rel: dict = {}
    #: processed ε-edges, reversed: state -> set of ε-predecessors
    eps_into: dict = {}
    #: Schwoon pending sets: (mid, ρ1) -> {(from_shared, γ)} waiting for
    #: the push rule's second premise to arrive.
    waiting: dict[tuple, set] = {}
    #: states from which ε-edges alone reach an accepting state.
    eps_accepting: set = set(accepting)
    #: (src, label) empty-push premise keys observed into each dst, so a
    #: state joining ``eps_accepting`` late re-fires them.
    acceptance_watch: dict = {}

    def mark_eps_accepting(state) -> None:
        nonlocal rule_applications
        stack = [state]
        while stack:
            current = stack.pop()
            if current in eps_accepting:
                continue
            eps_accepting.add(current)
            for action in empty_overwrite_by_state.get(current, ()):
                rule_applications += 1
                emit(action.from_shared, EPSILON, FINAL_SINK)
            for premise in acceptance_watch.get(current, ()):
                for action in empty_push_by_edge.get(premise, ()):
                    rule_applications += 1
                    emit(action.from_shared, EPSILON, FINAL_SINK)
            for predecessor in eps_into.get(current, ()):
                if predecessor not in eps_accepting:
                    stack.append(predecessor)

    for edge in source.transitions():
        emit(*edge)
    # POP rules always fire for the zero-length ε-path q = p'.
    for to_shared, actions in pop_by_state.items():
        for action in actions:
            rule_applications += 1
            emit(action.from_shared, action.read[0], to_shared)
    # EMPTY_OVERWRITE with an already-accepting target state.
    for to_shared, actions in empty_overwrite_by_state.items():
        if to_shared in eps_accepting:
            for action in actions:
                rule_applications += 1
                emit(action.from_shared, EPSILON, FINAL_SINK)

    no_rules: tuple = ()
    while frontier:
        src, label, dst = frontier.popleft()
        rel.setdefault(src, {}).setdefault(label, set()).add(dst)

        # ε-predecessors of src read `label` through src as well (the
        # materialization join of the post engine, forward direction).
        predecessors = eps_into.get(src)
        if predecessors:
            for predecessor in predecessors:
                emit(predecessor, label, dst)

        if label is EPSILON:
            eps_into.setdefault(dst, set()).add(src)
            for label2, dsts2 in rel.get(dst, {}).items():
                for dst2 in dsts2:
                    emit(src, label2, dst2)
            if dst in eps_accepting and src not in eps_accepting:
                mark_eps_accepting(src)
            # POP: ⟨p,γ⟩→⟨src,ε⟩ reaches dst through the ε-path.
            matching = pop_by_state.get(src, no_rules)
            rule_applications += len(matching)
            for action in matching:
                emit(action.from_shared, action.read[0], dst)
            continue

        # OVERWRITE: ⟨p,γ⟩→⟨src,label⟩ reads label from src to dst.
        matching = overwrite_by_edge.get((src, label), no_rules)
        rule_applications += len(matching)
        for action in matching:
            emit(action.from_shared, action.read[0], dst)

        # PUSH first premise: src --ρ0--> dst; wait on dst --ρ1--> q.
        for action in push_by_edge.get((src, label), no_rules):
            rho1 = action.write[1]
            pending = waiting.setdefault((dst, rho1), set())
            pair = (action.from_shared, action.read[0])
            if pair not in pending:
                pending.add(pair)
                for target in rel.get(dst, {}).get(rho1, ()):
                    rule_applications += 1
                    emit(pair[0], pair[1], target)

        # PUSH second premise: some rule is waiting on (src, label).
        pairs = waiting.get((src, label))
        if pairs:
            rule_applications += len(pairs)
            for from_shared, gamma in pairs:
                emit(from_shared, gamma, dst)

        # EMPTY_PUSH: ⟨p,ε⟩→⟨src,label⟩ needs ⟨src|label⟩ accepted.
        if (src, label) in empty_push_by_edge:
            if dst in eps_accepting:
                for action in empty_push_by_edge[(src, label)]:
                    rule_applications += 1
                    emit(action.from_shared, EPSILON, FINAL_SINK)
            else:
                acceptance_watch.setdefault(dst, set()).add((src, label))

    if rule_applications:
        METER.bump("pre_star.rule_applications", rule_applications)
    METER.bump("pre_star.edges_added", len(seen))
    nfa = NFA(states=controls | frozenset(source.states), accepting=accepting)
    nfa.add_transitions(seen)
    return PSA(nfa, frozenset(controls))


def pre_star_naive(
    pds: PDS, targets: PSA | None = None, *, validate: bool = True
) -> PSA:
    """Reference implementation of ``pre*``: re-apply all saturation
    rules until no transition is added, re-resolving ε-closure on every
    query.  Quadratic and slow, but a direct transcription of the rules
    — kept as the differential-testing oracle for :func:`pre_star` (see
    ``tests/pds/test_pre_star.py``).

    When ``targets`` is omitted, the target set is ``{⟨qI|ε⟩}``.
    """
    if targets is None:
        targets = psa_for_configs(pds, [pds.initial_state()])
    if validate:
        _check_preconditions(targets)

    nfa = targets.automaton.copy()
    controls = set(targets.control_states) | set(pds.shared_states)
    nfa.add_accepting(FINAL_SINK)
    for shared in controls:
        nfa.add_state(shared)

    changed = True
    while changed:
        changed = False
        METER.bump("pre_star_naive.sweeps")
        for action in pds.actions:
            kind = action.kind
            if kind.reads_empty_stack:
                if kind is ActionKind.EMPTY_OVERWRITE:
                    accepted = bool(
                        nfa.epsilon_closure([action.to_shared]) & nfa.accepting
                    )
                else:  # EMPTY_PUSH: ⟨p'|σ⟩ must be accepted
                    accepted = bool(
                        nfa.reads(action.to_shared, action.write[0]) & nfa.accepting
                    )
                if accepted:
                    changed |= nfa.add_transition(
                        action.from_shared, EPSILON, FINAL_SINK
                    )
                continue

            gamma = action.read[0]
            if kind is ActionKind.POP:
                # ⟨p,γ⟩→⟨p',ε⟩: p reads γ to wherever p' "is" (ε-closed).
                for target in nfa.epsilon_closure([action.to_shared]):
                    changed |= nfa.add_transition(action.from_shared, gamma, target)
            elif kind is ActionKind.OVERWRITE:
                for target in nfa.reads(action.to_shared, action.write[0]):
                    changed |= nfa.add_transition(action.from_shared, gamma, target)
            else:  # PUSH: write = (ρ0, ρ1)
                rho0, rho1 = action.write
                for mid in nfa.reads(action.to_shared, rho0):
                    for target in nfa.step([mid], rho1):
                        changed |= nfa.add_transition(
                            action.from_shared, gamma, target
                        )
    return PSA(nfa, frozenset(controls))


def reachable_set_psa(
    pds: PDS, start_stack: Sequence[Symbol] = (), start_shared: Shared | None = None
) -> PSA:
    """PSA for all states reachable from a single start configuration."""
    shared = pds.initial_shared if start_shared is None else start_shared
    return post_star(pds, psa_for_configs(pds, [PDSState(shared, tuple(start_stack))]))


def shallow_configs_psa(pds: PDS) -> PSA:
    """PSA for ``post*(Q × Σ≤1)`` — the FCR premise of Lemma 16/Thm 17.

    Initial set: every shared state with an empty stack or any single
    stack symbol.  Built incrementally as a demonstration of the warm
    start: the empty-stack configurations are saturated first, then the
    Σ-singletons are injected and only their consequences propagate.
    """
    engine = PostStarEngine(
        pds, psa_for_configs(pds, [PDSState(shared, ()) for shared in pds.shared_states])
    )
    engine.drain()
    for shared in pds.shared_states:
        for symbol in pds.alphabet:
            engine.add_config(PDSState(shared, (symbol,)))
    return engine.saturate()
