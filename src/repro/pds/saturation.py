"""``post*`` saturation: PDS reachability as a pushdown store automaton.

Implements the classical construction of Bouajjani/Esparza/Maler (used by
the paper via Schwoon's formulation [38]) extended to the paper's
empty-stack actions ``(q,ε)→(q',w')``.

Given a P-automaton ``A`` accepting an initial set ``C`` of PDS states,
the returned PSA accepts exactly ``post*(C)``, the states reachable from
``C``.  The saturation rules are, writing ``p --γ--> q`` for "``q`` is
reachable from ``p`` by ``ε* γ ε*``" in the *current* automaton:

* pop ``(p,γ)→(p',ε)``:        add ``p' --ε--> q``    for each ``p --γ--> q``
* overwrite ``(p,γ)→(p',γ')``: add ``p' --γ'--> q``   for each ``p --γ--> q``
* push ``(p,γ)→(p',ρ0ρ1)``:    add ``p' --ρ0--> m`` and
  ``m --ρ1--> q`` for each ``p --γ--> q``, where ``m`` is a helper state
  unique to ``(p', ρ0)`` (Schwoon's ``q_{p'γ'}``)
* empty-overwrite ``(p,ε)→(p',ε)``: if ``⟨p|ε⟩`` accepted,
  add ``p' --ε--> sink``
* empty-push ``(p,ε)→(p',σ)``:      if ``⟨p|ε⟩`` accepted,
  add ``p' --σ--> sink``

where ``sink`` is a dedicated accepting state without outgoing edges, so
the last two rules add exactly the configurations ``⟨p'|ε⟩`` / ``⟨p'|σ⟩``.

The loop naively re-applies all rules until no edge is added; edge count
is bounded by ``(|S|·(|Σ|+1)·|S|)``, so termination is guaranteed.  This
favors clarity over Schwoon's worklist optimization — benchmark automata
in this domain are small.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.automata import EPSILON, NFA
from repro.errors import ModelError
from repro.pds.action import ActionKind
from repro.pds.pds import PDS
from repro.pds.psa import FINAL_SINK, PSA
from repro.pds.state import PDSState

Shared = Hashable
Symbol = Hashable


def psa_for_configs(pds: PDS, configs: Iterable[PDSState | tuple]) -> PSA:
    """Build the initial P-automaton accepting exactly ``configs``.

    Each config is a :class:`PDSState` or a ``(shared, stack)`` pair.
    Control states are all of ``pds.shared_states``; fresh chain states
    keep the "no transitions into control states" precondition.
    """
    nfa = NFA(states=pds.shared_states, accepting=[FINAL_SINK])
    counter = 0
    for config in configs:
        state = config if isinstance(config, PDSState) else PDSState(*config)
        if state.shared not in pds.shared_states:
            raise ModelError(f"config {state} has unknown shared state")
        if not state.stack:
            nfa.add_transition(state.shared, EPSILON, FINAL_SINK)
            continue
        source = state.shared
        for symbol in state.stack[:-1]:
            chain_state = ("__chain__", counter)
            counter += 1
            nfa.add_transition(source, symbol, chain_state)
            source = chain_state
        nfa.add_transition(source, state.stack[-1], FINAL_SINK)
    return PSA(nfa, pds.shared_states)


def _check_preconditions(psa: PSA) -> None:
    nfa = psa.automaton
    for _src, _label, dst in nfa.transitions():
        if dst in psa.control_states:
            raise ModelError(
                "initial P-automaton has a transition into a control state; "
                "post* saturation requires control states to be entry-only"
            )
    for accepting in nfa.accepting:
        if accepting in psa.control_states:
            raise ModelError("control states must not be accepting initially")


def post_star(pds: PDS, initial: PSA | None = None, *, validate: bool = True) -> PSA:
    """Saturate ``initial`` into a PSA for ``post*(L(initial))``.

    When ``initial`` is omitted, the start set is the singleton
    ``{⟨qI|ε⟩}`` (the paper's initial PDS state).  The input PSA is not
    mutated.

    This is a worklist formulation in the style of Schwoon's efficient
    algorithm: each transition is processed once, ε-closure is made
    explicit by *derived* transitions (``p --ε--> q --x--> r`` yields
    ``p --x--> r``), and the paper's empty-stack rules fire whenever an
    ε-transition into an accepting state shows that ``⟨p|ε⟩`` is
    accepted.  See :func:`post_star_naive` for the direct transcription
    of the saturation rules, against which this one is differentially
    tested.
    """
    if initial is None:
        initial = psa_for_configs(pds, [pds.initial_state()])
    if validate:
        _check_preconditions(initial)

    controls = frozenset(initial.control_states) | frozenset(pds.shared_states)
    accepting = set(initial.automaton.accepting) | {FINAL_SINK}

    def helper(to_shared: Shared, pushed: Symbol):
        return ("__push__", to_shared, pushed)

    from collections import deque

    seen: set[tuple] = set()
    worklist: deque[tuple] = deque()

    def add(src, label, dst) -> None:
        transition = (src, label, dst)
        if transition not in seen:
            seen.add(transition)
            worklist.append(transition)

    for src, label, dst in initial.automaton.transitions():
        add(src, label, dst)
    # Unconditional skeleton edges p' --ρ0--> m for every push rule.
    for action in pds.actions:
        if action.kind is ActionKind.PUSH:
            rho0 = action.write[0]
            add(action.to_shared, rho0, helper(action.to_shared, rho0))

    rel: dict = {}           # src -> label -> set of dst
    eps_into: dict = {}      # state -> set of ε-predecessors

    def fire_empty_rules(control) -> None:
        for action in pds.actions_for(control, None):
            if action.kind is ActionKind.EMPTY_OVERWRITE:
                add(action.to_shared, EPSILON, FINAL_SINK)
            else:  # EMPTY_PUSH
                add(action.to_shared, action.write[0], FINAL_SINK)

    while worklist:
        src, label, dst = worklist.popleft()
        rel.setdefault(src, {}).setdefault(label, set()).add(dst)

        # ε-predecessors of src read `label` through src as well.
        for predecessor in eps_into.get(src, ()):
            add(predecessor, label, dst)

        if label is EPSILON:
            eps_into.setdefault(dst, set()).add(src)
            # Derive src --x--> r for everything dst already reads.
            for label2, dsts2 in rel.get(dst, {}).items():
                for dst2 in dsts2:
                    add(src, label2, dst2)
            # ⟨src|ε⟩ is accepted: the paper's empty-stack rules fire.
            if dst in accepting and src in controls:
                fire_empty_rules(src)
            continue

        # Real symbol: saturation rules for actions triggered by
        # (src, label); src is a control state whenever any match.
        for action in pds.actions_for(src, label):
            kind = action.kind
            if kind is ActionKind.POP:
                add(action.to_shared, EPSILON, dst)
            elif kind is ActionKind.OVERWRITE:
                add(action.to_shared, action.write[0], dst)
            else:  # PUSH: write = (ρ0, ρ1)
                rho0, rho1 = action.write
                mid = helper(action.to_shared, rho0)
                add(action.to_shared, rho0, mid)
                add(mid, rho1, dst)

    nfa = NFA(states=controls, accepting=accepting)
    for src, label, dst in seen:
        nfa.add_transition(src, label, dst)
    return PSA(nfa, controls)


def post_star_naive(
    pds: PDS, initial: PSA | None = None, *, validate: bool = True
) -> PSA:
    """Reference implementation: re-apply all saturation rules until no
    transition is added, resolving ε-closure on every query.  Quadratic
    and slow, but a direct transcription of the rules — kept as the
    differential-testing oracle for :func:`post_star`."""
    if initial is None:
        initial = psa_for_configs(pds, [pds.initial_state()])
    if validate:
        _check_preconditions(initial)

    nfa = initial.automaton.copy()
    controls = set(initial.control_states) | set(pds.shared_states)
    nfa.add_accepting(FINAL_SINK)  # ensure the sink exists for ε-rules
    for shared in controls:
        nfa.add_state(shared)

    def helper(to_shared: Shared, pushed: Symbol):
        return ("__push__", to_shared, pushed)

    # Unconditional skeleton edges p' --ρ0--> m for every push rule.
    for action in pds.actions:
        if action.kind is ActionKind.PUSH:
            rho0 = action.write[0]
            nfa.add_transition(action.to_shared, rho0, helper(action.to_shared, rho0))

    changed = True
    while changed:
        changed = False
        for action in pds.actions:
            kind = action.kind
            if kind.reads_empty_stack:
                # ⟨p|ε⟩ accepted iff accepting state in ε-closure of p.
                closure = nfa.epsilon_closure([action.from_shared])
                if not (closure & nfa.accepting):
                    continue
                if kind is ActionKind.EMPTY_OVERWRITE:
                    changed |= nfa.add_transition(action.to_shared, EPSILON, FINAL_SINK)
                else:  # EMPTY_PUSH
                    changed |= nfa.add_transition(
                        action.to_shared, action.write[0], FINAL_SINK
                    )
                continue

            gamma = action.read[0]
            for target in nfa.reads(action.from_shared, gamma):
                if kind is ActionKind.POP:
                    changed |= nfa.add_transition(action.to_shared, EPSILON, target)
                elif kind is ActionKind.OVERWRITE:
                    changed |= nfa.add_transition(
                        action.to_shared, action.write[0], target
                    )
                else:  # PUSH: write = (ρ0, ρ1)
                    rho0, rho1 = action.write
                    mid = helper(action.to_shared, rho0)
                    changed |= nfa.add_transition(action.to_shared, rho0, mid)
                    changed |= nfa.add_transition(mid, rho1, target)
    return PSA(nfa, frozenset(controls))


def pre_star(pds: PDS, targets: PSA | None = None, *, validate: bool = True) -> PSA:
    """Saturate ``targets`` into a PSA for ``pre*(L(targets))`` — all
    states from which some target configuration is reachable.

    The classical backward counterpart of :func:`post_star` (Bouajjani/
    Esparza/Maler): for every rule ``⟨p,γ⟩→⟨p',w'⟩`` and every path
    ``p' --w'--> q`` in the current automaton, add ``p --γ--> q``.  The
    paper's empty-stack rules contribute ``⟨p|ε⟩ ∈ pre*`` whenever their
    right-hand configuration is already accepted.

    When ``targets`` is omitted, the target set is ``{⟨qI|ε⟩}``.
    """
    if targets is None:
        targets = psa_for_configs(pds, [pds.initial_state()])
    if validate:
        _check_preconditions(targets)

    nfa = targets.automaton.copy()
    controls = set(targets.control_states) | set(pds.shared_states)
    nfa.add_accepting(FINAL_SINK)
    for shared in controls:
        nfa.add_state(shared)

    changed = True
    while changed:
        changed = False
        for action in pds.actions:
            kind = action.kind
            if kind.reads_empty_stack:
                if kind is ActionKind.EMPTY_OVERWRITE:
                    accepted = bool(
                        nfa.epsilon_closure([action.to_shared]) & nfa.accepting
                    )
                else:  # EMPTY_PUSH: ⟨p'|σ⟩ must be accepted
                    accepted = bool(
                        nfa.reads(action.to_shared, action.write[0]) & nfa.accepting
                    )
                if accepted:
                    changed |= nfa.add_transition(
                        action.from_shared, EPSILON, FINAL_SINK
                    )
                continue

            gamma = action.read[0]
            if kind is ActionKind.POP:
                # ⟨p,γ⟩→⟨p',ε⟩: p reads γ to wherever p' "is" (ε-closed).
                for target in nfa.epsilon_closure([action.to_shared]):
                    changed |= nfa.add_transition(action.from_shared, gamma, target)
            elif kind is ActionKind.OVERWRITE:
                for target in nfa.reads(action.to_shared, action.write[0]):
                    changed |= nfa.add_transition(action.from_shared, gamma, target)
            else:  # PUSH: write = (ρ0, ρ1)
                rho0, rho1 = action.write
                for mid in nfa.reads(action.to_shared, rho0):
                    for target in nfa.step([mid], rho1):
                        changed |= nfa.add_transition(
                            action.from_shared, gamma, target
                        )
    return PSA(nfa, frozenset(controls))


def reachable_set_psa(
    pds: PDS, start_stack: Sequence[Symbol] = (), start_shared: Shared | None = None
) -> PSA:
    """PSA for all states reachable from a single start configuration."""
    shared = pds.initial_shared if start_shared is None else start_shared
    return post_star(pds, psa_for_configs(pds, [PDSState(shared, tuple(start_stack))]))


def shallow_configs_psa(pds: PDS) -> PSA:
    """PSA for ``post*(Q × Σ≤1)`` — the FCR premise of Lemma 16/Thm 17.

    Initial set: every shared state with an empty stack or any single
    stack symbol.
    """
    configs: list[PDSState] = []
    for shared in pds.shared_states:
        configs.append(PDSState(shared, ()))
        for symbol in pds.alphabet:
            configs.append(PDSState(shared, (symbol,)))
    return post_star(pds, psa_for_configs(pds, configs))
