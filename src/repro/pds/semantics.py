"""Explicit step semantics of sequential pushdown systems (Sec. 2.1).

These functions realize the ``→`` relation on PDS states and its
reflexive-transitive closure by explicit enumeration.  Explicit
enumeration may diverge on programs whose stack grows without bound
inside a single run — the situation the FCR condition (Sec. 5) rules
out — so :func:`post_star_explicit` takes a state-count guard and raises
:class:`~repro.errors.ContextExplosionError` when it trips.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.errors import ContextExplosionError
from repro.pds.action import Action, ActionKind
from repro.pds.pds import PDS
from repro.pds.state import PDSState

#: Default guard for explicit per-context exploration.
DEFAULT_STATE_LIMIT = 200_000


def enabled_actions(pds: PDS, state: PDSState) -> tuple[Action, ...]:
    """Actions enabled in ``state`` (depend only on the visible state)."""
    return pds.actions_for(state.shared, state.top)


def step(state: PDSState, action: Action) -> PDSState:
    """Apply one enabled action to ``state`` (paper Sec. 2.1 (a)/(b)).

    The caller guarantees enabledness; this function only transforms.
    """
    kind = action.kind
    stack = state.stack
    if kind is ActionKind.POP:
        return PDSState(action.to_shared, stack[1:])
    if kind is ActionKind.OVERWRITE:
        return PDSState(action.to_shared, action.write + stack[1:])
    if kind is ActionKind.PUSH:
        # write = (ρ0, ρ1): ρ1 overwrites the old top, ρ0 goes above.
        return PDSState(action.to_shared, action.write + stack[1:])
    if kind is ActionKind.EMPTY_OVERWRITE:
        return PDSState(action.to_shared, ())
    # EMPTY_PUSH
    return PDSState(action.to_shared, action.write)


def successors(pds: PDS, state: PDSState) -> Iterator[tuple[Action, PDSState]]:
    """All one-step successors of ``state`` with the action taken."""
    for action in enabled_actions(pds, state):
        yield action, step(state, action)


def post_star_explicit(
    pds: PDS,
    start: PDSState,
    max_states: int = DEFAULT_STATE_LIMIT,
) -> set[PDSState]:
    """``R(start)``: every state reachable from ``start``, by BFS.

    Raises :class:`ContextExplosionError` after ``max_states`` distinct
    states, the library's divergence guard for non-FCR programs.
    """
    seen: set[PDSState] = {start}
    work: deque[PDSState] = deque([start])
    while work:
        state = work.popleft()
        for _action, nxt in successors(pds, state):
            if nxt in seen:
                continue
            seen.add(nxt)
            if len(seen) > max_states:
                raise ContextExplosionError(
                    f"explicit post* from {start} exceeded {max_states} states; "
                    "the program likely violates finite context reachability",
                    states_seen=len(seen),
                )
            work.append(nxt)
    return seen


def reachable_with_trace(
    pds: PDS,
    start: PDSState,
    max_states: int = DEFAULT_STATE_LIMIT,
) -> dict[PDSState, tuple[PDSState, Action] | None]:
    """Like :func:`post_star_explicit` but keeps BFS parent pointers.

    Returns ``state -> (predecessor, action)`` (``None`` for ``start``),
    from which shortest witness paths can be reconstructed.
    """
    parents: dict[PDSState, tuple[PDSState, Action] | None] = {start: None}
    work: deque[PDSState] = deque([start])
    while work:
        state = work.popleft()
        for action, nxt in successors(pds, state):
            if nxt in parents:
                continue
            parents[nxt] = (state, action)
            if len(parents) > max_states:
                raise ContextExplosionError(
                    f"explicit search from {start} exceeded {max_states} states",
                    states_seen=len(parents),
                )
            work.append(nxt)
    return parents
