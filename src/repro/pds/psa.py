"""Pushdown store automata (paper App. C).

A PSA is a finite automaton ``A = (S, Σ, δ, I, F)`` with ``Q ⊆ S`` whose
control states double as entry points: a PDS state ``⟨q|w⟩`` is accepted
if reading ``w`` from automaton state ``q`` reaches a state in ``F``.
This wrapper couples the underlying :class:`~repro.automata.nfa.NFA`
with the set of control states and implements acceptance, the
top-of-stack projection ``T(A)`` of Alg. 4, and the finiteness analysis
used by the FCR check (Sec. 5, Fig. 4).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.automata import EPSILON, NFA
from repro.automata.finiteness import has_graph_cycle, language_is_finite
from repro.pds.state import EMPTY, PDSState

Shared = Hashable
Symbol = Hashable

#: The unique accepting sink every saturation-produced PSA carries.
FINAL_SINK = ("__psa_final__",)


class PSA:
    """A pushdown store automaton over a fixed set of control states."""

    def __init__(self, automaton: NFA, control_states: Iterable[Shared]) -> None:
        self.automaton = automaton
        self.control_states = frozenset(control_states)

    # ------------------------------------------------------------------
    # Acceptance
    # ------------------------------------------------------------------
    def accepts(self, state: PDSState) -> bool:
        """True iff PDS state ``⟨q|w⟩`` is in the represented set."""
        if state.shared not in self.control_states:
            return False
        return self.automaton.accepts_from(state.shared, state.stack)

    def accepts_config(self, shared: Shared, stack: Iterable[Symbol]) -> bool:
        return self.accepts(PDSState(shared, tuple(stack)))

    def nonempty_from(self, shared: Shared) -> bool:
        """True iff some ``⟨shared|w⟩`` is accepted."""
        if shared not in self.control_states:
            return False
        reachable = self.automaton.reachable_states([shared])
        return bool(reachable & self.automaton.accepting)

    # ------------------------------------------------------------------
    # Projections (Alg. 4, corrected for ε-edges)
    # ------------------------------------------------------------------
    def tops(self, shared: Shared) -> frozenset[Symbol]:
        """``T(A)`` from control state ``shared``: the set of top-of-stack
        symbols over all accepted stacks, with :data:`EMPTY` standing for
        the empty stack.

        Alg. 4 in the paper scans edges out of ``q``; since saturation
        introduces ε-edges, we additionally close over ε before reading
        the first symbol, and emit :data:`EMPTY` exactly if ``⟨q|ε⟩`` is
        accepted.
        """
        if shared not in self.control_states:
            return frozenset()
        nfa = self.automaton
        closure = nfa.epsilon_closure([shared])
        coreachable = nfa.coreachable_states()
        result: set[Symbol] = set()
        if closure & nfa.accepting:
            result.add(EMPTY)
        for state in closure:
            for label in nfa.labels_from(state):
                if label is EPSILON:
                    continue
                if any(target in coreachable for target in nfa.targets(state, label)):
                    result.add(label)
        return frozenset(result)

    def visible_states(self) -> Iterator[tuple[Shared, Symbol]]:
        """All thread-visible states ``(q, T(w))`` of accepted configs."""
        for shared in self.control_states:
            for top in self.tops(shared):
                yield (shared, top)

    # ------------------------------------------------------------------
    # Finiteness (FCR support, Sec. 5)
    # ------------------------------------------------------------------
    def language_is_finite(self) -> bool:
        """True iff the PSA accepts finitely many PDS states.

        The control states act as initial states (the PDS shared-state
        set is finite, so finiteness only hinges on stack words).
        """
        return language_is_finite(self._as_initialized_nfa())

    def has_loop(self) -> bool:
        """The paper's coarser Fig. 4 check: any useful graph cycle."""
        return has_graph_cycle(self._as_initialized_nfa())

    def _as_initialized_nfa(self) -> NFA:
        nfa = self.automaton.copy()
        for shared in self.control_states:
            nfa.add_initial(shared)
        return nfa

    # ------------------------------------------------------------------
    # Enumeration (for tests and explicit conversion under FCR)
    # ------------------------------------------------------------------
    def enumerate_states(self, max_stack: int) -> Iterator[PDSState]:
        """Enumerate accepted states with stack size ≤ ``max_stack``."""
        from repro.automata.finiteness import enumerate_words

        for shared in sorted(self.control_states, key=lambda s: (str(type(s)), repr(s))):
            # Same transition structure, but words must start at `shared`.
            single = NFA(initial=[shared], accepting=self.automaton.accepting)
            for src, label, dst in self.automaton.transitions():
                single.add_transition(src, label, dst)
            for word in enumerate_words(single, max_stack):
                yield PDSState(shared, word)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PSA(controls={len(self.control_states)}, "
            f"states={len(self.automaton)}, "
            f"transitions={self.automaton.num_transitions()})"
        )
