"""PDS actions ``(q, w) → (q', w')`` with ``|w| ≤ 1`` and ``|w'| ≤ 2``.

The paper's Sec. 2.1 semantics distinguishes five shapes, captured by
:class:`ActionKind`:

==================  =============  ==============  =======================
kind                reads          writes          models
==================  =============  ==============  =======================
POP                 one symbol     nothing         procedure return
OVERWRITE           one symbol     one symbol      intraprocedural step
PUSH                one symbol     two symbols     procedure call
EMPTY_OVERWRITE     empty stack    nothing         shared-state change
EMPTY_PUSH          empty stack    one symbol      (re)starting a frame
==================  =============  ==============  =======================

Push and pop actions may change the shared state, exactly as the paper
allows.
"""

from __future__ import annotations

import enum
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

from repro.errors import ModelError

Shared = Hashable
Symbol = Hashable


class ActionKind(enum.Enum):
    POP = "pop"
    OVERWRITE = "overwrite"
    PUSH = "push"
    EMPTY_OVERWRITE = "empty-overwrite"
    EMPTY_PUSH = "empty-push"

    @property
    def reads_empty_stack(self) -> bool:
        return self in (ActionKind.EMPTY_OVERWRITE, ActionKind.EMPTY_PUSH)


def _classify(read: tuple, write: tuple) -> ActionKind:
    if len(read) > 1:
        raise ModelError(f"action reads {len(read)} symbols; at most 1 allowed")
    if len(write) > 2:
        raise ModelError(f"action writes {len(write)} symbols; at most 2 allowed")
    if read:
        if not write:
            return ActionKind.POP
        if len(write) == 1:
            return ActionKind.OVERWRITE
        return ActionKind.PUSH
    # Empty-stack actions write at most one symbol (paper Sec. 2.1 (b)).
    if len(write) == 2:
        raise ModelError("empty-stack actions may write at most 1 symbol")
    if not write:
        return ActionKind.EMPTY_OVERWRITE
    return ActionKind.EMPTY_PUSH


@dataclass(frozen=True, slots=True)
class Action:
    """One pushdown rule ``(from_shared, read) → (to_shared, write)``.

    ``read`` is ``()`` (empty stack) or a 1-tuple; ``write`` has length
    0–2.  For pushes ``write = (ρ0, ρ1)``: ``ρ1`` overwrites the current
    top and ``ρ0`` is pushed above it, so the new stack reads
    ``ρ0 ρ1 σ2..σz`` — the paper's convention.  ``label`` is a free-form
    name used in traces (e.g. ``f1`` in Fig. 1).
    """

    from_shared: Shared
    read: tuple[Symbol, ...]
    to_shared: Shared
    write: tuple[Symbol, ...]
    label: str = field(default="", compare=False)
    #: Shape classification, computed once at construction.  The
    #: saturation engine reads ``kind`` per rule application; recomputing
    #: the classification there was a measurable hot-path cost.
    kind: ActionKind = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.read, tuple):
            object.__setattr__(self, "read", tuple(self.read))
        if not isinstance(self.write, tuple):
            object.__setattr__(self, "write", tuple(self.write))
        # Validates the shape eagerly as a side effect.
        object.__setattr__(self, "kind", _classify(self.read, self.write))

    @property
    def read_symbol(self) -> Symbol | None:
        """Symbol the action consumes, or ``None`` for empty-stack actions."""
        return self.read[0] if self.read else None

    @staticmethod
    def make(
        from_shared: Shared,
        read: Sequence[Symbol] | Symbol | None,
        to_shared: Shared,
        write: Sequence[Symbol],
        label: str = "",
    ) -> "Action":
        """Convenience constructor: ``read`` may be a bare symbol, a
        sequence, or ``None`` (empty stack); ``write`` any sequence."""
        if read is None:
            read_tuple: tuple = ()
        elif isinstance(read, (list, tuple)):
            read_tuple = tuple(read)
        else:
            read_tuple = (read,)
        return Action(from_shared, read_tuple, to_shared, tuple(write), label)

    def __str__(self) -> str:
        name = f"{self.label}: " if self.label else ""
        read = "".join(str(s) for s in self.read) or "ε"
        write = "".join(str(s) for s in self.write) or "ε"
        return f"{name}({self.from_shared},{read})→({self.to_shared},{write})"
