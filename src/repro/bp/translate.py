"""Translation of concurrent Boolean programs to CPDS.

Encoding
--------

* **Shared state** ``q = (owner, lock, retbuf, vals)``:

  - ``owner`` — 0 or the 1-based index of the thread holding atomicity
    (inside an ``atomic`` block or mid return-value handoff);
  - ``lock`` — the global lock bit;
  - ``retbuf`` — ``None`` or ``(value, restore_owner)``, the in-flight
    function return value.  The returning pop takes atomicity (sets
    ``owner`` to the returning thread) and the caller's await-site
    consume restores ``restore_owner``, making the value handoff
    race-free;
  - ``vals`` — the shared Boolean variables in declaration order.

  Two extra shared states exist: :data:`ERR` (the target of failed
  assertions, absorbing) and :data:`INIT` (the paper's ``⊥``) when any
  shared variable is initialized nondeterministically — the first thread
  to move resolves the initial valuation, exactly like Fig. 2's ``f0``.

* **Stack symbol** ``(function, location, locals)`` — the paper's
  "interpreted as the name of the passed function" seeding: each thread
  starts with one symbol, its root's entry.

* **Actions**: calls push ``(callee entry, return site)``; returns pop;
  everything else overwrites.  A thread's actions are only generated
  from shared states with ``owner ∈ {0, i}``, which is what makes
  ``atomic`` atomic.

The compiled safety property is "``ERR`` unreachable", i.e. no assertion
fails.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.bp import ast
from repro.bp.analysis import SymbolTable, analyze
from repro.bp.cfg import (
    CFG,
    AssertOp,
    AssignOp,
    AssumeOp,
    AtomicBeginOp,
    AtomicEndOp,
    CallOp,
    LockOp,
    ReceiveOp,
    ReturnOp,
    SkipOp,
    UnlockOp,
    build_cfg,
)
from repro.bp.eval import eval_expr
from repro.bp.parser import parse_program
from repro.core.property import SharedStateReachability
from repro.cpds.cpds import CPDS
from repro.errors import TranslationError
from repro.pds.pds import PDS

#: Absorbing error shared state (failed assertions).
ERR = "ERR"
#: Pre-initialization shared state (the paper's ⊥), used when some
#: shared variable starts nondeterministic.
INIT = "⊥"


@dataclass
class CompiledProgram:
    """Result of compiling a Boolean program."""

    cpds: CPDS
    prop: SharedStateReachability
    table: SymbolTable
    shared_names: tuple[str, ...]
    thread_roots: tuple[str, ...]
    cfgs: dict[str, CFG]

    def describe_shared(self, q: Any) -> str:
        """Human-readable rendering of a shared state."""
        if q == ERR:
            return "ERR"
        if q == INIT:
            return "⊥"
        owner, lock, retbuf, vals = q
        pieces = [f"{name}={value}" for name, value in zip(self.shared_names, vals)]
        if owner:
            pieces.append(f"atomic=T{owner}")
        if lock:
            pieces.append("locked")
        if retbuf is not None:
            pieces.append(f"ret={retbuf[0]}")
        return "{" + ",".join(pieces) + "}"

    def describe_symbol(self, symbol: Any) -> str:
        """Human-readable rendering of a stack symbol."""
        function, location, locals_ = symbol
        func = self.table.functions[function]
        pieces = [f"{n}={v}" for n, v in zip(func.all_locals, locals_)]
        suffix = f"[{','.join(pieces)}]" if pieces else ""
        return f"{function}@{location}{suffix}"


class _ThreadTranslator:
    """Builds the PDS of one thread instance."""

    def __init__(
        self,
        table: SymbolTable,
        cfgs: dict[str, CFG],
        shared_names: tuple[str, ...],
        thread_index: int,  # 1-based (owner encoding)
        root: str,
        nondet_locals: bool,
        initial_shared,
    ) -> None:
        self.table = table
        self.cfgs = cfgs
        self.shared_names = shared_names
        self.index = thread_index
        self.root = root
        self.nondet_locals = nondet_locals
        self.pds = PDS(initial_shared=initial_shared, name=f"{root}#{thread_index}")

    # -- helpers ---------------------------------------------------------
    def _local_frames(self, function: ast.Function):
        return itertools.product((0, 1), repeat=len(function.all_locals))

    def _shared_tuples(self, with_retbuf: bool):
        """Shared states thread ``index`` can act from."""
        owners = (0, self.index)
        if with_retbuf:
            retbufs = [(value, owner) for value in (0, 1) for owner in (0, self.index)]
        else:
            retbufs = [None]
        for owner in owners:
            for lock in (0, 1):
                for retbuf in retbufs:
                    for vals in itertools.product((0, 1), repeat=len(self.shared_names)):
                        yield (owner, lock, retbuf, vals)

    def _env(self, function: ast.Function, q, frame) -> dict[str, int]:
        env = dict(zip(self.shared_names, q[3]))
        env.update(zip(function.all_locals, frame))  # locals shadow shareds
        return env

    def _apply(self, function: ast.Function, q, frame, updates: dict[str, int]):
        """Write back variable updates, splitting locals from shareds."""
        vals = list(q[3])
        locals_ = list(frame)
        local_index = {name: i for i, name in enumerate(function.all_locals)}
        shared_index = {name: i for i, name in enumerate(self.shared_names)}
        for name, value in updates.items():
            if name in local_index:  # locals shadow shareds
                locals_[local_index[name]] = value
            else:
                vals[shared_index[name]] = value
        return (q[0], q[1], q[2], tuple(vals)), tuple(locals_)

    def _entry_symbol(self, function: ast.Function, args: tuple[int, ...]):
        cfg = self.cfgs[function.name]
        n_plain = len(function.locals)
        if self.nondet_locals:
            for extra in itertools.product((0, 1), repeat=n_plain):
                yield (function.name, cfg.entry, args + extra)
        else:
            yield (function.name, cfg.entry, args + (0,) * n_plain)

    # -- op translation ----------------------------------------------------
    def translate(self) -> PDS:
        for name in sorted(self.table.callees_closure(self.root)):
            function = self.table.functions[name]
            cfg = self.cfgs[name]
            for location, ops in cfg.ops.items():
                for op in ops:
                    self._translate_op(function, cfg, location, op)
        return self.pds

    def _translate_op(self, function, cfg, location, op) -> None:
        name = function.name
        for frame in self._local_frames(function):
            symbol = (name, location, frame)
            if isinstance(op, ReceiveOp):
                for q in self._shared_tuples(with_retbuf=True):
                    value, restore = q[2]
                    if q[0] != self.index:
                        continue  # handoff always owned by this thread
                    q_base = (restore, q[1], None, q[3])
                    q_new, frame_new = self._apply(
                        function, q_base, frame, {op.var: value}
                    )
                    self.pds.rule(q, (symbol,), q_new, ((name, op.target, frame_new),))
                continue

            for q in self._shared_tuples(with_retbuf=False):
                env = self._env(function, q, frame)
                if isinstance(op, SkipOp):
                    self.pds.rule(q, (symbol,), q, ((name, op.target, frame),))
                elif isinstance(op, AssumeOp):
                    if 1 in eval_expr(op.condition, env):
                        self.pds.rule(q, (symbol,), q, ((name, op.target, frame),))
                elif isinstance(op, AssertOp):
                    values = eval_expr(op.condition, env)
                    if 0 in values:
                        self.pds.rule(q, (symbol,), ERR, (symbol,))
                    if 1 in values:
                        self.pds.rule(q, (symbol,), q, ((name, op.target, frame),))
                elif isinstance(op, AssignOp):
                    self._translate_assign(function, q, frame, symbol, op, env)
                elif isinstance(op, CallOp):
                    self._translate_call(function, q, frame, symbol, op, env)
                elif isinstance(op, ReturnOp):
                    self._translate_return(q, symbol, op, env)
                elif isinstance(op, LockOp):
                    if q[1] == 0:
                        q_new = (q[0], 1, q[2], q[3])
                        self.pds.rule(q, (symbol,), q_new, ((name, op.target, frame),))
                elif isinstance(op, UnlockOp):
                    q_new = (q[0], 0, q[2], q[3])
                    self.pds.rule(q, (symbol,), q_new, ((name, op.target, frame),))
                elif isinstance(op, AtomicBeginOp):
                    if q[0] == 0:
                        q_new = (self.index, q[1], q[2], q[3])
                        self.pds.rule(q, (symbol,), q_new, ((name, op.target, frame),))
                elif isinstance(op, AtomicEndOp):
                    if q[0] == self.index:
                        q_new = (0, q[1], q[2], q[3])
                        self.pds.rule(q, (symbol,), q_new, ((name, op.target, frame),))
                else:  # pragma: no cover
                    raise TranslationError(f"unknown op {type(op).__name__}")

    def _translate_assign(self, function, q, frame, symbol, op: AssignOp, env) -> None:
        name = function.name
        value_sets = [eval_expr(value, env) for value in op.values]
        for combo in itertools.product(*value_sets):
            updates = dict(zip(op.targets, combo))
            q_new, frame_new = self._apply(function, q, frame, updates)
            if op.constrain is not None:
                post_env = self._env(function, q_new, frame_new)
                if 1 not in eval_expr(op.constrain, post_env):
                    continue
            self.pds.rule(q, (symbol,), q_new, ((name, op.target, frame_new),))

    def _translate_call(self, function, q, frame, symbol, op: CallOp, env) -> None:
        name = function.name
        callee = self.table.functions[op.func]
        arg_sets = [eval_expr(arg, env) for arg in op.args]
        return_site = (name, op.target, frame)
        for combo in itertools.product(*arg_sets):
            for entry in self._entry_symbol(callee, tuple(combo)):
                self.pds.rule(q, (symbol,), q, (entry, return_site))

    def _translate_return(self, q, symbol, op: ReturnOp, env) -> None:
        if op.value is None:
            self.pds.rule(q, (symbol,), q, ())
            return
        for value in eval_expr(op.value, env):
            # Take atomicity for the handoff; remember who to restore.
            q_new = (self.index, q[1], (value, q[0]), q[3])
            self.pds.rule(q, (symbol,), q_new, ())


def compile_program(
    program: ast.Program,
    init: dict[str, int | str] | None = None,
    nondet_locals: bool = False,
) -> CompiledProgram:
    """Compile an analyzed AST into a CPDS plus its safety property.

    ``init`` maps shared variables to 0, 1 or ``"*"`` (nondeterministic,
    resolved by the first action of whichever thread is scheduled first,
    via the ``⊥`` pre-state).  Unmentioned variables start at 0.
    ``nondet_locals`` makes non-parameter locals start nondeterministic
    instead of 0.
    """
    table = analyze(program)
    init = dict(init or {})
    for nm in init:
        if nm not in program.shared:
            raise TranslationError(f"init for unknown shared variable {nm!r}")
    shared_names = tuple(program.shared)
    cfgs = {func.name: build_cfg(func) for func in program.functions}

    threads: list[PDS] = []
    stacks: list[tuple] = []
    nondet_names = [name for name in shared_names if init.get(name) == "*"]
    concrete = tuple(
        0 if init.get(name) in (None, "*") else int(init[name]) for name in shared_names
    )
    base_q = (0, 0, None, concrete)
    initial_shared = INIT if nondet_names else base_q

    for position, root in enumerate(table.thread_roots, start=1):
        translator = _ThreadTranslator(
            table, cfgs, shared_names, position, root, nondet_locals, initial_shared
        )
        pds = translator.translate()
        pds.declare_shared(ERR)

        root_function = table.functions[root]
        root_entries = list(translator._entry_symbol(root_function, ()))
        entry0 = root_entries[0]
        pds.declare_symbol(entry0)

        if nondet_names:
            # ⊥ bootstrap: the first scheduled thread fixes the initial
            # valuation (and, under nondet_locals, its own frame).
            indices = [shared_names.index(name) for name in nondet_names]
            for values in itertools.product((0, 1), repeat=len(indices)):
                vals = list(concrete)
                for idx, value in zip(indices, values):
                    vals[idx] = value
                q = (0, 0, None, tuple(vals))
                for entry in root_entries:
                    pds.rule(INIT, (entry0,), q, (entry,))
        elif nondet_locals and len(root_entries) > 1:
            raise TranslationError(
                "nondet_locals on thread roots requires at least one "
                "nondeterministically initialized shared variable "
                "(the ⊥ bootstrap resolves the frame)"
            )

        threads.append(pds)
        stacks.append((entry0,))

    cpds = CPDS(threads, initial_stacks=stacks, name="bp")
    return CompiledProgram(
        cpds=cpds,
        prop=SharedStateReachability({ERR}),
        table=table,
        shared_names=shared_names,
        thread_roots=table.thread_roots,
        cfgs=cfgs,
    )


def compile_source(
    source: str,
    init: dict[str, int | str] | None = None,
    nondet_locals: bool = False,
) -> CompiledProgram:
    """Parse, analyze and compile Boolean-program source text."""
    return compile_program(parse_program(source), init, nondet_locals)
