"""Recursive-descent parser for the App. B language.

Expression precedence (tightest first): ``!``, then ``= / != / ==``,
then ``&``, then ``^``, then ``|``.  All binary operators are
left-associative.  Labels may be identifiers or numbers (the paper's
examples label statements with line numbers).
"""

from __future__ import annotations

from repro.bp import ast
from repro.bp.lexer import Token, tokenize
from repro.errors import ParseError


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token | None:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def at(self, kind: str, value: str | None = None, offset: int = 0) -> bool:
        token = self.peek(offset)
        if token is None:
            return False
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def take(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if token is None:
            last = self.tokens[-1] if self.tokens else None
            line = last.line if last else 1
            raise ParseError(f"unexpected end of input (wanted {value or kind})", line, 0)
        if token.kind != kind or (value is not None and token.value != value):
            raise ParseError(
                f"expected {value or kind}, found {token.value!r}",
                token.line,
                token.column,
            )
        self.position += 1
        return token

    def take_keyword(self, word: str) -> Token:
        return self.take("keyword", word)

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        shared: list[str] = []
        while self.at("keyword", "decl"):
            shared.extend(self.parse_decl())
        functions: list[ast.Function] = []
        while self.peek() is not None:
            functions.append(self.parse_function())
        return ast.Program(tuple(shared), tuple(functions))

    def parse_decl(self) -> list[str]:
        self.take_keyword("decl")
        names = [self.take("ident").value]
        while self.at(",") or self.at("ident"):
            if self.at(","):
                self.take(",")
            names.append(self.take("ident").value)
        self.take(";")
        return names

    def parse_function(self) -> ast.Function:
        if self.at("keyword", "void"):
            self.take_keyword("void")
            returns_bool = False
        else:
            self.take_keyword("bool")
            returns_bool = True
        name = self.take("ident").value
        self.take("(")
        params: list[str] = []
        if self.at("ident"):
            params.append(self.take("ident").value)
            while self.at(","):
                self.take(",")
                params.append(self.take("ident").value)
        self.take(")")
        self.take("{")
        locals_: list[str] = []
        while self.at("keyword", "decl"):
            locals_.extend(self.parse_decl())
        body = self.parse_stmt_list()
        self.take("}")
        return ast.Function(name, tuple(params), tuple(locals_), body, returns_bool)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_stmt_list(self) -> tuple[ast.LabeledStmt, ...]:
        statements: list[ast.LabeledStmt] = []
        while not self.at("}") and self.peek() is not None:
            statements.append(self.parse_labeled_stmt())
        return tuple(statements)

    def _label_ahead(self) -> bool:
        return (self.at("ident") or self.at("number")) and self.at(":", offset=1)

    def parse_labeled_stmt(self) -> ast.LabeledStmt:
        label = None
        token = self.peek()
        line = token.line if token else 0
        if self._label_ahead():
            label = self.take(self.peek().kind).value
            self.take(":")
        stmt = self.parse_stmt()
        return ast.LabeledStmt(stmt, label, line)

    def parse_stmt(self) -> ast.Stmt:
        if self.at("keyword", "while"):
            return self.parse_while()
        if self.at("keyword", "if"):
            return self.parse_if()
        if self.at("keyword", "atomic"):
            return self.parse_atomic()
        stmt = self.parse_simple_stmt()
        self.take(";")
        return stmt

    def parse_while(self) -> ast.While:
        self.take_keyword("while")
        self.take("(")
        condition = self.parse_expr()
        self.take(")")
        self.take("{")
        body = self.parse_stmt_list()
        self.take("}")
        return ast.While(condition, body)

    def parse_if(self) -> ast.If:
        self.take_keyword("if")
        self.take("(")
        condition = self.parse_expr()
        self.take(")")
        self.take("{")
        then_body = self.parse_stmt_list()
        self.take("}")
        else_body: tuple[ast.LabeledStmt, ...] = ()
        if self.at("keyword", "else"):
            self.take_keyword("else")
            self.take("{")
            else_body = self.parse_stmt_list()
            self.take("}")
        return ast.If(condition, then_body, else_body)

    def parse_atomic(self) -> ast.Atomic:
        self.take_keyword("atomic")
        self.take("{")
        body = self.parse_stmt_list()
        self.take("}")
        return ast.Atomic(body)

    def parse_simple_stmt(self) -> ast.Stmt:
        if self.at("keyword", "skip"):
            self.take_keyword("skip")
            return ast.Skip()
        if self.at("keyword", "lock"):
            self.take_keyword("lock")
            return ast.Lock()
        if self.at("keyword", "unlock"):
            self.take_keyword("unlock")
            return ast.Unlock()
        if self.at("keyword", "goto"):
            return self.parse_goto()
        if self.at("keyword", "assume"):
            self.take_keyword("assume")
            self.take("(")
            condition = self.parse_expr()
            self.take(")")
            return ast.Assume(condition)
        if self.at("keyword", "assert"):
            self.take_keyword("assert")
            self.take("(")
            condition = self.parse_expr()
            self.take(")")
            return ast.Assert(condition)
        if self.at("keyword", "return"):
            self.take_keyword("return")
            if self.at(";"):
                return ast.Return(None)
            return ast.Return(self.parse_expr())
        if self.at("keyword", "thread_create"):
            self.take_keyword("thread_create")
            self.take("(")
            if self.at("&"):
                self.take("&")
            func = self.take("ident").value
            self.take(")")
            return ast.ThreadCreate(func)
        if self.at("keyword", "call"):
            func, args = self.parse_call_tail()
            return ast.Call(func, args, target=None)
        # Assignment or value-call: starts with an identifier list.
        return self.parse_assign_or_value_call()

    def parse_goto(self) -> ast.Goto:
        self.take_keyword("goto")
        labels = [self.take(self.peek().kind).value if self.at("number") else self.take("ident").value]
        while self.at(","):
            self.take(",")
            labels.append(
                self.take(self.peek().kind).value if self.at("number") else self.take("ident").value
            )
        return ast.Goto(tuple(labels))

    def parse_call_tail(self) -> tuple[str, tuple[ast.Expr, ...]]:
        self.take_keyword("call")
        func = self.take("ident").value
        self.take("(")
        args: list[ast.Expr] = []
        if not self.at(")"):
            args.append(self.parse_expr())
            while self.at(","):
                self.take(",")
                args.append(self.parse_expr())
        self.take(")")
        return func, tuple(args)

    def parse_assign_or_value_call(self) -> ast.Stmt:
        targets = [self.take("ident").value]
        while self.at(","):
            self.take(",")
            targets.append(self.take("ident").value)
        self.take(":=")
        if self.at("keyword", "call"):
            token = self.peek()
            func, args = self.parse_call_tail()
            if len(targets) != 1:
                raise ParseError(
                    "a call assigns exactly one target", token.line, token.column
                )
            return ast.Call(func, args, target=targets[0])
        values = [self.parse_expr()]
        while self.at(","):
            self.take(",")
            values.append(self.parse_expr())
        constrain = None
        if self.at("keyword", "constrain"):
            self.take_keyword("constrain")
            constrain = self.parse_expr()
        return ast.Assign(tuple(targets), tuple(values), constrain)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_xor()
        while self.at("|"):
            self.take("|")
            left = ast.BinOp("|", left, self.parse_xor())
        return left

    def parse_xor(self) -> ast.Expr:
        left = self.parse_and()
        while self.at("^"):
            self.take("^")
            left = ast.BinOp("^", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_equality()
        while self.at("&"):
            self.take("&")
            left = ast.BinOp("&", left, self.parse_equality())
        return left

    def parse_equality(self) -> ast.Expr:
        left = self.parse_unary()
        while self.at("=") or self.at("==") or self.at("!="):
            token = self.peek()
            self.take(token.kind)
            op = "=" if token.value in ("=", "==") else "!="
            left = ast.BinOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> ast.Expr:
        if self.at("!"):
            self.take("!")
            return ast.Not(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        if self.at("("):
            self.take("(")
            inner = self.parse_expr()
            self.take(")")
            return inner
        if self.at("*"):
            self.take("*")
            return ast.Nondet()
        if self.at("number"):
            token = self.take("number")
            if token.value not in ("0", "1"):
                raise ParseError(
                    f"constants are 0 or 1, found {token.value}", token.line, token.column
                )
            return ast.Const(int(token.value))
        if self.at("ident"):
            return ast.Var(self.take("ident").value)
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input in expression", 0, 0)
        raise ParseError(f"unexpected {token.value!r} in expression", token.line, token.column)


def parse_program(source: str) -> ast.Program:
    """Parse source text into a :class:`~repro.bp.ast.Program`."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program()
    return program
