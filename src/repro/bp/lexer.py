"""Tokenizer for the App. B Boolean-program language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset(
    {
        "decl",
        "void",
        "bool",
        "skip",
        "goto",
        "assume",
        "assert",
        "call",
        "return",
        "constrain",
        "while",
        "if",
        "else",
        "atomic",
        "lock",
        "unlock",
        "thread_create",
    }
)

#: Multi-character operators first so maximal munch works.
SYMBOLS = [
    ":=",
    "!=",
    "==",
    "(",
    ")",
    "{",
    "}",
    ";",
    ":",
    ",",
    "&",
    "|",
    "^",
    "=",
    "!",
    "*",
]


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # "ident", "number", "keyword", or the symbol itself
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.value!r}@{self.line}:{self.column}"


def tokenize(text: str) -> list[Token]:
    """Tokenize a source text; raises :class:`LexError` on junk.

    Comments: ``//`` to end of line and ``/* ... */`` (non-nesting).
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    position = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if text[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = text[position]
        if char in " \t\r\n":
            advance(1)
            continue
        if text.startswith("//", position):
            while position < length and text[position] != "\n":
                advance(1)
            continue
        if text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, column)
            advance(end + 2 - position)
            continue
        if char.isalpha() or char == "_":
            start = position
            start_line, start_column = line, column
            while position < length and (text[position].isalnum() or text[position] == "_"):
                advance(1)
            word = text[start:position]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, start_line, start_column))
            continue
        if char.isdigit():
            start = position
            start_line, start_column = line, column
            while position < length and text[position].isdigit():
                advance(1)
            tokens.append(Token("number", text[start:position], start_line, start_column))
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, position):
                tokens.append(Token(symbol, symbol, line, column))
                advance(len(symbol))
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {char!r}", line, column)
    return tokens
