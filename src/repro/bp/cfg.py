"""Control-flow graphs for Boolean-program functions.

Structured statements are lowered into numbered locations with primitive
operations on edges: assumes (branching), assignments, asserts, calls
(with a synthetic *await* location for value calls), returns, lock and
atomic markers.  The translator turns each (location, op) pair into PDS
actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bp import ast


# ---------------------------------------------------------------------------
# Primitive operations (CFG edge labels)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Op:
    """Base class; ``target`` is the destination location (None = none)."""

    target: int | None


@dataclass(frozen=True, slots=True)
class SkipOp(Op):
    pass


@dataclass(frozen=True, slots=True)
class AssumeOp(Op):
    condition: ast.Expr


@dataclass(frozen=True, slots=True)
class AssertOp(Op):
    condition: ast.Expr


@dataclass(frozen=True, slots=True)
class AssignOp(Op):
    targets: tuple[str, ...]
    values: tuple[ast.Expr, ...]
    constrain: ast.Expr | None


@dataclass(frozen=True, slots=True)
class CallOp(Op):
    """``target`` is the return site the callee pops back to: the await
    location for value calls, the plain continuation otherwise."""

    func: str
    args: tuple[ast.Expr, ...]
    ret_var: str | None


@dataclass(frozen=True, slots=True)
class ReceiveOp(Op):
    """Synthetic await-site op: consume the return buffer into ``var``."""

    var: str


@dataclass(frozen=True, slots=True)
class ReturnOp(Op):
    """``value`` is None for void returns; bool functions falling off the
    end return ``*`` (implicit nondeterministic result)."""

    value: ast.Expr | None


@dataclass(frozen=True, slots=True)
class LockOp(Op):
    pass


@dataclass(frozen=True, slots=True)
class UnlockOp(Op):
    pass


@dataclass(frozen=True, slots=True)
class AtomicBeginOp(Op):
    pass


@dataclass(frozen=True, slots=True)
class AtomicEndOp(Op):
    pass


# ---------------------------------------------------------------------------
# The CFG container
# ---------------------------------------------------------------------------

@dataclass
class CFG:
    """Lowered control flow of one function."""

    function: ast.Function
    entry: int
    exit: int
    ops: dict[int, list[Op]] = field(default_factory=dict)
    label_of: dict[str, int] = field(default_factory=dict)

    @property
    def n_locations(self) -> int:
        locations = set(self.ops)
        for op_list in self.ops.values():
            locations.update(op.target for op in op_list if op.target is not None)
        return len(locations | {self.entry, self.exit})


class _Builder:
    def __init__(self, function: ast.Function) -> None:
        self.function = function
        self.counter = 0
        self.loc_by_node: dict[int, int] = {}  # id(LabeledStmt) -> location
        self.label_of: dict[str, int] = {}
        self.ops: dict[int, list[Op]] = {}

    def fresh(self) -> int:
        location = self.counter
        self.counter += 1
        return location

    def emit(self, location: int, op: Op) -> None:
        self.ops.setdefault(location, []).append(op)

    # Phase A: allocate a location per statement, register labels.
    def allocate(self, body) -> None:
        for labeled in body:
            location = self.fresh()
            self.loc_by_node[id(labeled)] = location
            if labeled.label is not None:
                self.label_of[labeled.label] = location
            stmt = labeled.stmt
            if isinstance(stmt, ast.While):
                self.allocate(stmt.body)
            elif isinstance(stmt, ast.If):
                self.allocate(stmt.then_body)
                self.allocate(stmt.else_body)
            elif isinstance(stmt, ast.Atomic):
                self.allocate(stmt.body)

    # Phase B: emit ops now that every location is known.
    def lower(self, body, follow: int) -> None:
        for index, labeled in enumerate(body):
            if index + 1 < len(body):
                nxt = self.loc_by_node[id(body[index + 1])]
            else:
                nxt = follow
            self.lower_stmt(labeled, nxt)

    def lower_stmt(self, labeled: ast.LabeledStmt, nxt: int) -> None:
        location = self.loc_by_node[id(labeled)]
        stmt = labeled.stmt

        if isinstance(stmt, (ast.Skip, ast.ThreadCreate)):
            # thread_create only occurs in main, which is never lowered
            # into a thread; treat as skip for completeness.
            self.emit(location, SkipOp(nxt))
        elif isinstance(stmt, ast.Goto):
            for label in stmt.labels:
                self.emit(location, SkipOp(self.label_of[label]))
        elif isinstance(stmt, ast.Assume):
            self.emit(location, AssumeOp(nxt, stmt.condition))
        elif isinstance(stmt, ast.Assert):
            self.emit(location, AssertOp(nxt, stmt.condition))
        elif isinstance(stmt, ast.Assign):
            self.emit(location, AssignOp(nxt, stmt.targets, stmt.values, stmt.constrain))
        elif isinstance(stmt, ast.Call):
            if stmt.target is not None:
                await_loc = self.fresh()
                self.emit(location, CallOp(await_loc, stmt.func, stmt.args, stmt.target))
                self.emit(await_loc, ReceiveOp(nxt, stmt.target))
            else:
                self.emit(location, CallOp(nxt, stmt.func, stmt.args, None))
        elif isinstance(stmt, ast.Return):
            value = stmt.value
            self.emit(location, ReturnOp(None, value))
        elif isinstance(stmt, ast.While):
            body_entry = (
                self.loc_by_node[id(stmt.body[0])] if stmt.body else location
            )
            self.emit(location, AssumeOp(body_entry, stmt.condition))
            self.emit(location, AssumeOp(nxt, ast.Not(stmt.condition)))
            self.lower(stmt.body, location)
        elif isinstance(stmt, ast.If):
            then_entry = (
                self.loc_by_node[id(stmt.then_body[0])] if stmt.then_body else nxt
            )
            else_entry = (
                self.loc_by_node[id(stmt.else_body[0])] if stmt.else_body else nxt
            )
            self.emit(location, AssumeOp(then_entry, stmt.condition))
            self.emit(location, AssumeOp(else_entry, ast.Not(stmt.condition)))
            self.lower(stmt.then_body, nxt)
            self.lower(stmt.else_body, nxt)
        elif isinstance(stmt, ast.Atomic):
            end_loc = self.fresh()
            body_entry = (
                self.loc_by_node[id(stmt.body[0])] if stmt.body else end_loc
            )
            self.emit(location, AtomicBeginOp(body_entry))
            self.emit(end_loc, AtomicEndOp(nxt))
            self.lower(stmt.body, end_loc)
        elif isinstance(stmt, ast.Lock):
            self.emit(location, LockOp(nxt))
        elif isinstance(stmt, ast.Unlock):
            self.emit(location, UnlockOp(nxt))
        else:  # pragma: no cover - parser produces no other nodes
            raise TypeError(f"cannot lower {type(stmt).__name__}")


def build_cfg(function: ast.Function) -> CFG:
    """Lower one function into a :class:`CFG`.

    The synthetic exit location carries the implicit return: void for
    void functions, ``return *`` for bool functions that fall off the
    end.
    """
    builder = _Builder(function)
    builder.allocate(function.body)
    exit_loc = builder.fresh()
    implicit = ast.Nondet() if function.returns_bool else None
    builder.emit(exit_loc, ReturnOp(None, implicit))
    builder.lower(function.body, exit_loc)
    entry = (
        builder.loc_by_node[id(function.body[0])] if function.body else exit_loc
    )
    return CFG(
        function=function,
        entry=entry,
        exit=exit_loc,
        ops=builder.ops,
        label_of=builder.label_of,
    )
