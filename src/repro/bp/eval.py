"""Expression evaluation over Boolean valuations.

Because of the nondeterministic ``*``, an expression evaluates to a *set*
of possible values; every occurrence of ``*`` is an independent coin, so
set semantics composes pointwise: ``eval(a & b)`` is
``{x & y : x ∈ eval(a), y ∈ eval(b)}``.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bp import ast
from repro.errors import SemanticError

_OPS = {
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "=": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
}

BOTH = frozenset({0, 1})


def eval_expr(expr: ast.Expr, env: Mapping[str, int]) -> frozenset[int]:
    """Set of possible values of ``expr`` in ``env`` (var → 0/1)."""
    if isinstance(expr, ast.Const):
        return frozenset({expr.value})
    if isinstance(expr, ast.Var):
        try:
            return frozenset({env[expr.name]})
        except KeyError:
            raise SemanticError(f"undefined variable {expr.name!r}") from None
    if isinstance(expr, ast.Nondet):
        return BOTH
    if isinstance(expr, ast.Not):
        return frozenset({1 - value for value in eval_expr(expr.operand, env)})
    if isinstance(expr, ast.BinOp):
        op = _OPS[expr.op]
        lefts = eval_expr(expr.left, env)
        rights = eval_expr(expr.right, env)
        return frozenset({op(lhs, rhs) for lhs in lefts for rhs in rights})
    raise SemanticError(f"cannot evaluate {type(expr).__name__}")


def may_be_true(expr: ast.Expr, env: Mapping[str, int]) -> bool:
    return 1 in eval_expr(expr, env)


def may_be_false(expr: ast.Expr, env: Mapping[str, int]) -> bool:
    return 0 in eval_expr(expr, env)


def free_variables(expr: ast.Expr) -> frozenset[str]:
    """Variables referenced by an expression."""
    if isinstance(expr, ast.Var):
        return frozenset({expr.name})
    if isinstance(expr, ast.Not):
        return free_variables(expr.operand)
    if isinstance(expr, ast.BinOp):
        return free_variables(expr.left) | free_variables(expr.right)
    return frozenset()
