"""Semantic analysis of Boolean programs.

Checks performed (all violations collected, then raised together):

* ``main`` exists, is void and parameterless, and contains only
  ``thread_create`` / ``skip`` statements; ``thread_create`` appears
  nowhere else and targets a parameterless void function;
* every variable reference resolves (locals shadow shareds);
* no duplicate shared/local/param declarations;
* calls: callee exists, arity matches, ``x := call f`` requires a bool
  ``f``, bare ``call f`` requires a void ``f``;
* ``return e`` only in bool functions, bare ``return`` only in void ones;
* labels unique per function, ``goto`` targets defined;
* ``atomic`` blocks neither nest syntactically nor call (transitively)
  a function containing ``atomic``.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.bp import ast
from repro.bp.eval import free_variables
from repro.errors import SemanticError


@dataclass
class SymbolTable:
    """Analysis results used by the translator."""

    program: ast.Program
    functions: dict[str, ast.Function]
    thread_roots: tuple[str, ...]
    #: functions whose body (not counting callees) contains atomic
    has_atomic: frozenset[str]
    #: call graph: caller -> set of callees
    calls: dict[str, frozenset[str]]
    labels: dict[str, dict[str, ast.LabeledStmt]] = field(default_factory=dict)

    def callees_closure(self, name: str) -> frozenset[str]:
        """All functions transitively callable from ``name`` (inclusive)."""
        seen: set[str] = set()
        work = [name]
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            work.extend(self.calls.get(current, ()))
        return frozenset(seen)


def iter_labeled(body) -> Iterator[tuple[ast.LabeledStmt, bool]]:
    """Yield every labeled statement in a body, recursing into blocks.

    The flag tells whether the statement sits (syntactically) inside an
    ``atomic`` block.
    """
    stack = [(labeled, False) for labeled in reversed(body)]
    while stack:
        labeled, in_atomic = stack.pop()
        yield labeled, in_atomic
        stmt = labeled.stmt
        if isinstance(stmt, ast.While):
            stack.extend((inner, in_atomic) for inner in reversed(stmt.body))
        elif isinstance(stmt, ast.If):
            stack.extend((inner, in_atomic) for inner in reversed(stmt.else_body))
            stack.extend((inner, in_atomic) for inner in reversed(stmt.then_body))
        elif isinstance(stmt, ast.Atomic):
            stack.extend((inner, True) for inner in reversed(stmt.body))


def _stmt_expressions(stmt: ast.Stmt) -> list[ast.Expr]:
    if isinstance(stmt, (ast.Assume, ast.Assert)):
        return [stmt.condition]
    if isinstance(stmt, ast.Assign):
        exprs = list(stmt.values)
        if stmt.constrain is not None:
            exprs.append(stmt.constrain)
        return exprs
    if isinstance(stmt, ast.Call):
        return list(stmt.args)
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        return [stmt.value]
    if isinstance(stmt, (ast.While, ast.If)):
        return [stmt.condition]
    return []


def analyze(program: ast.Program) -> SymbolTable:
    """Validate a program; return the symbol table or raise
    :class:`SemanticError` listing every problem found."""
    errors: list[str] = []
    functions: dict[str, ast.Function] = {}

    # --- declarations -------------------------------------------------
    seen_shared: set[str] = set()
    for name in program.shared:
        if name in seen_shared:
            errors.append(f"shared variable {name!r} declared twice")
        seen_shared.add(name)

    for func in program.functions:
        if func.name in functions:
            errors.append(f"function {func.name!r} defined twice")
        functions[func.name] = func
        seen_locals: set[str] = set()
        for name in func.all_locals:
            if name in seen_locals:
                errors.append(f"{func.name}: local {name!r} declared twice")
            seen_locals.add(name)

    # --- per-function statement checks ---------------------------------
    calls: dict[str, set[str]] = {name: set() for name in functions}
    has_atomic: set[str] = set()
    labels: dict[str, dict[str, ast.LabeledStmt]] = {}
    thread_roots: list[str] = []

    for func in program.functions:
        in_scope = set(program.shared) | set(func.all_locals)
        func_labels: dict[str, ast.LabeledStmt] = {}
        labels[func.name] = func_labels
        goto_targets: list[tuple[str, int]] = []

        for labeled, in_atomic in iter_labeled(func.body):
            stmt = labeled.stmt
            where = f"{func.name}:{labeled.line}"
            if labeled.label is not None:
                if labeled.label in func_labels:
                    errors.append(f"{where}: duplicate label {labeled.label!r}")
                func_labels[labeled.label] = labeled

            for expr in _stmt_expressions(stmt):
                for var in free_variables(expr):
                    if var not in in_scope:
                        errors.append(f"{where}: undefined variable {var!r}")

            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) != len(stmt.values):
                    errors.append(
                        f"{where}: {len(stmt.targets)} targets but "
                        f"{len(stmt.values)} values"
                    )
                for target in stmt.targets:
                    if target not in in_scope:
                        errors.append(f"{where}: undefined assignment target {target!r}")
            elif isinstance(stmt, ast.Goto):
                goto_targets.extend((label, labeled.line) for label in stmt.labels)
            elif isinstance(stmt, ast.Call):
                callee = functions.get(stmt.func)
                if callee is None:
                    errors.append(f"{where}: call to undefined function {stmt.func!r}")
                else:
                    calls[func.name].add(stmt.func)
                    if len(stmt.args) != len(callee.params):
                        errors.append(
                            f"{where}: {stmt.func} expects {len(callee.params)} "
                            f"arguments, got {len(stmt.args)}"
                        )
                    if stmt.target is not None and not callee.returns_bool:
                        errors.append(
                            f"{where}: void function {stmt.func} used in value call"
                        )
                    if stmt.target is None and callee.returns_bool:
                        errors.append(
                            f"{where}: bool function {stmt.func} requires a target"
                        )
                if stmt.target is not None and stmt.target not in in_scope:
                    errors.append(f"{where}: undefined call target {stmt.target!r}")
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None and not func.returns_bool:
                    errors.append(f"{where}: void function returns a value")
                if stmt.value is None and func.returns_bool:
                    errors.append(f"{where}: bool function returns no value")
            elif isinstance(stmt, ast.Atomic):
                if in_atomic:
                    errors.append(f"{where}: nested atomic block")
                has_atomic.add(func.name)
            elif isinstance(stmt, ast.ThreadCreate):
                if func.name != "main":
                    errors.append(f"{where}: thread_create outside main")
                target = functions.get(stmt.func)
                if target is None:
                    errors.append(f"{where}: thread_create of undefined {stmt.func!r}")
                else:
                    if target.returns_bool or target.params:
                        errors.append(
                            f"{where}: thread root {stmt.func} must be void "
                            "and parameterless"
                        )
                    thread_roots.append(stmt.func)

        for label, line in goto_targets:
            if label not in func_labels:
                errors.append(f"{func.name}:{line}: goto to unknown label {label!r}")

    # --- main ----------------------------------------------------------
    main = functions.get("main")
    if main is None:
        errors.append("no main function")
    else:
        if main.returns_bool or main.params:
            errors.append("main must be void and parameterless")
        for labeled, _ in iter_labeled(main.body):
            if not isinstance(labeled.stmt, (ast.ThreadCreate, ast.Skip)):
                errors.append(
                    f"main:{labeled.line}: only thread_create/skip allowed in main"
                )
        if not thread_roots:
            errors.append("main creates no threads")

    # --- atomic nesting through calls -----------------------------------
    table = SymbolTable(
        program=program,
        functions=functions,
        thread_roots=tuple(thread_roots),
        has_atomic=frozenset(has_atomic),
        calls={name: frozenset(callees) for name, callees in calls.items()},
        labels=labels,
    )
    for func in program.functions:
        for labeled, in_atomic in iter_labeled(func.body):
            stmt = labeled.stmt
            if in_atomic and isinstance(stmt, ast.Call) and stmt.func in functions:
                reachable = table.callees_closure(stmt.func)
                if reachable & table.has_atomic:
                    errors.append(
                        f"{func.name}:{labeled.line}: call inside atomic reaches "
                        f"atomic-using function(s) {sorted(reachable & table.has_atomic)}"
                    )

    if errors:
        raise SemanticError("; ".join(errors))
    return table
