"""Concurrent Boolean programs (paper App. B).

Boolean programs are the abstract, finite-data programs that predicate
abstraction produces from C/Java sources; the paper's benchmarks are
Boolean programs translated to CPDS.  This package implements the App. B
language end to end:

* :mod:`~repro.bp.lexer` / :mod:`~repro.bp.parser` / :mod:`~repro.bp.ast`
  — concrete syntax to AST;
* :mod:`~repro.bp.analysis` — symbol tables and semantic checks
  (arities, labels, call typing, atomic nesting via the call graph);
* :mod:`~repro.bp.cfg` — control-flow graphs with primitive operations;
* :mod:`~repro.bp.eval` — expression evaluation over Boolean valuations
  with the nondeterministic ``*``;
* :mod:`~repro.bp.translate` — CFGs to a CPDS plus safety property
  (failed ``assert`` → dedicated error shared state);
* :mod:`~repro.bp.pretty` — AST back to source text.

The one-call entry point is :func:`~repro.bp.translate.compile_program`.
"""

from repro.bp.lexer import Token, tokenize
from repro.bp.parser import parse_program
from repro.bp.analysis import analyze
from repro.bp.cfg import build_cfg
from repro.bp.eval import eval_expr
from repro.bp.translate import CompiledProgram, compile_program, compile_source
from repro.bp.pretty import pretty_program

__all__ = [
    "CompiledProgram",
    "Token",
    "analyze",
    "build_cfg",
    "compile_program",
    "compile_source",
    "eval_expr",
    "parse_program",
    "pretty_program",
    "tokenize",
]
