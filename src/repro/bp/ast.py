"""Abstract syntax of the App. B Boolean-program language.

The node set mirrors Fig. 6 of the paper: programs are global
declarations plus functions; statements carry optional labels; all data
is Boolean; expressions include the nondeterministic choice ``*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """``0`` or ``1``."""

    value: int


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A variable reference (locals shadow shareds)."""

    name: str


@dataclass(frozen=True, slots=True)
class Nondet(Expr):
    """The nondeterministic coin ``*`` (fresh per evaluation)."""


@dataclass(frozen=True, slots=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """``op`` ∈ {"&", "|", "^", "=", "!="}."""

    op: str
    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class for statements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Skip(Stmt):
    pass


@dataclass(frozen=True, slots=True)
class Goto(Stmt):
    """Nondeterministic goto: one or more target labels."""

    labels: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Assume(Stmt):
    condition: Expr


@dataclass(frozen=True, slots=True)
class Assert(Stmt):
    condition: Expr


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    """Parallel assignment ``x1,..,xn := e1,..,en [constrain e]``.

    ``constrain`` is evaluated over the post-assignment valuation and
    filters the allowed transitions.
    """

    targets: tuple[str, ...]
    values: tuple[Expr, ...]
    constrain: Expr | None = None


@dataclass(frozen=True, slots=True)
class Call(Stmt):
    """``target := call func(args)`` or plain ``call func(args)``."""

    func: str
    args: tuple[Expr, ...]
    target: str | None = None


@dataclass(frozen=True, slots=True)
class Return(Stmt):
    """``return`` (void functions) or ``return e`` (bool functions)."""

    value: Expr | None = None


@dataclass(frozen=True, slots=True)
class While(Stmt):
    condition: Expr
    body: tuple["LabeledStmt", ...]


@dataclass(frozen=True, slots=True)
class If(Stmt):
    condition: Expr
    then_body: tuple["LabeledStmt", ...]
    else_body: tuple["LabeledStmt", ...] = ()


@dataclass(frozen=True, slots=True)
class Atomic(Stmt):
    """``atomic { ... }``: the block runs without preemption."""

    body: tuple["LabeledStmt", ...]


@dataclass(frozen=True, slots=True)
class Lock(Stmt):
    """Acquire the single global lock (blocks while held)."""


@dataclass(frozen=True, slots=True)
class Unlock(Stmt):
    """Release the global lock."""


@dataclass(frozen=True, slots=True)
class ThreadCreate(Stmt):
    """``thread_create(&func)`` — only allowed in ``main``."""

    func: str


@dataclass(frozen=True, slots=True)
class LabeledStmt:
    """A statement with its optional label (Fig. 6: ``[label: stmt;]``)."""

    stmt: Stmt
    label: str | None = None
    line: int = 0


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Function:
    """``type id (params) { decls; stmts }``."""

    name: str
    params: tuple[str, ...]
    locals: tuple[str, ...]
    body: tuple[LabeledStmt, ...]
    returns_bool: bool = False

    @property
    def all_locals(self) -> tuple[str, ...]:
        """Parameters followed by declared locals — the frame layout."""
        return self.params + self.locals


@dataclass(frozen=True, slots=True)
class Program:
    """A whole Boolean program: shared declarations and functions."""

    shared: tuple[str, ...]
    functions: tuple[Function, ...] = field(default_factory=tuple)

    def function(self, name: str) -> Function:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    @property
    def function_names(self) -> tuple[str, ...]:
        return tuple(func.name for func in self.functions)
