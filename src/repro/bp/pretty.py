"""Pretty-printer: AST back to parseable source text.

``parse(pretty(program))`` reproduces the AST (round-trip tested), which
is also how programmatically built benchmark programs are rendered for
inspection.
"""

from __future__ import annotations

from repro.bp import ast

_PRECEDENCE = {"|": 1, "^": 2, "&": 3, "=": 4, "!=": 4}


def pretty_expr(expr: ast.Expr, parent_level: int = 0) -> str:
    if isinstance(expr, ast.Const):
        return str(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Nondet):
        return "*"
    if isinstance(expr, ast.Not):
        return f"!{pretty_expr(expr.operand, 5)}"
    if isinstance(expr, ast.BinOp):
        level = _PRECEDENCE[expr.op]
        # Left-associative: the right child needs strictly higher binding.
        text = (
            f"{pretty_expr(expr.left, level)} {expr.op} "
            f"{pretty_expr(expr.right, level + 1)}"
        )
        return f"({text})" if level < parent_level else text
    raise TypeError(f"cannot print {type(expr).__name__}")


def _pretty_stmt(stmt: ast.Stmt, indent: str, out: list[str], label: str | None) -> None:
    prefix = indent + (f"{label}: " if label is not None else "")

    def line(text: str) -> None:
        out.append(prefix + text)

    if isinstance(stmt, ast.Skip):
        line("skip;")
    elif isinstance(stmt, ast.Goto):
        line(f"goto {', '.join(stmt.labels)};")
    elif isinstance(stmt, ast.Assume):
        line(f"assume ({pretty_expr(stmt.condition)});")
    elif isinstance(stmt, ast.Assert):
        line(f"assert ({pretty_expr(stmt.condition)});")
    elif isinstance(stmt, ast.Assign):
        targets = ", ".join(stmt.targets)
        values = ", ".join(pretty_expr(value) for value in stmt.values)
        tail = (
            f" constrain {pretty_expr(stmt.constrain)}"
            if stmt.constrain is not None
            else ""
        )
        line(f"{targets} := {values}{tail};")
    elif isinstance(stmt, ast.Call):
        args = ", ".join(pretty_expr(arg) for arg in stmt.args)
        head = f"{stmt.target} := " if stmt.target is not None else ""
        line(f"{head}call {stmt.func}({args});")
    elif isinstance(stmt, ast.Return):
        line("return;" if stmt.value is None else f"return {pretty_expr(stmt.value)};")
    elif isinstance(stmt, ast.While):
        line(f"while ({pretty_expr(stmt.condition)}) {{")
        _pretty_body(stmt.body, indent + "  ", out)
        out.append(indent + "}")
    elif isinstance(stmt, ast.If):
        line(f"if ({pretty_expr(stmt.condition)}) {{")
        _pretty_body(stmt.then_body, indent + "  ", out)
        if stmt.else_body:
            out.append(indent + "} else {")
            _pretty_body(stmt.else_body, indent + "  ", out)
        out.append(indent + "}")
    elif isinstance(stmt, ast.Atomic):
        line("atomic {")
        _pretty_body(stmt.body, indent + "  ", out)
        out.append(indent + "}")
    elif isinstance(stmt, ast.Lock):
        line("lock;")
    elif isinstance(stmt, ast.Unlock):
        line("unlock;")
    elif isinstance(stmt, ast.ThreadCreate):
        line(f"thread_create(&{stmt.func});")
    else:  # pragma: no cover
        raise TypeError(f"cannot print {type(stmt).__name__}")


def _pretty_body(body, indent: str, out: list[str]) -> None:
    for labeled in body:
        _pretty_stmt(labeled.stmt, indent, out, labeled.label)


def pretty_program(program: ast.Program) -> str:
    """Render a program as parseable source text."""
    out: list[str] = []
    if program.shared:
        out.append(f"decl {', '.join(program.shared)};")
        out.append("")
    for func in program.functions:
        kind = "bool" if func.returns_bool else "void"
        out.append(f"{kind} {func.name}({', '.join(func.params)}) {{")
        if func.locals:
            out.append(f"  decl {', '.join(func.locals)};")
        _pretty_body(func.body, "  ", out)
        out.append("}")
        out.append("")
    return "\n".join(out).rstrip() + "\n"
