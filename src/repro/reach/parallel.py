"""Multiprocess saturation AND replay of unique thread views (``jobs=N``).

The sharded explicit engine saturates every unique
``(thread, shared, local-stack)`` view of a frontier level exactly once
(:func:`~repro.cpds.semantics.thread_view_post`).  Those saturations are
embarrassingly parallel — a context depends only on the moving thread's
local view, never on the rest of the product — so with ``jobs=N`` the
engine fans the level's uncached views out to a pool of worker
processes.  Since PR 6 the *replay* of the saturated trees across the
level's members is sharded across the same pool too
(:meth:`ViewSaturationPool.replay`): each worker replays its slice of
the CSR context trees by pure integer arithmetic against a private seen
set, and the parent merge pass resolves cross-shard successors and
dedupes the candidate keys into the canonical
:class:`~repro.cpds.interning.StateTable`
(:meth:`~repro.cpds.interning.StateTable.intern_packed`) — extending
``jobs=N`` from saturation-only to the whole explicit advance.

Protocol
--------
* A :class:`ViewSaturationPool` owns a ``ProcessPoolExecutor`` whose
  workers are *pre-registered* with the CPDS and the divergence guard at
  initialization (fork start method where available, so registration is
  a cheap address-space copy).  Pools are leased from a small keyed
  cache (:func:`lease_pool`) so repeated runs over the same CPDS reuse
  warm workers; :func:`pool_cache_clear` shuts everything down — the
  benchmark runner calls it between repetitions to preserve the
  cold-run contract.
* The parent decodes each uncached view to plain
  ``(thread, shared, stack)`` values and sends one contiguous slice per
  worker.  Each worker saturates its slice against a private
  :class:`~repro.cpds.interning.StateTable` and returns flat
  array-encoded trees plus the slice-local id pools they index into.
* The parent re-interns the returned pool values into its own table
  (append-only growth — ids stay worker-stable because slices are
  remapped in submission order, independent of scheduling) and rewrites
  the tree columns to parent ids.  From there the trees are
  indistinguishable from locally saturated ones.

Failure modes
-------------
A worker that trips the divergence guard re-raises
:class:`~repro.errors.ContextExplosionError` in the parent, exactly like
the serial path (the engine's level rollback applies).  A worker that
*dies* (OOM-killed, segfault) surfaces as a clean
:class:`~repro.errors.CubaError`; the broken pool is evicted from the
cache so the next run leases a fresh one.
"""

from __future__ import annotations

import multiprocessing
from array import array
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.cpds.cpds import CPDS
from repro.cpds.interning import StateTable
from repro.cpds.semantics import ContextTree, thread_view_post
from repro.errors import CubaError

#: Decoded view sent to a worker: ``(thread, shared, stack word)``.
DecodedView = tuple[int, object, tuple]


@dataclass(slots=True)
class SliceResult:
    """One worker slice's saturated trees, id-encoded against the
    slice-local pools carried alongside."""

    #: Per view, in slice order: ``(thread, offsets, qids, wids, actions)``.
    trees: list[tuple]
    #: Slice-local shared-state pool (local qid -> value).
    shareds: list
    #: Slice-local per-thread stack pools (thread -> local wid -> word).
    stacks: dict[int, list[tuple]]


# Worker-side state, installed once per process by the pool initializer.
_WORKER_CPDS: CPDS | None = None
_WORKER_MAX_STATES: int = 0


def _init_worker(cpds: CPDS, max_states: int) -> None:
    global _WORKER_CPDS, _WORKER_MAX_STATES
    _WORKER_CPDS = cpds
    _WORKER_MAX_STATES = max_states


_WORKER_SUCC_MEMOS: tuple[dict, ...] = ()


def _saturate_slice(views: list[DecodedView]) -> SliceResult:
    """Worker entry point: saturate a slice of views against a private
    table and ship the trees with their slice-local pools.  The
    semantic successor memo persists worker-side across slices and
    levels (pure semantic facts — never stale); the id-bearing memo is
    rebuilt per slice because it embeds intern ids of the slice-private
    table (see ``thread_view_post``)."""
    global _WORKER_SUCC_MEMOS
    cpds = _WORKER_CPDS
    if len(_WORKER_SUCC_MEMOS) != cpds.n_threads:
        _WORKER_SUCC_MEMOS = tuple({} for _ in range(cpds.n_threads))
    table = StateTable(cpds.n_threads)
    slice_memos = tuple({} for _ in range(cpds.n_threads))
    trees: list[tuple] = []
    for index, shared, stack in views:
        qid = table.shared_id(shared)
        wid = table.stack_id(index, stack)
        tree = thread_view_post(
            cpds, table, index, qid, wid, _WORKER_MAX_STATES,
            succ_memo=slice_memos[index],
            sem_memo=_WORKER_SUCC_MEMOS[index],
            # Only the raw columns cross the process boundary; the
            # parent rebuilds replay rows lazily against its own ids.
            build_rows=False,
        )
        trees.append((tree.thread, tree.offsets, tree.qids, tree.wids, tree.actions))
    return SliceResult(
        trees=trees,
        shareds=table._shareds,
        stacks={index: table._stacks[index] for index in range(cpds.n_threads)},
    )


def _mp_context():
    """Fork where the platform offers it (cheap worker start, no
    re-import), the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


#: One replay work unit shipped to a worker: ``(frozen_keys,
#: member_keys_or_None, deltas, parent_positions_or_None)``.  All four
#: are plain Python int lists — packed keys can exceed 64 bits at high
#: thread counts, so no ``array('q')`` on this path.
ReplayUnit = tuple[list, list | None, list, list | None]


def _replay_bucket(payload: tuple[bool, str, list[ReplayUnit]]):
    """Worker entry point: replay a bucket of ``(view, member-slice)``
    units by pure integer arithmetic against a private seen set.

    Each member contributes ``frozen | delta`` candidate keys, one per
    tree edge — exactly the serial inner loop of
    ``ExplicitReach._advance_batched``, minus the canonical table.  The
    bucket-wide seen set pre-dedupes candidates; cross-bucket (and
    cross-level) dedup is the parent merge pass's job.

    ``backend`` is the engine's requested knob; the worker resolves it
    against its *own* numpy availability and re-checks per unit whether
    the keys fit int64 (:func:`repro.reach.vectorized.unit_fits`), so a
    mixed-width level replays each unit on whichever loop applies —
    the vectorized path emits the same row formats, including the
    parents-first tracked ordering.

    Returns, in replay order:

    * untracked: a flat list of candidate packed keys;
    * tracked: ``(key, parent_key, unit_pos, edge_idx)`` rows, where
      ``parent_key`` is the packed key of the candidate's predecessor in
      the member's replay chain (position 0 = the member itself).  Rows
      are emitted parents-first, so the parent merge can resolve
      ``parent_key`` to an id before any child that references it.
    """
    track, backend, units = payload
    vec = None
    if backend != "python":
        from repro.reach import vectorized

        if vectorized.numpy_available():
            vec = vectorized
    seen: set[int] = set()
    add = seen.add
    out: list = []
    append = out.append
    if not track:
        for frozen_keys, _members, deltas, _ppos in units:
            if vec is not None and vec.unit_fits(frozen_keys, deltas):
                vec.replay_unit_untracked(frozen_keys, deltas, seen, out)
                continue
            for frozen in frozen_keys:
                for delta in deltas:
                    key = frozen | delta
                    if key not in seen:
                        add(key)
                        append(key)
        return out
    for unit_pos, (frozen_keys, member_keys, deltas, parent_pos) in enumerate(units):
        if vec is not None and vec.unit_fits(frozen_keys, deltas):
            vec.replay_unit_tracked(
                frozen_keys, member_keys, deltas, parent_pos,
                unit_pos, seen, out,
            )
            continue
        edges = list(zip(deltas, parent_pos))
        for frozen, member_key in zip(frozen_keys, member_keys):
            keys_by_pos = [member_key]
            record = keys_by_pos.append
            for edge_idx, (delta, ppos) in enumerate(edges):
                key = frozen | delta
                if key not in seen:
                    add(key)
                    append((key, keys_by_pos[ppos], unit_pos, edge_idx))
                record(key)
    return out


class ViewSaturationPool:
    """A leased pool of pre-registered saturation workers for one CPDS."""

    def __init__(self, cpds: CPDS, max_states: int, jobs: int) -> None:
        if jobs < 2:
            raise ValueError(f"a saturation pool needs jobs >= 2, got {jobs}")
        #: Strong reference: keeps the cache key's ``id(cpds)`` stable
        #: for as long as this pool is leased.
        self.cpds = cpds
        self.max_states = max_states
        self.jobs = jobs
        self.broken = False
        self._executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=_mp_context(),
            initializer=_init_worker,
            initargs=(cpds, max_states),
        )

    def _submit_ordered(self, fn, payloads: list, what: str) -> list:
        """Submit one future per payload and collect results in
        submission order, mapping infrastructure failures to a clean
        :class:`CubaError` (and evicting this pool from the cache)."""
        futures: list = []
        results: list = []
        try:
            for payload in payloads:
                futures.append(self._executor.submit(fn, payload))
            for future in futures:
                results.append(future.result())
        except (BrokenProcessPool, OSError) as crash:
            # BrokenProcessPool can surface at submit time (the executor
            # noticed the dead worker first) or from result().
            self.broken = True
            _evict(self)
            raise CubaError(
                f"parallel {what} failed: a worker process died "
                f"({crash.__class__.__name__}: {crash}); the partial level "
                f"was rolled back — rerun, or fall back to jobs=1"
            ) from crash
        except RuntimeError as crash:
            # A concurrently shut-down executor raises
            # RuntimeError("cannot schedule new futures after ...") at
            # submit time; a RuntimeError raised *inside* a healthy
            # worker re-raises verbatim instead — it is an application
            # bug, not an infrastructure failure.
            if "shutdown" not in str(crash) and "interpreter" not in str(crash):
                raise
            self.broken = True
            _evict(self)
            raise CubaError(
                f"parallel {what} failed: the worker pool was shut "
                f"down mid-level ({crash}); the partial level was rolled "
                f"back — rerun, or fall back to jobs=1"
            ) from crash
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def saturate(self, views: list[DecodedView]) -> list[tuple[int, SliceResult]]:
        """Saturate ``views`` across the workers; return
        ``(slice start offset, SliceResult)`` pairs in submission order.

        Raises :class:`~repro.errors.ContextExplosionError` when a view
        diverges (same as the serial path) and :class:`CubaError` when a
        worker process dies.
        """
        per_slice = max(1, -(-len(views) // self.jobs))  # ceil division
        starts = list(range(0, len(views), per_slice))
        slices = [views[start:start + per_slice] for start in starts]
        results = self._submit_ordered(_saturate_slice, slices, "view saturation")
        return list(zip(starts, results))

    def replay(
        self,
        buckets: list[list[ReplayUnit]],
        track: bool,
        backend: str = "python",
    ) -> list:
        """Replay the level's sharded work units across the workers;
        return one result list per bucket, in submission order (see
        :func:`_replay_bucket` for the row formats and how each worker
        resolves the ``backend`` knob independently).

        Raises :class:`CubaError` when a worker process dies — the
        engine's level rollback makes the advance re-runnable.
        """
        payloads = [(track, backend, bucket) for bucket in buckets]
        return self._submit_ordered(_replay_bucket, payloads, "sharded replay")

    def close(self) -> None:
        """Shut the executor down.  Marks the pool broken so an engine
        still holding a reference (LRU eviction, ``pool_cache_clear``
        mid-run) re-leases a fresh pool instead of submitting to a
        closed executor."""
        self.broken = True
        self._executor.shutdown(wait=True, cancel_futures=True)


def remap_slice(
    table: StateTable,
    roots: list[tuple[int, int, int]],
    start: int,
    result: SliceResult,
) -> list[ContextTree]:
    """Re-intern one slice's pools into ``table`` and rewrite its trees
    to parent ids.  ``roots`` holds the full fan-out's
    ``(thread, qid, wid)`` view triples (parent ids); the returned trees
    align with ``roots[start:start + len(result.trees)]``."""
    shared_map = [table.shared_id(value) for value in result.shareds]
    stack_maps = {
        index: [table.stack_id(index, word) for word in words]
        for index, words in result.stacks.items()
    }
    remapped: list[ContextTree] = []
    for position, (thread, offsets, qids, wids, actions) in enumerate(result.trees):
        _thread, root_qid, root_wid = roots[start + position]
        stack_map = stack_maps[thread]
        remapped.append(
            ContextTree(
                thread,
                root_qid,
                root_wid,
                offsets,
                array("q", (shared_map[qid] for qid in qids)),
                array("q", (stack_map[wid] for wid in wids)),
                actions,
            )
        )
    return remapped


# ----------------------------------------------------------------------
# Pool cache (the worker pre-registration cache)
# ----------------------------------------------------------------------
#: Leased pools keyed by ``(id(cpds), max_states, jobs)``.  Each entry
#: holds a strong reference to its CPDS, so the id-based key cannot be
#: recycled while the entry lives.  Bounded LRU: evicted pools are shut
#: down, capping the number of resident worker processes.
_POOL_CACHE: OrderedDict[tuple[int, int, int], ViewSaturationPool] = OrderedDict()
_POOL_CACHE_LIMIT = 4


def lease_pool(cpds: CPDS, max_states: int, jobs: int) -> ViewSaturationPool:
    """A warm pool for ``cpds`` (reused across engines and runs), newly
    spawned and pre-registered on first lease."""
    key = (id(cpds), max_states, jobs)
    pool = _POOL_CACHE.get(key)
    if pool is not None:
        if pool.cpds is cpds and not pool.broken:
            _POOL_CACHE.move_to_end(key)
            return pool
        del _POOL_CACHE[key]
        pool.close()
    pool = ViewSaturationPool(cpds, max_states, jobs)
    _POOL_CACHE[key] = pool
    while len(_POOL_CACHE) > _POOL_CACHE_LIMIT:
        _key, evicted = _POOL_CACHE.popitem(last=False)
        evicted.close()
    return pool


def _evict(pool: ViewSaturationPool) -> None:
    for key, cached in list(_POOL_CACHE.items()):
        if cached is pool:
            del _POOL_CACHE[key]
    pool.close()


def pool_cache_clear() -> None:
    """Shut down every leased pool (benchmark cold-run contract; test
    isolation)."""
    while _POOL_CACHE:
        _key, pool = _POOL_CACHE.popitem()
        pool.close()
