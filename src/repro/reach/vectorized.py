"""Optional numpy backend for the CSR context-tree replay (``backend=``).

The batched advance of :class:`repro.reach.explicit.ExplicitReach` spends
its time in one loop: for every (member, tree edge) pair, compute the
candidate packed key ``(packed[sid] & frozen_mask) | delta`` and intern
the fresh ones.  That loop is pure integer arithmetic over two small
vectors — exactly the shape numpy broadcasts in one operation.  This
module replays every view of a level as ``int64`` mask-and-OR
broadcasts, concatenates the candidate matrices, dedupes them with a
*single* sorted-unique pass per level, and interns only the survivors.
Batching at level granularity (rather than per view) is what makes the
backend pay: a typical view is a few hundred candidates, far too small
to amortize per-call array setup, while a level concatenates hundreds
of views into one dedup over 10^5+ candidates.

Correctness contract (the differential tests pin all three):

* **Identical ids.** Fresh candidates are interned in *first-occurrence
  scan order* (``numpy.unique(..., return_index=True)`` + a sort of the
  first-occurrence indices; concatenation preserves the serial
  view-by-view, member-by-member, edge-by-edge order), which is exactly
  the order the serial loop discovers them — a ``backend="numpy"``
  engine at ``jobs=1`` assigns the same dense ids, parents and levels
  as ``backend="python"``.
* **Identical METER.** The backend only changes *how* a level replays;
  ``explicit.expansions`` / ``level_views`` / ``level_unique_views`` /
  ``context_cache_*`` are bumped by the shared advance code and stay
  equal across backends.  The numpy-only counters
  (``explicit.replay_numpy_views`` / ``_fallbacks``) live *outside* the
  differential set, like ``explicit.replay_shards``.
* **Wide keys fall back.** Packed keys exceed 64 bits at high thread
  counts or after adaptive repacks (the PR 6 wide-key case);
  :func:`table_fits_int64` gates the whole level and workers re-check
  per unit, so arbitrary-precision workloads silently route to the
  pure-int loop with no behavioural difference.

The backend is an execution knob like ``jobs``/``batched``: it is
excluded from service fingerprints and snapshot payloads, and a restored
engine may replay under a different backend than the one that produced
the snapshot.
"""

from __future__ import annotations

from repro.util.meter import METER

#: Recognized values for the ``backend=`` knob.
BACKENDS = ("auto", "python", "numpy")

#: Minimum summed member × edge products in one level batch (or one
#: worker replay unit) before the broadcast pays for its array setup;
#: smaller levels run the scalar loop even under ``backend="numpy"``.
#: Measured crossover on the registry rows: a few-hundred-pair level
#: loses ~0.1ms to array setup, a 16k-pair level wins several ms — the
#: floor keeps the small Bluetooth/Dekker levels scalar while the
#: FileCrawler mid levels (10^4–10^5 pairs) take the broadcast.
NUMPY_MIN_WORK = 4096

#: Minimum *average* member × edge product per batch entry.  The batch
#: build pays a fixed per-entry cost (one delta gather + block repeat
#: each), so a level whose total clears ``NUMPY_MIN_WORK`` can still
#: lose when it is shredded into hundreds of tiny views: BST's engaging
#: level (287 entries averaging 54 pairs) ran ~15% slower vectorized,
#: while FileCrawler's winning levels average 136–432 pairs per entry.
NUMPY_MIN_ENTRY_AVG = 96

#: Minimum fresh-state count before the batched visible-projection
#: decode beats the per-id scalar path.
NUMPY_MIN_DECODE = 512

_numpy = None
_numpy_checked = False


def _import_numpy():
    global _numpy, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy = numpy
    return _numpy


def numpy_available() -> bool:
    """True iff numpy is importable (memoized)."""
    return _import_numpy() is not None


def validate_backend(backend: str) -> str:
    """Reject unknown backend names; return the requested name."""
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {'/'.join(BACKENDS)}, got {backend!r}"
        )
    return backend


def resolve_backend(backend: str) -> str:
    """Resolve the requested knob to the concrete backend.

    ``"auto"`` selects numpy exactly when it imports; a forced
    ``"numpy"`` without numpy is a configuration error (the caller asked
    for something the environment cannot honor), not a silent fallback.
    """
    validate_backend(backend)
    if backend == "python":
        return "python"
    if numpy_available():
        return "numpy"
    if backend == "numpy":
        raise ValueError(
            "backend='numpy' requested but numpy is not installed "
            "(pip install cuba-repro[fast]); use backend='auto' to fall "
            "back automatically"
        )
    return "python"


def table_fits_int64(table) -> bool:
    """True iff every packed key this table can currently produce fits
    a signed int64.  ``qshift`` bits of stack fields plus the shared-id
    field must stay at or below 63; an OR of two such keys cannot carry,
    so the bound covers every ``frozen | delta`` candidate too.  Replay
    runs after all of the level's trees are saturated, so the geometry
    read here is stable for the whole level (see ``_replay_sharded``)."""
    return table._qshift + (len(table._shareds) - 1).bit_length() <= 63


def views_fit_int64(table, view_qid_shift: int, view_wid_shift: int) -> bool:
    """True iff every view key the batched advance can build from this
    table fits a signed int64: the stack field shifted into the wid slot
    and the shared-id field shifted to the top must both stay below bit
    63.  Callers check :func:`table_fits_int64` separately for the
    packed keys themselves."""
    max_qid = len(table._shareds) - 1
    return (
        table._bits + view_wid_shift <= 62
        and max_qid.bit_length() + view_qid_shift <= 62
    )


def group_views(
    table, frontier, n: int, view_qid_shift: int, view_wid_shift: int
) -> dict:
    """Shard a frontier by unique thread view in one vectorized pass.

    Mirrors the scalar grouping loop of
    ``ExplicitReach._advance_batched`` exactly: the returned dict lists
    views in first-occurrence order over the ``(sid, thread)`` scan
    (sid-major, thread-minor) and each member list in frontier order —
    the orders the replay paths and the differential id-assignment proof
    depend on.  Caller must have checked :func:`table_fits_int64` and
    :func:`views_fit_int64`.
    """
    np = _numpy
    packed = table._packed
    bits = table._bits
    mask = int(table._mask)
    qshift = table._qshift
    keys = np.fromiter(
        (packed[sid] for sid in frontier), dtype=np.int64, count=len(frontier)
    )
    qbase = (keys >> qshift) << view_qid_shift
    cols = np.empty((len(frontier), n), dtype=np.int64)
    for index in range(n):
        cols[:, index] = (
            qbase | (((keys >> (bits * index)) & mask) << view_wid_shift) | index
        )
    flat = cols.ravel()  # row-major: the scalar loop's scan order
    order = flat.argsort(kind="stable")
    grouped = flat[order]
    runs = np.flatnonzero(grouped[1:] != grouped[:-1])
    bounds = np.empty(runs.size + 2, dtype=np.int64)
    bounds[0] = 0
    bounds[1:-1] = runs + 1
    bounds[-1] = flat.size
    # Stable sort keeps positions ascending within each run, so the run
    # head is the view's first occurrence; per-view members then come
    # out already in frontier order.
    heads = order[bounds[:-1]]
    group_order = np.argsort(heads).tolist()
    sid_idx = (order // n).tolist()
    bl = bounds.tolist()
    view_of = grouped[bounds[:-1]].tolist()
    shards: dict = {}
    for g in group_order:
        shards[view_of[g]] = [
            frontier[i] for i in sid_idx[bl[g] : bl[g + 1]]
        ]
    return shards


def unit_fits(frozen_keys: list, deltas: list) -> bool:
    """Worker-side gate for one replay unit: enough work to vectorize
    AND every array operand fits int64 (``member_keys`` never enter an
    array — tracked parent keys are recomputed as Python ints)."""
    if not frozen_keys or not deltas:
        return False
    if len(frozen_keys) * len(deltas) < NUMPY_MIN_WORK:
        return False
    return max(frozen_keys) >> 63 == 0 and max(deltas) >> 63 == 0


def _candidates(np, frozen_keys: list, deltas: list):
    """Dedupe the ``frozen | delta`` broadcast matrix.

    Returns ``(values, positions)``: the distinct candidate keys as
    Python ints in first-occurrence row-major order, and each one's flat
    position ``member_idx * n_edges + edge_idx`` of that first
    occurrence — enough to recover the discovering (member, edge) pair
    without materializing per-candidate tuples.
    """
    frozen_col = np.fromiter(frozen_keys, dtype=np.int64, count=len(frozen_keys))
    delta_col = np.fromiter(deltas, dtype=np.int64, count=len(deltas))
    flat = np.bitwise_or(frozen_col[:, None], delta_col[None, :]).ravel()
    _, first_idx = np.unique(flat, return_index=True)
    first_idx.sort()
    return flat[first_idx].tolist(), first_idx.tolist()


def replay_level(
    table,
    entries: list,
    level: int,
    first_seen: list[int],
    parents: dict | None,
    append_fresh,
) -> None:
    """Replay a whole level's views in-process (the ``jobs=1`` path).

    ``entries`` is ``[(members, tree, thread_index, frozen_mask), ...]``
    in the serial loop's view order.  All broadcasts are concatenated
    and deduped with one sorted-unique pass; concatenation preserves the
    serial scan order, so interning the survivors in global
    first-occurrence order assigns the same dense ids as the scalar
    loop.  The table geometry is read once — every tree saturated before
    replay, so no component interning (and no repack) can happen here
    (the ``_replay_sharded`` invariant).

    Mirrors the inlined ``StateTable.intern_key`` protocol of
    ``ExplicitReach._advance_batched`` (see the coupling note on
    ``intern_key``): fresh keys append ``None`` placeholders to the
    decoded columns and their level to ``first_seen``.  Tracked parents
    resolve by recomputing the predecessor's packed key with Python
    ints — by the BFS edge-order property the parent's first occurrence
    strictly precedes the child's in the same member row, hence at a
    strictly earlier flat position, so ``ids`` already holds it.
    """
    np = _numpy
    packed = table._packed
    ids = table._ids
    states = table._states
    visibles = table._visibles
    # One numpy call per *level*, not per view: per-view array setup
    # (~30µs each) would swamp the broadcast on typical few-hundred-
    # candidate views.  The ragged (member × its view's edge column)
    # matrix is built with np.repeat over per-member block lengths and
    # a gathered index into the concatenated delta columns.
    delta_cache: dict[int, tuple] = {}  # id(tree) — trees outlive the call
    delta_parts = []
    delta_len = 0
    members_all: list[int] = []  # one sid per (view, member), scan order
    view_masks: list[int] = []  # per view: its frozen mask
    view_rows: list[int] = []  # per view: its member count
    block_lens: list[int] = []  # per member: its view's edge count
    delta_offs: list[int] = []  # per member: view offset into delta concat
    spans = []  # (end_offset, members, frozen_mask, deltas, tree, index)
    offset = 0
    for members, tree, thread_index, frozen_mask in entries:
        cached = delta_cache.get(id(tree))
        if cached is None:
            deltas = tree.deltas(table)
            delta_parts.append(
                np.fromiter(deltas, dtype=np.int64, count=len(deltas))
            )
            cached = (deltas, delta_len)
            delta_len += len(deltas)
            delta_cache[id(tree)] = cached
        deltas, doff = cached
        n_edges = len(deltas)
        n_members = len(members)
        members_all += members
        view_masks.append(frozen_mask)
        view_rows.append(n_members)
        block_lens += [n_edges] * n_members
        delta_offs += [doff] * n_members
        offset += n_members * n_edges
        spans.append((offset, members, frozen_mask, deltas, tree, thread_index))
    n_rows = len(members_all)
    frozen_col = np.fromiter(
        (packed[sid] for sid in members_all), dtype=np.int64, count=n_rows
    ) & np.repeat(
        np.fromiter(view_masks, dtype=np.int64, count=len(view_masks)),
        np.fromiter(view_rows, dtype=np.int64, count=len(view_rows)),
    )
    lens_col = np.fromiter(block_lens, dtype=np.int64, count=n_rows)
    offs_col = np.fromiter(delta_offs, dtype=np.int64, count=n_rows)
    delta_col = (
        np.concatenate(delta_parts) if len(delta_parts) > 1 else delta_parts[0]
    )
    ends = np.cumsum(lens_col)
    # flat position p inside member row r covers edge p - starts[r]; the
    # row's delta column starts at offs_col[r] in the concat.
    shift = np.repeat(offs_col - (ends - lens_col), lens_col)
    shift += np.arange(offset, dtype=np.int64)
    flat = np.repeat(frozen_col, lens_col) | delta_col[shift]
    # First-occurrence dedup without np.unique's stable mergesort: a
    # quicksort argsort groups equal keys, min-reduceat over each run
    # recovers the earliest flat position per distinct key.
    order = flat.argsort()
    grouped = flat[order]
    runs = np.flatnonzero(grouped[1:] != grouped[:-1])
    starts = np.empty(runs.size + 1, dtype=runs.dtype)
    starts[0] = 0
    starts[1:] = runs + 1
    first_idx = np.minimum.reduceat(order, starts)
    first_idx.sort()
    values = flat[first_idx].tolist()
    if parents is None:
        for key in values:
            nsid = ids.get(key)
            if nsid is None:
                ids[key] = nsid = len(packed)
                packed.append(key)
                states.append(None)
                visibles.append(None)
                first_seen.append(level)
                append_fresh(nsid)
        return
    positions = first_idx.tolist()
    span_iter = iter(spans)
    end, members, frozen_mask, deltas, tree, index = next(span_iter)
    start = 0
    actions = tree.actions
    parent_pos = tree.parent_positions()
    n_edges = len(deltas)
    for key, pos in zip(values, positions):
        while pos >= end:  # positions ascend: walk spans forward only
            start = end
            end, members, frozen_mask, deltas, tree, index = next(span_iter)
            actions = tree.actions
            parent_pos = tree.parent_positions()
            n_edges = len(deltas)
        nsid = ids.get(key)
        if nsid is None:
            ids[key] = nsid = len(packed)
            packed.append(key)
            states.append(None)
            visibles.append(None)
            first_seen.append(level)
            append_fresh(nsid)
            member_idx, edge_idx = divmod(pos - start, n_edges)
            ppos = parent_pos[edge_idx]
            if ppos == 0:
                psid = members[member_idx]
            else:
                psid = ids[
                    (packed[members[member_idx]] & frozen_mask)
                    | deltas[ppos - 1]
                ]
            parents[nsid] = (psid, index, actions[edge_idx])


def replay_unit_untracked(
    frozen_keys: list, deltas: list, seen: set, out: list
) -> None:
    """Vectorized body of one untracked worker unit: append the unit's
    distinct fresh candidate keys to ``out`` (bucket-wide ``seen``
    pre-dedup, same contract as ``parallel._replay_bucket``)."""
    values, _ = _candidates(_numpy, frozen_keys, deltas)
    add = seen.add
    append = out.append
    for key in values:
        if key not in seen:
            add(key)
            append(key)


def replay_unit_tracked(
    frozen_keys: list,
    member_keys: list,
    deltas: list,
    parent_pos: list,
    unit_pos: int,
    seen: set,
    out: list,
) -> None:
    """Vectorized body of one tracked worker unit: emit
    ``(key, parent_key, unit_pos, edge_idx)`` rows parents-first.

    First-occurrence ordering preserves the parents-first guarantee the
    merge pass relies on: a candidate's predecessor key first occurs at
    a strictly earlier flat position in the same member row, so its row
    (if fresh to this bucket) was appended before the child's.
    """
    n_edges = len(deltas)
    values, positions = _candidates(_numpy, frozen_keys, deltas)
    add = seen.add
    append = out.append
    for key, pos in zip(values, positions):
        if key in seen:
            continue
        add(key)
        member_idx, edge_idx = divmod(pos, n_edges)
        ppos = parent_pos[edge_idx]
        if ppos == 0:
            parent_key = member_keys[member_idx]
        else:
            parent_key = frozen_keys[member_idx] | deltas[ppos - 1]
        append((key, parent_key, unit_pos, edge_idx))


def visible_batch(table, sids: list[int]) -> list:
    """Decode the visible projections ``T(s)`` of a batch of state ids.

    Vectorizes the field extraction of :meth:`StateTable.visible` —
    shifts and mask on the int64 packed column plus a ``wid → top-id``
    gather per thread — then runs the identical memo/pool protocol per
    id: the same ``vkey`` scheme, the same ``_visible_pool`` entries,
    the same ``_visibles`` memo writes, in the same order.  Caller must
    have checked :func:`table_fits_int64`.
    """
    from repro.cpds.state import VisibleState

    np = _numpy
    packed = table._packed
    visibles = table._visibles
    n = table.n_threads
    bits = table._bits
    mask = int(table._mask)
    qshift = table._qshift
    keys = np.fromiter(
        (packed[sid] for sid in sids), dtype=np.int64, count=len(sids)
    )
    qcol = (keys >> qshift).tolist()
    wid_cols = []  # per thread: the raw stack-field wids
    tid_cols = []  # per thread: wid → top-id gathered (the vkey field)
    for index in range(n):
        wid_tops = table._wid_tops[index]
        gather = np.fromiter(wid_tops, dtype=np.int64, count=len(wid_tops))
        wids = (keys >> (bits * index)) & mask
        wid_cols.append(wids.tolist())
        tid_cols.append(gather[wids].tolist())
    pool = table._visible_pool
    shareds = table._shareds
    tops = table._tops
    out = []
    append = out.append
    pool_get = pool.get
    for sid, q, tids, wids in zip(sids, qcol, zip(*tid_cols), zip(*wid_cols)):
        vis = visibles[sid]
        if vis is None:
            vkey = q
            for tid in tids:
                vkey = (vkey << 32) | tid
            vis = pool_get(vkey)
            if vis is None:
                vis = VisibleState(
                    shareds[q],
                    tuple(
                        tops[index][wid] for index, wid in enumerate(wids)
                    ),
                )
                pool[vkey] = vis
            visibles[sid] = vis
        append(vis)
    return out


def bump_fallback() -> None:
    """METER: a numpy-resolved engine routed a level to the pure-int
    loop (wide keys).  Outside the backend differential set."""
    METER.bump("explicit.replay_numpy_fallbacks")


def bump_view(n: int = 1) -> None:
    """METER: ``n`` views replayed through the broadcast path.  Outside
    the backend differential set."""
    METER.bump("explicit.replay_numpy_views", n)
