"""Execution configuration shared by every reachability lane.

The engines historically grew one keyword argument per optimisation PR
(``jobs``, ``batched``, ``backend``, ``shard_replay``,
``shard_min_work``), and every caller — ``scheme1_rk``, ``cba``,
``Cuba``, the service ``EngineJob`` — re-declared the full set.
:class:`EngineConfig` collects them into one picklable dataclass that
travels unchanged from the CLI through the service to a worker
process.  None of these knobs may affect verdicts (that is
differentially tested), which is why the whole object stays out of the
problem fingerprint.

The old per-call keyword arguments still work everywhere but emit a
:class:`DeprecationWarning` via :func:`merge_legacy_kwargs`.
"""

from __future__ import annotations

import dataclasses
import warnings

__all__ = ["EngineConfig", "merge_legacy_kwargs"]


@dataclasses.dataclass(frozen=True, slots=True)
class EngineConfig:
    """Execution knobs for a lane engine.

    ``shard_min_work=None`` means "use the engine's default threshold";
    engines that do not understand a knob simply ignore it (a symbolic
    engine has no replay to shard).
    """

    jobs: int = 1
    batched: bool = True
    backend: str = "auto"
    shard_replay: bool = True
    shard_min_work: int | None = None
    incremental: bool = True

    def replace(self, **changes) -> "EngineConfig":
        return dataclasses.replace(self, **changes)


def merge_legacy_kwargs(
    config: EngineConfig | None, where: str, **legacy
) -> EngineConfig:
    """Fold deprecated per-knob keyword arguments into a config.

    ``legacy`` maps knob name → value-or-None; any non-None value emits
    a :class:`DeprecationWarning` naming ``where`` and overrides the
    corresponding :class:`EngineConfig` field.  ``None`` (the sentinel
    default on every public signature) is ignored, so modern callers
    that pass only ``config=`` never warn.
    """
    merged = config if config is not None else EngineConfig()
    overrides = {key: value for key, value in legacy.items() if value is not None}
    if overrides:
        names = ", ".join(sorted(overrides))
        warnings.warn(
            f"{where}: keyword argument(s) {names} are deprecated; "
            "pass config=EngineConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        merged = dataclasses.replace(merged, **overrides)
    return merged
