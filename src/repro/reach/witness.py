"""Witness traces for reachable states.

The explicit engine keeps BFS parent pointers across contexts; a
:class:`Trace` replays them into the path notation used by the paper
(Ex. 8): each step records the scheduled thread, the fired action and the
resulting global state, e.g.::

    ⟨⊥|2,6⟩ --f1[T1]--> ⟨1|2,6⟩ --f2b[T1]--> ⟨1|4,6⟩ ...
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpds.state import GlobalState
from repro.pds.action import Action


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One global transition: thread ``thread`` fired ``action``."""

    thread: int
    action: Action
    state: GlobalState


@dataclass(frozen=True, slots=True)
class Trace:
    """A path from the initial state to ``target``."""

    initial: GlobalState
    steps: tuple[TraceStep, ...]

    @property
    def target(self) -> GlobalState:
        return self.steps[-1].state if self.steps else self.initial

    @property
    def n_contexts(self) -> int:
        """Number of contexts (maximal single-thread runs) along the path."""
        contexts = 0
        previous_thread: int | None = None
        for step in self.steps:
            if step.thread != previous_thread:
                contexts += 1
                previous_thread = step.thread
        return contexts

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        parts = [str(self.initial)]
        for step in self.steps:
            label = step.action.label or step.action.kind.value
            parts.append(f"--{label}[T{step.thread + 1}]--> {step.state}")
        return " ".join(parts)


def validate_trace(cpds, trace: Trace) -> None:
    """Replay a trace against the CPDS semantics; raise ``ValueError``
    on the first illegal step.

    Checks that the trace starts in the CPDS initial state and that each
    step is an enabled action of the claimed thread producing exactly
    the recorded successor — the guarantee that reported counterexamples
    are real executions.
    """
    from repro.cpds.semantics import thread_state, with_thread_state
    from repro.pds.semantics import enabled_actions, step as pds_step

    if trace.initial != cpds.initial_state():
        raise ValueError(
            f"trace starts at {trace.initial}, not the initial state "
            f"{cpds.initial_state()}"
        )
    current = trace.initial
    for position, trace_step in enumerate(trace.steps):
        pds = cpds.thread(trace_step.thread)
        local = thread_state(current, trace_step.thread)
        if trace_step.action not in enabled_actions(pds, local):
            raise ValueError(
                f"step {position}: action {trace_step.action} not enabled "
                f"for thread {trace_step.thread} in {current}"
            )
        successor = with_thread_state(
            current, trace_step.thread, pds_step(local, trace_step.action)
        )
        if successor != trace_step.state:
            raise ValueError(
                f"step {position}: action {trace_step.action} produces "
                f"{successor}, trace claims {trace_step.state}"
            )
        current = successor


def rebuild_trace(
    parents: dict[GlobalState, tuple[GlobalState, int, Action] | None],
    target: GlobalState,
) -> Trace:
    """Reconstruct a trace to ``target`` from BFS parent pointers.

    ``parents`` maps each discovered state to ``(predecessor, thread,
    action)``, with the initial state mapped to ``None``.
    """
    if target not in parents:
        raise KeyError(f"state {target} was never discovered")
    reversed_steps: list[TraceStep] = []
    state = target
    while True:
        entry = parents[state]
        if entry is None:
            initial = state
            break
        predecessor, thread, action = entry
        reversed_steps.append(TraceStep(thread, action, state))
        state = predecessor
    return Trace(initial, tuple(reversed(reversed_steps)))
