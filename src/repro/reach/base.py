"""Common interface — the *lane contract* — of the reachability engines.

An engine computes, level by level, an observation sequence of the
paper: after ``advance()`` has been called ``k`` times the engine has
determined level ``k`` of its sequence (``Rk`` for the explicit
context-unbounded lane, ``Sk`` symbolically, ``Wk`` for the
write-unbounded lane) and the visible projection ``T(·)``.  Levels are
cumulative and monotone by construction (Def. 1: observation sequences
are monotone).

Beyond the level mechanics, every concrete engine is a **lane**: a
pluggable analysis family registered in :mod:`repro.reach.registry`.
The class-level attributes below are the contract a lane must fill in
so that the verifier, CLI, bench runner, and service can drive it
without knowing the concrete class:

``lane``
    Canonical lane name — the single spelling used by ``--lane``, the
    BENCH ``lane`` field, the service fingerprint ``engine`` token, and
    the registry key.
``sequence_name``
    The observation sequence the lane computes (``"Rk"``, ``"Sk"``,
    ``"Wk"``); used in result ``method`` strings.
``snapshot_kind``
    The kind byte of this lane's snapshot format (see
    :mod:`repro.service.snapshot`); must be unique across lanes.
``meter_prefix``
    Prefix of this lane's METER counters, ``"<lane>."`` by convention;
    the bench runner and service meter windows aggregate by it.
``supports_witness``
    True iff the lane can materialize a counterexample trace
    (``find_visible`` / ``trace``).
``preferred_algorithm``
    Which generic driver sound for this lane's sequence:
    ``"scheme1"`` (plateau = fixpoint, Lemma 7) or ``"algorithm3"``
    (plateau + generator test, Thm. 11).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.cpds.state import VisibleState
from repro.obs import trace

if TYPE_CHECKING:
    from repro.core.property import Property
    from repro.cpds.cpds import CPDS
    from repro.reach.config import EngineConfig


class ReachabilityEngine(abc.ABC):
    """Level-by-level driver for an observation sequence over a CPDS."""

    # -- lane contract (overridden by every registered engine class) ----
    lane: str = ""
    sequence_name: str = ""
    snapshot_kind: int = 0
    meter_prefix: str = ""
    supports_witness: bool = False
    preferred_algorithm: str = "scheme1"

    def __init__(self) -> None:
        #: ``visible_levels[k]`` = visible states first seen at bound k.
        self.visible_levels: list[frozenset[VisibleState]] = []
        self._visible_cumulative: list[frozenset[VisibleState]] = []

    # ------------------------------------------------------------------
    # Level mechanics
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Largest context bound computed so far (−1 before the first)."""
        return len(self.visible_levels) - 1

    def advance(self) -> bool:
        """Compute the next level; return True iff it adds *any* new
        element to the underlying (non-projected) observation set.

        Template method: the concrete work lives in the lane's
        :meth:`_advance`; this wrapper emits the per-level
        ``<lane>.level`` span when tracing is on, so every lane —
        including ones registered later — inherits per-level timing
        with no code of its own."""
        if not trace.enabled():
            return self._advance()
        with trace.span(
            f"{self.lane}.level", lane=self.lane, level=self.k + 1
        ):
            return self._advance()

    @abc.abstractmethod
    def _advance(self) -> bool:
        """Lane-specific level computation (see :meth:`advance`)."""

    def ensure_level(self, k: int) -> None:
        """Advance until level ``k`` has been computed."""
        while self.k < k:
            self.advance()

    def _record_visible(self, new_visible: frozenset[VisibleState]) -> None:
        previous = (
            self._visible_cumulative[-1] if self._visible_cumulative else frozenset()
        )
        fresh = frozenset(new_visible) - previous
        self.visible_levels.append(fresh)
        self._visible_cumulative.append(previous | fresh)

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def visible_up_to(self, k: int | None = None) -> frozenset[VisibleState]:
        """``T(Rk)`` — all visible states reachable within ``k`` contexts
        (default: the latest computed bound)."""
        if not self._visible_cumulative:
            return frozenset()
        if k is None:
            return self._visible_cumulative[-1]
        k = min(k, len(self._visible_cumulative) - 1)
        if k < 0:
            return frozenset()
        return self._visible_cumulative[k]

    def visible_new_at(self, k: int) -> frozenset[VisibleState]:
        """``T(Rk) \\ T(Rk−1)`` — visible states first reached at bound k."""
        if 0 <= k < len(self.visible_levels):
            return self.visible_levels[k]
        return frozenset()

    def visible_plateaued_at(self, k: int) -> bool:
        """True iff ``T(Rk−1) = T(Rk)`` (a plateau, Table 1)."""
        return k >= 1 and k <= self.k and not self.visible_new_at(k)

    # ------------------------------------------------------------------
    # Lane contract
    # ------------------------------------------------------------------
    @classmethod
    def applicable(cls, cpds: "CPDS", prop: "Property | None" = None) -> bool:
        """Precondition for this lane on ``(cpds, prop)`` — e.g. FCR for
        the explicit lane.  Lanes without a precondition return True."""
        return True

    @classmethod
    def create(
        cls,
        cpds: "CPDS",
        *,
        max_states_per_context: int | None = None,
        config: "EngineConfig | None" = None,
    ) -> "ReachabilityEngine":
        """Construct a fresh engine from the uniform lane arguments.

        Concrete lanes map ``config`` fields onto whatever constructor
        knobs they understand and ignore the rest."""
        raise NotImplementedError

    @classmethod
    def restore_engine(
        cls,
        cpds: "CPDS",
        data: bytes,
        *,
        max_states_per_context: int | None = None,
        config: "EngineConfig | None" = None,
    ) -> "ReachabilityEngine":
        """Rebuild an engine from a snapshot blob of this lane's
        ``snapshot_kind`` (uniform wrapper over per-lane ``restore``)."""
        raise NotImplementedError

    @abc.abstractmethod
    def plateaued_at(self, k: int) -> bool:
        """True iff the *underlying* (non-projected) sequence added
        nothing at level ``k`` — the lane's fixpoint/plateau test."""

    @abc.abstractmethod
    def snapshot(self) -> bytes:
        """Serialize resumable engine state (header carries
        ``snapshot_kind``; see :mod:`repro.service.snapshot`)."""

    @abc.abstractmethod
    def stats(self) -> dict:
        """Work counters; every lane must include a ``"levels"`` key."""
