"""Common interface of the context-bounded reachability engines.

An engine computes, level by level, the observation sequences of the
paper: after ``advance()`` has been called ``k`` times the engine has
determined ``Rk`` (or its symbolic counterpart ``Sk``) and the visible
projection ``T(Rk)``.  Levels are cumulative and monotone by
construction (Def. 1: observation sequences are monotone)."""

from __future__ import annotations

import abc

from repro.cpds.state import VisibleState


class ReachabilityEngine(abc.ABC):
    """Level-by-level driver for an observation sequence over a CPDS."""

    def __init__(self) -> None:
        #: ``visible_levels[k]`` = visible states first seen at bound k.
        self.visible_levels: list[frozenset[VisibleState]] = []
        self._visible_cumulative: list[frozenset[VisibleState]] = []

    # ------------------------------------------------------------------
    # Level mechanics
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Largest context bound computed so far (−1 before the first)."""
        return len(self.visible_levels) - 1

    @abc.abstractmethod
    def advance(self) -> bool:
        """Compute the next level; return True iff it adds *any* new
        element to the underlying (non-projected) observation set."""

    def _record_visible(self, new_visible: frozenset[VisibleState]) -> None:
        previous = (
            self._visible_cumulative[-1] if self._visible_cumulative else frozenset()
        )
        fresh = frozenset(new_visible) - previous
        self.visible_levels.append(fresh)
        self._visible_cumulative.append(previous | fresh)

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def visible_up_to(self, k: int | None = None) -> frozenset[VisibleState]:
        """``T(Rk)`` — all visible states reachable within ``k`` contexts
        (default: the latest computed bound)."""
        if not self._visible_cumulative:
            return frozenset()
        if k is None:
            return self._visible_cumulative[-1]
        k = min(k, len(self._visible_cumulative) - 1)
        if k < 0:
            return frozenset()
        return self._visible_cumulative[k]

    def visible_new_at(self, k: int) -> frozenset[VisibleState]:
        """``T(Rk) \\ T(Rk−1)`` — visible states first reached at bound k."""
        if 0 <= k < len(self.visible_levels):
            return self.visible_levels[k]
        return frozenset()

    def visible_plateaued_at(self, k: int) -> bool:
        """True iff ``T(Rk−1) = T(Rk)`` (a plateau, Table 1)."""
        return k >= 1 and k <= self.k and not self.visible_new_at(k)
