"""Symbolic computation of the sets ``Sk`` (paper Sec. 6, App. E).

A *symbolic state* is ``τ = ⟨q|A1,...,An⟩``: a shared state plus one
finite automaton per thread; its concretization (App. E, Eq. 3) is the
product ``γ(τ) = {⟨q|w1,...,wn⟩ : ∀i. wi ∈ L(Ai)}``.  Because a context
moves a single thread, the reachable set within any context bound is a
finite union of such products — the Qadeer/Rehof insight [35] — and one
context expansion is a ``post*`` saturation of the moving thread's
automaton, split by resulting shared state.

Thread automata are kept in canonical minimal-DFA form
(:func:`~repro.automata.canonical.canonical_nfa`), which both bounds
their growth across contexts and makes symbolic states hashable for
frontier dedup, so plateau detection on ``T(Sk)`` terminates.

Canonical signatures also drive cross-expansion reuse: the result of
expanding thread ``i`` from ``⟨q|Ai⟩`` depends only on ``(i, q, L(Ai))``,
so saturations are memoized per ``(thread, shared, signature)`` instead
of being recomputed from scratch whenever the same thread view recurs at
a later context bound (``incremental=True``, the default).  This is the
sound granularity for reuse — warm-starting one saturated PSA from a
different entry control would mix languages (see the Performance notes
in :mod:`repro.pds.saturation`).

Unlike the explicit engine this one does not require finite context
reachability: the sets ``γ(Sk)`` may be infinite (e.g. Stefan-1, whose
stack pumps within one context)."""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterator

from repro.automata import EPSILON, NFA
from repro.automata.canonical import canonical_nfa
from repro.cpds.cpds import CPDS
from repro.cpds.state import GlobalState, VisibleState
from repro.pds.psa import FINAL_SINK, PSA
from repro.pds.saturation import post_star
from repro.pds.state import EMPTY
from repro.reach.base import ReachabilityEngine
from repro.util.meter import METER

Shared = Hashable
Symbol = Hashable


def word_nfa(word: tuple[Symbol, ...]) -> NFA:
    """Automaton accepting exactly one word."""
    nfa = NFA(initial=[0], accepting=[len(word)])
    for position, symbol in enumerate(word):
        nfa.add_transition(position, symbol, position + 1)
    return nfa


def nfa_tops(automaton: NFA) -> frozenset[Symbol]:
    """First symbols of accepted words; :data:`EMPTY` if ε is accepted.

    This is ``T(Ai)`` of App. E (Alg. 4) for single-entry automata,
    corrected for ε-edges by closing before the first symbol.
    """
    closure = automaton.epsilon_closure(automaton.initial)
    coreachable = automaton.coreachable_states()
    tops: set[Symbol] = set()
    if closure & automaton.accepting:
        tops.add(EMPTY)
    for state in closure:
        for label in automaton.labels_from(state):
            if label is EPSILON:
                continue
            if any(target in coreachable for target in automaton.targets(state, label)):
                tops.add(label)
    return frozenset(tops)


class SymbolicState:
    """``⟨q|A1,...,An⟩`` with canonical automata; hashable by language."""

    __slots__ = ("shared", "automata", "signatures", "_hash")

    def __init__(self, shared: Shared, automata: tuple[NFA, ...], signatures: tuple) -> None:
        self.shared = shared
        self.automata = automata
        self.signatures = signatures
        self._hash = hash((shared, signatures))

    def __eq__(self, other) -> bool:
        if not isinstance(other, SymbolicState):
            return NotImplemented
        return self.shared == other.shared and self.signatures == other.signatures

    def __hash__(self) -> int:
        return self._hash

    def accepts(self, state: GlobalState) -> bool:
        """Membership in the concretization ``γ(τ)`` (App. E, Eq. 3)."""
        if state.shared != self.shared or state.n_threads != len(self.automata):
            return False
        return all(
            automaton.accepts(stack)
            for automaton, stack in zip(self.automata, state.stacks)
        )

    def visible_states(self) -> Iterator[VisibleState]:
        """``T(τ) = {q} × T(A1) × ... × T(An)`` (App. E, Eq. 4)."""
        per_thread = [nfa_tops(automaton) for automaton in self.automata]
        for tops in itertools.product(*per_thread):
            yield VisibleState(self.shared, tops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ",".join(str(len(a)) for a in self.automata)
        return f"SymbolicState(shared={self.shared!r}, |Ai|=[{sizes}])"


class SymbolicReach(ReachabilityEngine):
    """Frontier-based symbolic engine for ``(Sk)`` and ``(T(Sk))``."""

    def __init__(self, cpds: CPDS, *, incremental: bool = True) -> None:
        super().__init__()
        self.cpds = cpds
        self._alphabets = [cpds.alphabet(i) for i in range(cpds.n_threads)]
        #: ``levels[k]`` = symbolic states first produced at bound k.
        self.levels: list[frozenset[SymbolicState]] = []
        self._seen: set[SymbolicState] = set()
        #: Cross-expansion memo: (thread, shared, signature) -> splice
        #: parts (new shared, canonical automaton, signature) — exact,
        #: because an expansion depends on nothing else (see module doc).
        self._expansions: dict[tuple, tuple] | None = {} if incremental else None

        automata = []
        signatures = []
        for index, stack in enumerate(cpds.initial_stacks):
            automaton, signature = canonical_nfa(word_nfa(stack), self._alphabets[index])
            automata.append(automaton)
            signatures.append(signature)
        initial = SymbolicState(
            cpds.initial_shared, tuple(automata), tuple(signatures)
        )
        self.levels.append(frozenset([initial]))
        self._seen.add(initial)
        self._record_visible(frozenset(initial.visible_states()))

    # ------------------------------------------------------------------
    # Level mechanics
    # ------------------------------------------------------------------
    def advance(self) -> bool:
        """Compute ``S(k+1)``; True iff a language-new symbolic state
        appears.  (A plateau here implies ``R(k+1) = Rk``; the converse
        need not hold, which is why Alg. 3's convergence test works on
        the finite projection ``T(Sk)`` instead.)"""
        frontier = self.levels[-1]
        fresh: set[SymbolicState] = set()
        for symbolic in frontier:
            for index in range(self.cpds.n_threads):
                for successor in self._expand(symbolic, index):
                    if successor not in self._seen:
                        self._seen.add(successor)
                        fresh.add(successor)
        self.levels.append(frozenset(fresh))
        visible: set[VisibleState] = set()
        for symbolic in fresh:
            visible.update(symbolic.visible_states())
        self._record_visible(frozenset(visible))
        return bool(fresh)

    def ensure_level(self, k: int) -> None:
        while self.k < k:
            self.advance()

    # ------------------------------------------------------------------
    # Context expansion
    # ------------------------------------------------------------------
    def _expand(self, symbolic: SymbolicState, index: int) -> Iterator[SymbolicState]:
        """One context of thread ``index`` from ``symbolic``."""
        key = (index, symbolic.shared, symbolic.signatures[index])
        if self._expansions is not None:
            parts = self._expansions.get(key)
            if parts is not None:
                METER.bump("symbolic.expansion_cache_hits")
                yield from self._splice(symbolic, index, parts)
                return
        parts = self._expand_parts(symbolic.shared, symbolic.automata[index], index)
        if self._expansions is not None:
            self._expansions[key] = parts
        yield from self._splice(symbolic, index, parts)

    def _expand_parts(
        self, shared_from: Shared, automaton: NFA, index: int
    ) -> tuple[tuple[Shared, NFA, tuple], ...]:
        """Saturate one context of thread ``index`` entered at
        ``shared_from`` with stack language ``L(automaton)``; return the
        per-resulting-shared-state canonical automata."""
        METER.bump("symbolic.expansions")
        pds = self.cpds.thread(index)
        controls = self.cpds.shared_states

        # P-automaton for the config set {(q, w) : w ∈ L(Ai)}: embed the
        # thread automaton disjointly and enter it from control q by ε.
        embedded = NFA(states=controls)
        rename = {state: ("emb", state) for state in automaton.states}
        for src, label, dst in automaton.transitions():
            embedded.add_transition(rename[src], label, rename[dst])
        for accepting in automaton.accepting:
            embedded.add_accepting(rename[accepting])
        for start in automaton.initial:
            embedded.add_transition(shared_from, EPSILON, rename[start])

        saturated = post_star(pds, PSA(embedded, controls), validate=False)

        parts = []
        for shared in controls:
            if not saturated.nonempty_from(shared):
                continue
            # Read the saturated automaton from `shared` without copying.
            canonical, signature = canonical_nfa(
                saturated.automaton, self._alphabets[index], initial=[shared]
            )
            parts.append((shared, canonical, signature))
        return tuple(parts)

    @staticmethod
    def _splice(
        symbolic: SymbolicState, index: int, parts
    ) -> Iterator[SymbolicState]:
        for shared, canonical, signature in parts:
            automata = list(symbolic.automata)
            signatures = list(symbolic.signatures)
            automata[index] = canonical
            signatures[index] = signature
            yield SymbolicState(shared, tuple(automata), tuple(signatures))

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def symbolic_up_to(self, k: int | None = None) -> frozenset[SymbolicState]:
        """``Sk`` (default: the latest computed bound)."""
        if k is None:
            k = self.k
        k = min(k, self.k)
        result: set[SymbolicState] = set()
        for level in self.levels[: k + 1]:
            result |= level
        return frozenset(result)

    def accepts(self, state: GlobalState, k: int | None = None) -> bool:
        """Membership of a global state in ``γ(Sk)`` (= ``Rk``)."""
        return any(symbolic.accepts(state) for symbolic in self.symbolic_up_to(k))

    def plateaued_at(self, k: int) -> bool:
        """True iff no new symbolic state appeared at bound ``k``
        (sufficient — not necessary — for ``Rk−1 = Rk``)."""
        return k >= 1 and k <= self.k and not self.levels[k]
