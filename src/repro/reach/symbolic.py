"""Symbolic computation of the sets ``Sk`` (paper Sec. 6, App. E).

A *symbolic state* is ``τ = ⟨q|A1,...,An⟩``: a shared state plus one
finite automaton per thread; its concretization (App. E, Eq. 3) is the
product ``γ(τ) = {⟨q|w1,...,wn⟩ : ∀i. wi ∈ L(Ai)}``.  Because a context
moves a single thread, the reachable set within any context bound is a
finite union of such products — the Qadeer/Rehof insight [35] — and one
context expansion is a ``post*`` saturation of the moving thread's
automaton, split by resulting shared state.

Thread automata are kept in canonical minimal-DFA form
(:func:`~repro.automata.canonical.canonical_nfa`), which both bounds
their growth across contexts and makes symbolic states hashable for
frontier dedup, so plateau detection on ``T(Sk)`` terminates.

Canonical signatures also drive cross-expansion reuse: the result of
expanding thread ``i`` from ``⟨q|Ai⟩`` depends only on ``(i, q, L(Ai))``,
so saturations are memoized per ``(thread, shared, signature)`` instead
of being recomputed from scratch whenever the same thread view recurs at
a later context bound (``incremental=True``, the default).  This is the
sound granularity for reuse — warm-starting one saturated PSA from a
different entry control would mix languages (see the Performance notes
in :mod:`repro.pds.saturation`).

Performance notes
-----------------
:meth:`SymbolicReach.advance` expands the frontier *batched*: the level's
``(thread, shared, signature)`` views are grouped first and each unique
view is saturated once per level, no matter how many symbolic states
contain it (``batched=True``, the default; the per-state path is kept
for differential testing).  METER records the grouping —
``symbolic.level_views`` vs ``symbolic.level_unique_views`` — so
harnesses can assert one expansion per unique view per level.  Thread
automata are interned (:mod:`repro.automata.canonical`), so signature
comparisons inside the frontier dedup are pointer comparisons, and the
per-language projections ``T(Ai)`` (:func:`nfa_tops`) and coreachability
are cached on the canonical DFA — computed once per language, not per
call.  Alphabets are passed as per-thread
:class:`~repro.automata.intern.SymbolTable` views, which skips symbol
re-sorting in canonicalization.  The visible products ``T(τ)`` are
doubly shared: whole products are memoized per tops profile, and the
product *elements* are interned per ``(shared, tops)`` — on
product-bound models (Proc-2) distinct profiles overlap so heavily that
almost every product element is a dict hit instead of a fresh
:class:`~repro.cpds.state.VisibleState`.

Unlike the explicit engine this one does not require finite context
reachability: the sets ``γ(Sk)`` may be infinite (e.g. Stefan-1, whose
stack pumps within one context)."""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterator

from repro.automata import EPSILON, NFA
from repro.automata.canonical import CanonicalNFA, canonical_nfa
from repro.cpds.cpds import CPDS
from repro.cpds.state import GlobalState, VisibleState
from repro.pds.saturation import PostStarEngine
from repro.pds.state import EMPTY
from repro.reach.base import ReachabilityEngine
from repro.reach.config import EngineConfig, merge_legacy_kwargs
from repro.reach.registry import register
from repro.util.meter import METER

Shared = Hashable
Symbol = Hashable


def word_nfa(word: tuple[Symbol, ...]) -> NFA:
    """Automaton accepting exactly one word."""
    nfa = NFA(initial=[0], accepting=[len(word)])
    for position, symbol in enumerate(word):
        nfa.add_transition(position, symbol, position + 1)
    return nfa


def nfa_tops(automaton: NFA) -> frozenset[Symbol]:
    """First symbols of accepted words; :data:`EMPTY` if ε is accepted.

    This is ``T(Ai)`` of App. E (Alg. 4) for single-entry automata,
    corrected for ε-edges by closing before the first symbol.  For
    interned canonical DFAs the result is cached on the automaton, so
    ``T(Ai)`` is computed once per *language* however many symbolic
    states and levels share it.
    """
    tops = getattr(automaton, "_tops", None)
    if tops is not None:
        return tops
    closure = automaton.epsilon_closure(automaton.initial)
    coreachable = automaton.coreachable_states()
    tops_set: set[Symbol] = set()
    if closure & automaton.accepting:
        tops_set.add(EMPTY)
    for state in closure:
        for label in automaton.labels_from(state):
            if label is EPSILON:
                continue
            if any(target in coreachable for target in automaton.targets(state, label)):
                tops_set.add(label)
    tops = frozenset(tops_set)
    if isinstance(automaton, CanonicalNFA):
        automaton._tops = tops
    return tops


class SymbolicState:
    """``⟨q|A1,...,An⟩`` with canonical automata; hashable by language."""

    __slots__ = ("shared", "automata", "signatures", "_hash")

    def __init__(self, shared: Shared, automata: tuple[NFA, ...], signatures: tuple) -> None:
        self.shared = shared
        self.automata = automata
        self.signatures = signatures
        self._hash = hash((shared, signatures))

    def __eq__(self, other) -> bool:
        if not isinstance(other, SymbolicState):
            return NotImplemented
        return self.shared == other.shared and self.signatures == other.signatures

    def __hash__(self) -> int:
        return self._hash

    def accepts(self, state: GlobalState) -> bool:
        """Membership in the concretization ``γ(τ)`` (App. E, Eq. 3)."""
        if state.shared != self.shared or state.n_threads != len(self.automata):
            return False
        return all(
            automaton.accepts(stack)
            for automaton, stack in zip(self.automata, state.stacks)
        )

    def visible_states(self) -> Iterator[VisibleState]:
        """``T(τ) = {q} × T(A1) × ... × T(An)`` (App. E, Eq. 4)."""
        per_thread = [nfa_tops(automaton) for automaton in self.automata]
        for tops in itertools.product(*per_thread):
            yield VisibleState(self.shared, tops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ",".join(str(len(a)) for a in self.automata)
        return f"SymbolicState(shared={self.shared!r}, |Ai|=[{sizes}])"


@register
class SymbolicReach(ReachabilityEngine):
    """Frontier-based symbolic engine for ``(Sk)`` and ``(T(Sk))``."""

    lane = "symbolic"
    sequence_name = "Sk"
    snapshot_kind = 2
    meter_prefix = "symbolic."
    supports_witness = False
    preferred_algorithm = "algorithm3"

    def __init__(
        self,
        cpds: CPDS,
        *,
        incremental: bool | None = None,
        batched: bool | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        super().__init__()
        config = merge_legacy_kwargs(config, "SymbolicReach", batched=batched)
        self.config = config
        incremental = config.incremental if incremental is None else incremental
        self.cpds = cpds
        self._alphabets = [cpds.symbol_table(i) for i in range(cpds.n_threads)]
        self.batched = config.batched
        #: ``levels[k]`` = symbolic states first produced at bound k.
        self.levels: list[frozenset[SymbolicState]] = []
        self._seen: set[SymbolicState] = set()
        #: Cross-expansion memo: (thread, shared, signature) -> splice
        #: parts (new shared, canonical automaton, signature) — exact,
        #: because an expansion depends on nothing else (see module doc).
        self._expansions: dict[tuple, tuple] | None = {} if incremental else None
        #: ``T(τ)`` product memo: (shared, per-thread tops) -> visible
        #: set.  Many symbolic states share one tops profile (especially
        #: at higher thread counts), and the product blow-up dominates
        #: models like Proc-2; the per-thread tops are already cached on
        #: the canonical DFAs, so the key costs one tuple.
        self._visible_memo: dict[tuple, frozenset[VisibleState]] = {}
        #: Interned visible states: (shared, tops) -> the one
        #: :class:`VisibleState`.  Distinct tops profiles overlap
        #: heavily element-wise (on Proc-2, 51k product elements cover
        #: 2.4k distinct visible states), so the product loop swaps
        #: object construction for a dict hit almost always.
        self._visible_intern: dict[tuple, VisibleState] = {}

        automata = []
        signatures = []
        for index, stack in enumerate(cpds.initial_stacks):
            automaton, signature = canonical_nfa(word_nfa(stack), self._alphabets[index])
            automata.append(automaton)
            signatures.append(signature)
        initial = SymbolicState(
            cpds.initial_shared, tuple(automata), tuple(signatures)
        )
        self.levels.append(frozenset([initial]))
        self._seen.add(initial)
        self._record_visible(
            self._visible_product(
                initial.shared,
                tuple(nfa_tops(automaton) for automaton in initial.automata),
            )
        )

    # ------------------------------------------------------------------
    # Level mechanics
    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Compute ``S(k+1)``; True iff a language-new symbolic state
        appears.  (A plateau here implies ``R(k+1) = Rk``; the converse
        need not hold, which is why Alg. 3's convergence test works on
        the finite projection ``T(Sk)`` instead.)

        Batched mode groups the level's thread views first and saturates
        each unique ``(thread, shared, signature)`` exactly once — see
        the module's Performance notes."""
        frontier = self.levels[-1]
        fresh: set[SymbolicState] = set()
        if self.batched:
            self._advance_batched(frontier, fresh)
        else:
            for symbolic in frontier:
                for index in range(self.cpds.n_threads):
                    for successor in self._expand(symbolic, index):
                        if successor not in self._seen:
                            self._seen.add(successor)
                            fresh.add(successor)
        self.levels.append(frozenset(fresh))
        visible: set[VisibleState] = set()
        for symbolic in fresh:
            visible |= self._visible_product(
                symbolic.shared,
                tuple(nfa_tops(automaton) for automaton in symbolic.automata),
            )
        self._record_visible(frozenset(visible))
        return bool(fresh)

    def _visible_product(self, shared: Shared, tops_profile: tuple) -> frozenset:
        """``T(τ) = {q} × T(A1) × ... × T(An)`` (App. E, Eq. 4) —
        the engine's memoized, interned form of
        :meth:`SymbolicState.visible_states`: whole products are cached
        per tops profile and the elements are interned per
        ``(shared, tops)``, so repeated profiles cost a dict hit."""
        key = (shared, tops_profile)
        cached = self._visible_memo.get(key)
        if cached is None:
            intern = self._visible_intern
            bucket = []
            for tops in itertools.product(*tops_profile):
                visible_key = (shared, tops)
                state = intern.get(visible_key)
                if state is None:
                    state = VisibleState(shared, tops)
                    intern[visible_key] = state
                bucket.append(state)
            cached = frozenset(bucket)
            self._visible_memo[key] = cached
        return cached

    def _advance_batched(
        self, frontier: frozenset[SymbolicState], fresh: set[SymbolicState]
    ) -> None:
        """Group the frontier by unique thread view, expand each view
        once, then splice the parts back into every containing state."""
        consumers: dict[tuple, list[SymbolicState]] = {}
        for symbolic in frontier:
            for index in range(self.cpds.n_threads):
                key = (index, symbolic.shared, symbolic.signatures[index])
                consumers.setdefault(key, []).append(symbolic)
        METER.bump("symbolic.level_views", sum(map(len, consumers.values())))
        METER.bump("symbolic.level_unique_views", len(consumers))
        seen = self._seen
        memo = self._expansions
        for key, states in consumers.items():
            index = key[0]
            parts = memo.get(key) if memo is not None else None
            if parts is not None:
                METER.bump("symbolic.expansion_cache_hits")
            else:
                parts = self._expand_parts(key[1], states[0].automata[index], index)
                if memo is not None:
                    memo[key] = parts
            for symbolic in states:
                for successor in self._splice(symbolic, index, parts):
                    if successor not in seen:
                        seen.add(successor)
                        fresh.add(successor)

    # ------------------------------------------------------------------
    # Context expansion
    # ------------------------------------------------------------------
    def _expand(self, symbolic: SymbolicState, index: int) -> Iterator[SymbolicState]:
        """One context of thread ``index`` from ``symbolic``."""
        key = (index, symbolic.shared, symbolic.signatures[index])
        if self._expansions is not None:
            parts = self._expansions.get(key)
            if parts is not None:
                METER.bump("symbolic.expansion_cache_hits")
                yield from self._splice(symbolic, index, parts)
                return
        parts = self._expand_parts(symbolic.shared, symbolic.automata[index], index)
        if self._expansions is not None:
            self._expansions[key] = parts
        yield from self._splice(symbolic, index, parts)

    def _expand_parts(
        self, shared_from: Shared, automaton: NFA, index: int
    ) -> tuple[tuple[Shared, NFA, tuple], ...]:
        """Saturate one context of thread ``index`` entered at
        ``shared_from`` with stack language ``L(automaton)``; return the
        per-resulting-shared-state canonical automata."""
        METER.bump("symbolic.expansions")
        pds = self.cpds.thread(index)
        controls = self.cpds.shared_states

        # Initial edge set for the config set {(q, w) : w ∈ L(Ai)}: embed
        # the thread automaton disjointly and enter it from control q by
        # ε.  Feeding raw edges to the engine skips materializing an
        # intermediate P-automaton (the preconditions hold by
        # construction: "emb"-tagged states are never controls).
        useful = getattr(automaton, "useful_edges", automaton.transitions)
        edges = [
            (shared_from, EPSILON, ("emb", start)) for start in automaton.initial
        ]
        edges.extend(
            (("emb", src), label, ("emb", dst)) for src, label, dst in useful()
        )
        engine = PostStarEngine.from_edges(
            pds,
            edges,
            (("emb", accepting) for accepting in automaton.accepting),
            controls=controls,
        )
        saturated = engine.detach_nfa()

        # One backward reachability pass answers "is some ⟨shared|w⟩
        # accepted?" for every control at once (shared must co-reach an
        # accepting state), replacing a forward search per control.
        coreachable = saturated.coreachable_states()
        parts = []
        for shared in controls:
            if shared not in coreachable:
                continue
            # Read the saturated automaton from `shared` without copying.
            canonical, signature = canonical_nfa(
                saturated, self._alphabets[index], initial=[shared]
            )
            parts.append((shared, canonical, signature))
        return tuple(parts)

    @staticmethod
    def _splice(
        symbolic: SymbolicState, index: int, parts
    ) -> Iterator[SymbolicState]:
        for shared, canonical, signature in parts:
            automata = list(symbolic.automata)
            signatures = list(symbolic.signatures)
            automata[index] = canonical
            signatures[index] = signature
            yield SymbolicState(shared, tuple(automata), tuple(signatures))

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def symbolic_up_to(self, k: int | None = None) -> frozenset[SymbolicState]:
        """``Sk`` (default: the latest computed bound)."""
        if k is None:
            k = self.k
        k = min(k, self.k)
        result: set[SymbolicState] = set()
        for level in self.levels[: k + 1]:
            result |= level
        return frozenset(result)

    def accepts(self, state: GlobalState, k: int | None = None) -> bool:
        """Membership of a global state in ``γ(Sk)`` (= ``Rk``)."""
        return any(symbolic.accepts(state) for symbolic in self.symbolic_up_to(k))

    def plateaued_at(self, k: int) -> bool:
        """True iff no new symbolic state appeared at bound ``k``
        (sufficient — not necessary — for ``Rk−1 = Rk``)."""
        return k >= 1 and k <= self.k and not self.levels[k]

    def stats(self) -> dict:
        """Work summary for verification-result plumbing."""
        return {
            "symbolic_states": len(self._seen),
            "levels": [len(level) for level in self.levels],
            "expansion_memo": (
                len(self._expansions) if self._expansions is not None else 0
            ),
            "batched": self.batched,
        }

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the canonical-signature frontier (per-level
        symbolic states) and the cross-expansion memo into a versioned
        binary blob (:mod:`repro.service.snapshot`); automata persist
        as signature keys and are rebuilt through the hash-cons table
        on restore."""
        from repro.service.snapshot import snapshot_symbolic

        return snapshot_symbolic(self)

    @classmethod
    def restore(
        cls, cpds: CPDS, data: bytes, *, batched: bool | None = None
    ) -> "SymbolicReach":
        """Rebuild a warm engine from a :meth:`snapshot` blob taken on
        the same CPDS; raises :class:`~repro.errors.SnapshotError` on
        any undecodable or mismatched blob."""
        from repro.service.snapshot import restore_symbolic

        return restore_symbolic(cpds, data, batched=batched)

    # ------------------------------------------------------------------
    # Lane contract
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        cpds: CPDS,
        *,
        max_states_per_context: int | None = None,
        config: EngineConfig | None = None,
    ) -> "SymbolicReach":
        # The symbolic lane has no divergence guard: γ(Sk) may be
        # infinite by design, so max_states_per_context is ignored.
        return cls(cpds, config=config)

    @classmethod
    def restore_engine(
        cls,
        cpds: CPDS,
        data: bytes,
        *,
        max_states_per_context: int | None = None,
        config: EngineConfig | None = None,
    ) -> "SymbolicReach":
        # batched=None keeps the snapshotted engine's mode: EngineConfig
        # cannot distinguish "unset" from its default, and overriding a
        # pure execution knob on resume is never required.
        return cls.restore(cpds, data, batched=None)
