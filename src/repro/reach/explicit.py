"""Explicit-state computation of the sets ``Rk`` (paper Secs. 2.3, 5),
rebuilt on a flat array-encoded interned core.

``R0 = {⟨qI|w1,...,wn⟩}`` and ``Rk`` adds, for every state first reached
at bound ``k−1`` and every thread ``i``, all states thread ``i`` can
reach in one context.  Because a context includes the empty run,
expanding only the frontier is exact: states discovered at earlier
levels were already expanded.

Architecture (PR 3 sharding, PR 4 flat arrays + multiprocess saturation)
------------------------------------------------------------------------
The engine is *product-space bound*: the dominant cost is not the local
BFS trees (tiny, heavily shared) but the per-state bookkeeping of the
global product.  Three layers kill it:

* A :class:`~repro.cpds.interning.StateTable` interns every component
  (shared states, per-thread stack words) and packs every global state
  into a **single integer key** (fixed-width bit fields, adaptively
  widened); ``first_seen`` is an id-indexed list, levels are id tuples,
  parents an int-keyed dict, and the visible projection is memoized per
  id.  The table doubles as the seen-set: an intern miss *is* the
  freshness test.
* ``advance`` **shards** each frontier level by the moving thread's view
  ``(thread, shared_id, stack_id)`` and saturates each unique view
  exactly once per level via
  :func:`~repro.cpds.semantics.thread_view_post`, which emits a flat
  CSR-encoded :class:`~repro.cpds.semantics.ContextTree`
  (``array('q')`` edge offsets + target id columns).  METER records the
  grouping — ``explicit.level_views`` vs ``explicit.level_unique_views``
  vs ``explicit.expansions`` — so harnesses can assert one saturation
  per unique view per level (with ``incremental=True`` cross-level
  reuse, ``expansions + context_cache_hits`` accounts for every shard).
* The tree is **replayed** across all global states sharing the view by
  pure integer arithmetic: mask the moving thread's bit field out of
  the member's packed key and OR in the tree's precomputed per-edge
  delta — no tuple allocation, no nested re-hashing, no ``GlobalState``
  materialized anywhere on the path.  Decoding happens lazily in the
  observation API.

With ``jobs=N`` (opt-in), the whole advance is parallel
(:mod:`repro.reach.parallel`): each level's *uncached* unique views are
saturated by a pool of worker processes — the per-view explorations are
independent, the same embarrassing parallelism context-bounded analyses
exploit — and, when the level's replay work clears ``shard_min_work``,
the member x edge replay itself is **sharded** across the same pool:
each worker replays its slice of the CSR trees by pure integer
arithmetic against a private seen set and the parent merge pass dedupes
the candidate keys into the canonical table
(:meth:`~repro.cpds.interning.StateTable.intern_packed`), resolving
cross-shard successors in submission order.  The seen-set itself always
stays in the parent.  ``jobs=1`` keeps everything in-process;
``shard_replay=False`` restores the PR 4 saturation-only fan-out and
``parallel_saturation=False`` isolates replay sharding (the benchmark
``shard`` sub-mode).  All paths produce identical levels and identical
METER work counts.

The seed per-state formulation — one
:func:`~repro.cpds.semantics.thread_context_post` call per (state,
thread) — is kept behind ``batched=False`` as the differential oracle;
``tests/reach/test_batched_explicit.py`` and
``tests/reach/test_parallel_explicit.py`` prove the three modes agree
level for level on every FCR registry row and on randomized CPDSs.

Explicit enumeration requires every ``Rk`` to be finite — the finite
context reachability condition (Sec. 5).  Programs violating FCR trip
the per-context divergence guard with
:class:`~repro.errors.ContextExplosionError`.
"""

from __future__ import annotations

from repro.cpds.cpds import CPDS
from repro.cpds.interning import StateTable
from repro.cpds.semantics import ContextTree, thread_context_post, thread_view_post
from repro.cpds.state import GlobalState
from repro.obs import trace
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach import vectorized
from repro.reach.base import ReachabilityEngine
from repro.reach.config import EngineConfig, merge_legacy_kwargs
from repro.reach.registry import register
from repro.reach.witness import Trace, TraceStep, rebuild_trace
from repro.util.meter import METER

#: A frontier shard key packs ``(thread, shared_id, stack_id)`` into one
#: int — ``(qid << (t + 32)) | (wid << t) | thread`` for a per-engine
#: thread-field width ``t`` sized to the CPDS at construction —
#: independent of the table's adaptive packing geometry, so the
#: cross-level tree cache keyed by it survives repacks.  Stack pools
#: cannot outgrow 2**32 entries.
View = int

_VIEW_WID_MASK = 0xFFFFFFFF


@register
class ExplicitReach(ReachabilityEngine):
    """Sharded, view-batched explicit engine for the observation
    sequences ``(Rk)`` and ``(T(Rk))`` (see the module docstring)."""

    lane = "explicit"
    sequence_name = "Rk"
    snapshot_kind = 1
    meter_prefix = "explicit."
    supports_witness = True
    preferred_algorithm = "scheme1"

    #: Engine default for ``EngineConfig.shard_min_work=None``.
    DEFAULT_SHARD_MIN_WORK = 4096

    def __init__(
        self,
        cpds: CPDS,
        max_states_per_context: int = DEFAULT_STATE_LIMIT,
        track_traces: bool = True,
        incremental: bool | None = None,
        batched: bool | None = None,
        jobs: int | None = None,
        parallel_saturation: bool = True,
        shard_replay: bool | None = None,
        shard_min_work: int | None = None,
        backend: str | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        super().__init__()
        config = merge_legacy_kwargs(
            config,
            "ExplicitReach",
            jobs=jobs,
            batched=batched,
            backend=backend,
            shard_replay=shard_replay,
            shard_min_work=shard_min_work,
        )
        self.config = config
        # ``incremental`` stays a direct engine parameter (differential
        # harnesses toggle it per instance); None defers to the config.
        incremental = config.incremental if incremental is None else incremental
        jobs = config.jobs
        batched = config.batched
        backend = config.backend
        shard_replay = config.shard_replay
        shard_min_work = (
            self.DEFAULT_SHARD_MIN_WORK
            if config.shard_min_work is None
            else config.shard_min_work
        )
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if jobs > 1 and not batched:
            raise ValueError("jobs > 1 requires the batched engine (batched=True)")
        if shard_min_work < 0:
            raise ValueError(
                f"shard_min_work must be >= 0, got {shard_min_work}"
            )
        self.cpds = cpds
        #: Requested replay backend knob (``auto``/``python``/``numpy``);
        #: a pure execution knob like ``jobs`` — never fingerprinted or
        #: snapshotted.  ``resolved_backend`` is what actually runs.
        self.backend = vectorized.validate_backend(backend)
        self._use_numpy = vectorized.resolve_backend(backend) == "numpy"
        self.max_states_per_context = max_states_per_context
        self.batched = batched
        #: Worker-process count for the parallel advance; 1 = in-process.
        self.jobs = jobs
        #: With ``jobs>1``: fan uncached view saturations out to the
        #: pool (False isolates replay sharding for benchmarking).
        self.parallel_saturation = parallel_saturation
        #: With ``jobs>1``: shard the member x edge tree replay across
        #: the pool too (False restores saturation-only parallelism).
        self.shard_replay = shard_replay
        #: Minimum member x edge products in a level before replay
        #: sharding pays for its IPC; smaller levels replay in-process.
        self.shard_min_work = shard_min_work
        self._pool = None
        #: View-key geometry (see :data:`View`): the thread field is
        #: sized to this CPDS so view keys cannot alias however many
        #: threads the product has.
        self._view_wid_shift = max(4, cpds.n_threads.bit_length())
        self._view_qid_shift = self._view_wid_shift + 32
        self._view_index_mask = (1 << self._view_wid_shift) - 1
        #: Interned global-state core shared with the context-tree
        #: builders; dense ids index ``_first_seen`` and key parents.
        self.table = StateTable(cpds.n_threads)
        #: Cross-level memo of array-encoded context trees, keyed by
        #: ``(thread, shared_id, stack_id)`` (``incremental=True``): a
        #: context depends only on the moving thread's local view, which
        #: recurs under many global states and levels.
        self._tree_cache: dict[View, ContextTree] | None = (
            {} if incremental else None
        )
        #: Seed-formulation memo for the per-state oracle path, keyed by
        #: ``(thread, PDSState)`` (see :func:`thread_context_post`).
        self._context_cache: dict | None = {} if incremental else None
        #: Per-thread successor memos shared by every in-process tree
        #: saturation (see :func:`thread_view_post`).
        self._succ_memos: tuple[dict, ...] = tuple(
            {} for _ in range(cpds.n_threads)
        )
        #: ``_level_ids[k]`` = ids of states first reached at bound k.
        self._level_ids: list[tuple[int, ...]] = []
        #: id -> level at which the state was first reached (dense).
        self._first_seen: list[int] = []
        #: Witness parents: id-keyed ``sid -> (parent_sid, thread,
        #: action)`` in batched mode, the seed's ``GlobalState``-keyed
        #: dict on the per-state oracle path, ``None`` when traces are
        #: off.  The root maps to ``None`` in both.
        self._parents: dict | None = {} if track_traces else None
        #: Lazily decoded ``levels`` view (append-only, so a prefix
        #: cache never goes stale).
        self._decoded_levels: list[frozenset[GlobalState]] = []
        self._first_seen_view: tuple[int, dict] | None = None

        initial = cpds.initial_state()
        sid = self.table.intern(initial)
        self._first_seen.append(0)
        self._level_ids.append((sid,))
        if self._parents is not None:
            self._parents[sid if batched else initial] = None
        self._record_visible(frozenset([self.table.visible(sid)]))

    # ------------------------------------------------------------------
    # Level mechanics
    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Compute ``R(k+1)``; return True iff it strictly grows ``Rk``.

        Exception-safe: if a context trips the divergence guard
        (:class:`~repro.errors.ContextExplosionError`) mid-level, or a
        saturation worker dies (:class:`~repro.errors.CubaError`), every
        state discovered by the partial level is rolled back — ids,
        ``first_seen`` and parents stay consistent with the committed
        levels, so callers that catch the guard (Scheme 1's UNKNOWN
        path) report coherent stats and a later retry re-discovers the
        rolled-back states."""
        frontier = self._level_ids[-1]
        level = len(self._level_ids)
        fresh: list[int] = []
        base = len(self._first_seen)
        try:
            if self.batched:
                self._advance_batched(frontier, level, fresh)
            else:
                self._advance_per_state(frontier, level, fresh)
        except BaseException:
            self._rollback(base)
            raise
        self._level_ids.append(tuple(fresh))
        if (
            self._use_numpy
            and len(fresh) >= vectorized.NUMPY_MIN_DECODE
            and vectorized.table_fits_int64(self.table)
        ):
            projections = vectorized.visible_batch(self.table, fresh)
        else:
            visible = self.table.visible
            projections = [visible(sid) for sid in fresh]
        self._record_visible(frozenset(projections))
        return bool(fresh)

    def _rollback(self, base: int) -> None:
        """Discard every state interned at id ``base`` or later (the
        half-committed partial level).  Ids are dense and append-only,
        and the engine is the only writer of global ids, so truncation
        restores exactly the pre-``advance`` state."""
        table = self.table
        if self._parents is not None:
            if self.batched:
                for sid in range(base, len(table)):
                    self._parents.pop(sid, None)
            else:
                for sid in range(base, len(table)):
                    self._parents.pop(table.state(sid), None)
        table.truncate(base)
        del self._first_seen[base:]

    def _advance_batched(
        self, frontier: tuple[int, ...], level: int, fresh: list[int]
    ) -> None:
        """Shard the frontier by unique thread view, saturate each view
        once (in-process or across the worker pool), then replay the
        array-encoded tree across every member by packed-key
        substitution."""
        table = self.table
        n = self.cpds.n_threads
        bits = table._bits
        mask = table._mask
        qshift = table._qshift
        packed = table._packed
        shifts = tuple(bits * index for index in range(n))
        threads = tuple(range(n))
        view_wid_shift = self._view_wid_shift
        view_qid_shift = self._view_qid_shift
        shards: dict[View, list[int]] = {}
        if (
            self._use_numpy
            and n * len(frontier) >= vectorized.NUMPY_MIN_WORK
            and vectorized.table_fits_int64(table)
            and vectorized.views_fit_int64(
                table, view_qid_shift, view_wid_shift
            )
        ):
            shards = vectorized.group_views(
                table, frontier, n, view_qid_shift, view_wid_shift
            )
        else:
            for sid in frontier:
                key = packed[sid]
                qbase = (key >> qshift) << view_qid_shift
                for index in threads:
                    shards.setdefault(
                        qbase
                        | (((key >> shifts[index]) & mask) << view_wid_shift)
                        | index,
                        [],
                    ).append(sid)
        METER.bump("explicit.level_views", n * len(frontier))
        METER.bump("explicit.level_unique_views", len(shards))
        if not shards:
            return
        trees = self._trees_for(list(shards))

        if self.jobs > 1 and self.shard_replay:
            work = sum(
                len(members) * len(trees[view].qids)
                for view, members in shards.items()
            )
            if work >= self.shard_min_work:
                self._replay_sharded(shards, trees, level, fresh)
                return

        if self._use_numpy:
            if vectorized.table_fits_int64(table):
                # Geometry is stable from here on: every tree saturated
                # in _trees_for, so replay interns no components and
                # cannot repack (the _replay_sharded invariant).
                bits = table._bits
                qshift = table._qshift
                low_mask = (1 << qshift) - 1
                entries = []
                total = 0
                for view, members in shards.items():
                    tree = trees[view]
                    if not len(tree.qids):
                        continue
                    index = view & self._view_index_mask
                    move_clear = ~(table._mask << (bits * index))
                    entries.append(
                        (members, tree, index, low_mask & move_clear)
                    )
                    total += len(members) * len(tree.qids)
                if (
                    entries
                    and total >= vectorized.NUMPY_MIN_WORK
                    and total
                    >= len(entries) * vectorized.NUMPY_MIN_ENTRY_AVG
                ):
                    vectorized.bump_view(len(entries))
                    vectorized.replay_level(
                        table, entries, level, self._first_seen,
                        self._parents, fresh.append,
                    )
                    return
            else:
                # Packed keys exceed int64 (high thread counts /
                # adaptive repacks): the whole level routes to the
                # pure-int loop.
                vectorized.bump_fallback()

        first_seen = self._first_seen
        parents = self._parents
        append_fresh = fresh.append
        for view, members in shards.items():
            tree = trees[view]
            if not len(tree.qids):
                continue  # the context reaches nothing beyond its root
            index = view & self._view_index_mask
            # Saturating later views grows the component pools, which
            # can repack the table — re-read the geometry per shard.
            # Within one shard's replay only global ids grow, and the
            # repack mutates dict/list objects in place, so these
            # references stay valid for the whole shard.
            bits = table._bits
            qshift = table._qshift
            packed = table._packed
            ids = table._ids
            states = table._states
            visibles = table._visibles
            low_mask = (1 << qshift) - 1
            move_clear = ~(table._mask << (bits * index))
            if parents is None:
                deltas = tree.deltas(table)
                for sid in members:
                    # ``StateTable.intern_key`` inlined on packed keys
                    # (see the coupling note there): this loop runs once
                    # per (member, tree edge) and the call overhead is
                    # the hot-path cost.
                    frozen = packed[sid] & low_mask & move_clear
                    for delta in deltas:
                        key = frozen | delta
                        nsid = ids.get(key)
                        if nsid is None:
                            ids[key] = nsid = len(packed)
                            packed.append(key)
                            states.append(None)
                            visibles.append(None)
                            first_seen.append(level)
                            append_fresh(nsid)
            else:
                edge_rows = tree.edge_rows(table)
                for sid in members:
                    frozen = packed[sid] & low_mask & move_clear
                    by_pos = [sid]
                    record = by_pos.append
                    for delta, parent_pos, action in edge_rows:
                        key = frozen | delta
                        nsid = ids.get(key)
                        if nsid is None:
                            ids[key] = nsid = len(packed)
                            packed.append(key)
                            states.append(None)
                            visibles.append(None)
                            first_seen.append(level)
                            append_fresh(nsid)
                            parents[nsid] = (by_pos[parent_pos], index, action)
                        record(nsid)

    def _replay_sharded(
        self,
        shards: dict[View, list[int]],
        trees: dict[View, ContextTree],
        level: int,
        fresh: list[int],
    ) -> None:
        """Shard the member x edge replay across the worker pool.

        Every tree is already saturated (``_trees_for`` ran), so no
        component interning — and therefore no table repack — can happen
        during replay: the packing geometry read here stays valid for
        the whole level, and worker-computed candidate keys
        (``frozen | delta``) are directly internable by the parent.

        The merge pass consumes bucket results in submission order and
        dedupes through :meth:`StateTable.intern_packed`; freshness is
        the lock-step length test, exactly like the serial inlined loop.
        Worker rows are emitted parents-first within a bucket, so a
        tracked candidate's ``parent_key`` always resolves to an id by
        the time it is read (cross-shard successors resolve against the
        canonical table — a key another shard also produced simply stops
        being fresh).  A dead worker raises
        :class:`~repro.errors.CubaError` and ``advance`` rolls the
        partial level back, so the advance is re-runnable.
        """
        with trace.span(
            "explicit.replay_sharded", views=len(shards), jobs=self.jobs
        ):
            self._replay_sharded_impl(shards, trees, level, fresh)

    def _replay_sharded_impl(
        self,
        shards: dict[View, list[int]],
        trees: dict[View, ContextTree],
        level: int,
        fresh: list[int],
    ) -> None:
        table = self.table
        packed = table._packed
        bits = table._bits
        mask = table._mask
        qshift = table._qshift
        low_mask = (1 << qshift) - 1
        index_mask = self._view_index_mask
        track = self._parents is not None

        total = 0
        specs: list[tuple[View, list[int], int]] = []
        for view, members in shards.items():
            n_edges = len(trees[view].qids)
            if not n_edges:
                continue  # the context reaches nothing beyond its root
            total += len(members) * n_edges
            specs.append((view, members, n_edges))
        if not specs:
            return
        # Per-bucket work target; a view whose member range exceeds it
        # is split so one giant view cannot serialize the level.
        target = max(1, -(-total // self.jobs))
        units: list[tuple] = []
        unit_views: list[View] = []
        unit_work: list[int] = []
        for view, members, n_edges in specs:
            tree = trees[view]
            index = view & index_mask
            move_clear = ~(mask << (bits * index))
            deltas = list(tree.deltas(table))
            parent_pos = list(tree.parent_positions()) if track else None
            step = max(1, target // n_edges)
            for start in range(0, len(members), step):
                chunk = members[start:start + step]
                frozen = [packed[sid] & low_mask & move_clear for sid in chunk]
                member_keys = [packed[sid] for sid in chunk] if track else None
                units.append((frozen, member_keys, deltas, parent_pos))
                unit_views.append(view)
                unit_work.append(len(chunk) * n_edges)

        n_buckets = min(self.jobs, len(units))
        buckets: list[list] = [[] for _ in range(n_buckets)]
        bucket_views: list[list[View]] = [[] for _ in range(n_buckets)]
        loads = [0] * n_buckets
        # Deterministic greedy balance, heaviest units first.
        for position in sorted(
            range(len(units)), key=lambda u: (-unit_work[u], u)
        ):
            bucket = loads.index(min(loads))
            loads[bucket] += unit_work[position]
            buckets[bucket].append(units[position])
            bucket_views[bucket].append(unit_views[position])
        METER.bump("explicit.replay_shards", len(units))

        # Workers resolve the backend knob independently (a forked
        # worker sees the parent's numpy; a spawn-started one re-probes)
        # and re-check key widths per unit — mixed-width levels replay
        # each unit on whichever loop fits.
        results = self._lease().replay(buckets, track, backend=self.backend)

        first_seen = self._first_seen
        parents = self._parents
        intern_packed = table.intern_packed
        append_fresh = fresh.append
        if not track:
            for rows in results:
                for key in rows:
                    nsid = intern_packed(key)
                    if nsid == len(first_seen):
                        first_seen.append(level)
                        append_fresh(nsid)
            return
        ids = table._ids
        for views_of, rows in zip(bucket_views, results):
            for key, parent_key, unit_pos, edge_idx in rows:
                nsid = intern_packed(key)
                if nsid == len(first_seen):
                    first_seen.append(level)
                    append_fresh(nsid)
                    view = views_of[unit_pos]
                    parents[nsid] = (
                        ids[parent_key],
                        view & index_mask,
                        trees[view].actions[edge_idx],
                    )

    def _view_parts(self, view: View) -> tuple[int, int, int]:
        """Unpack a view key to ``(thread, shared_id, stack_id)``."""
        return (
            view & self._view_index_mask,
            view >> self._view_qid_shift,
            (view >> self._view_wid_shift) & _VIEW_WID_MASK,
        )

    def _trees_for(self, views: list[View]) -> dict[View, ContextTree]:
        """A context tree per view: cross-level cache hits first, then
        the misses saturated in-process (``jobs=1``) or fanned out to
        the worker pool — METER accounting is identical either way."""
        cache = self._tree_cache
        trees: dict[View, ContextTree] = {}
        missing: list[View] = []
        for view in views:
            tree = cache.get(view) if cache is not None else None
            if tree is not None:
                METER.bump("explicit.context_cache_hits")
                trees[view] = tree
            else:
                missing.append(view)
        if not missing:
            return trees
        if self.jobs > 1 and self.parallel_saturation and len(missing) > 1:
            saturated = self._saturate_parallel(missing)
            METER.bump("explicit.expansions", len(missing))
            if cache is not None:
                METER.bump("explicit.context_cache_misses", len(missing))
                cache.update(saturated)
            trees.update(saturated)
        else:
            for view in missing:
                index, qid, wid = self._view_parts(view)
                tree = thread_view_post(
                    self.cpds, self.table, index, qid, wid,
                    self.max_states_per_context,
                    succ_memo=self._succ_memos[index],
                    build_rows=self._parents is not None,
                )
                if cache is not None:
                    METER.bump("explicit.context_cache_misses")
                    cache[view] = tree
                trees[view] = tree
        return trees

    def _lease(self):
        """The engine's worker pool, (re-)leased from the shared cache
        when absent or broken (a crashed pool was evicted — the next
        lease spawns a fresh one, making failed advances re-runnable)."""
        from repro.reach.parallel import lease_pool

        if self._pool is None or self._pool.broken:
            self._pool = lease_pool(
                self.cpds, self.max_states_per_context, self.jobs
            )
        return self._pool

    def _saturate_parallel(
        self, missing: list[View]
    ) -> dict[View, ContextTree]:
        """Fan the uncached views out to the leased worker pool and
        remap the returned slice-local trees onto this table's ids (in
        submission order, so pool growth is deterministic)."""
        from repro.reach.parallel import remap_slice

        with trace.span(
            "explicit.saturation_fanout", views=len(missing), jobs=self.jobs
        ):
            return self._saturate_parallel_impl(missing, remap_slice)

    def _saturate_parallel_impl(
        self, missing: list[View], remap_slice
    ) -> dict[View, ContextTree]:
        pool = self._lease()
        table = self.table
        roots = [self._view_parts(view) for view in missing]
        decoded = [
            (index, table.shared(qid), table.stack(index, wid))
            for index, qid, wid in roots
        ]
        trees: dict[View, ContextTree] = {}
        for start, result in pool.saturate(decoded):
            for position, tree in enumerate(remap_slice(table, roots, start, result)):
                trees[missing[start + position]] = tree
        return trees

    def _advance_per_state(
        self, frontier: tuple[int, ...], level: int, fresh: list[int]
    ) -> None:
        """The seed formulation: one :func:`thread_context_post` call
        per (frontier state, thread) — the differential oracle."""
        table = self.table
        intern = table.intern
        state_of = table.state
        first_seen = self._first_seen
        for sid in frontier:
            state = state_of(sid)
            for index in range(self.cpds.n_threads):
                reached = thread_context_post(
                    self.cpds,
                    state,
                    index,
                    max_states=self.max_states_per_context,
                    parents=self._parents,
                    cache=self._context_cache,
                )
                for nxt in reached:
                    nsid = intern(nxt)
                    if nsid == len(first_seen):
                        first_seen.append(level)
                        fresh.append(nsid)

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    @property
    def levels(self) -> list[frozenset[GlobalState]]:
        """``levels[k]`` = global states first reached at bound k,
        decoded lazily from the interned core."""
        decoded = self._decoded_levels
        state_of = self.table.state
        while len(decoded) < len(self._level_ids):
            decoded.append(
                frozenset(state_of(sid) for sid in self._level_ids[len(decoded)])
            )
        return decoded

    @property
    def first_seen(self) -> dict[GlobalState, int]:
        """state -> level at which it was first reached (decoded view;
        use :attr:`n_states` when only the count is needed)."""
        view = self._first_seen_view
        count = len(self._first_seen)
        if view is None or view[0] != count:
            state_of = self.table.state
            view = (
                count,
                {
                    state_of(sid): lvl
                    for sid, lvl in enumerate(self._first_seen)
                },
            )
            self._first_seen_view = view
        return view[1]

    @property
    def n_states(self) -> int:
        """``|Rk|`` at the latest computed bound, without decoding."""
        return len(self._first_seen)

    def level_sizes(self) -> list[int]:
        """``|Rk \\ Rk−1|`` per level, without decoding."""
        return [len(level) for level in self._level_ids]

    def states_up_to(self, k: int | None = None) -> frozenset[GlobalState]:
        """``Rk`` (default: the latest computed bound)."""
        if k is None:
            k = self.k
        k = min(k, self.k)
        result: set[GlobalState] = set()
        for level in self.levels[: k + 1]:
            result |= level
        return frozenset(result)

    def states_new_at(self, k: int) -> frozenset[GlobalState]:
        """``Rk \\ Rk−1``."""
        if 0 <= k < len(self._level_ids):
            return self.levels[k]
        return frozenset()

    def plateaued_at(self, k: int) -> bool:
        """True iff ``Rk−1 = Rk``.  By Lemma 7 ``(Rk)`` is stutter-free,
        so a plateau here is already a collapse."""
        return k >= 1 and k <= self.k and not self._level_ids[k]

    @property
    def resolved_backend(self) -> str:
        """The concrete replay backend this engine runs (``"auto"``
        resolved against numpy availability at construction)."""
        return "numpy" if self._use_numpy else "python"

    def stats(self) -> dict:
        """Work summary for verification-result plumbing (all sizes read
        off the int core — no decoding)."""
        cache = self._tree_cache if self.batched else self._context_cache
        return {
            "global_states": len(self._first_seen),
            "levels": self.level_sizes(),
            "batched": self.batched,
            "jobs": self.jobs,
            "shard_replay": self.shard_replay,
            "backend": self.resolved_backend,
            "context_memo": len(cache) if cache is not None else 0,
        }

    # ------------------------------------------------------------------
    # Witnesses
    # ------------------------------------------------------------------
    def trace(self, target: GlobalState) -> Trace:
        """Reconstruct a witness path to a reached state."""
        if self._parents is None:
            raise ValueError("engine was created with track_traces=False")
        if not self.batched:
            return rebuild_trace(self._parents, target)
        sid = self.table.id_of(target)
        if sid is None or sid >= len(self._first_seen):
            raise KeyError(f"state {target} was never discovered")
        state_of = self.table.state
        reversed_steps: list[TraceStep] = []
        current = sid
        while True:
            entry = self._parents[current]
            if entry is None:
                break
            parent_sid, thread, action = entry
            reversed_steps.append(TraceStep(thread, action, state_of(current)))
            current = parent_sid
        return Trace(state_of(current), tuple(reversed(reversed_steps)))

    def find_visible(self, visible) -> GlobalState | None:
        """Some reached global state projecting to ``visible``, if any."""
        table = self.table
        for sid in range(len(self._first_seen)):
            if table.visible(sid) == visible:
                return table.state(sid)
        return None

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the committed levels, interned core, witness
        parents, and cross-level tree cache into a versioned binary
        blob (:mod:`repro.service.snapshot`).  A restored engine's
        ``ensure_level`` continues level-for-level identically to an
        uninterrupted run, including METER expansion counts."""
        from repro.service.snapshot import snapshot_explicit

        return snapshot_explicit(self)

    @classmethod
    def restore(
        cls,
        cpds: CPDS,
        data: bytes,
        *,
        jobs: int | None = None,
        shard_replay: bool | None = None,
        backend: str | None = None,
        max_states_per_context: int | None = None,
        config: EngineConfig | None = None,
    ) -> "ExplicitReach":
        """Rebuild a warm engine from a :meth:`snapshot` blob taken on
        the same CPDS.  ``jobs``, ``shard_replay`` and ``backend`` are
        pure execution knobs and may differ from the snapshotted
        engine's; raises :class:`~repro.errors.SnapshotError` on any
        undecodable or mismatched blob."""
        from repro.service.snapshot import restore_explicit

        config = merge_legacy_kwargs(
            config,
            "ExplicitReach.restore",
            jobs=jobs,
            shard_replay=shard_replay,
            backend=backend,
        )
        return restore_explicit(
            cpds,
            data,
            config=config,
            max_states_per_context=max_states_per_context,
        )

    # ------------------------------------------------------------------
    # Lane contract
    # ------------------------------------------------------------------
    @classmethod
    def applicable(cls, cpds: CPDS, prop=None) -> bool:
        """The explicit lane requires finite context reachability
        (Sec. 5): every per-thread shallow-configuration language must
        be finite or enumeration diverges."""
        from repro.cuba.fcr import check_fcr

        return check_fcr(cpds).holds

    @classmethod
    def create(
        cls,
        cpds: CPDS,
        *,
        max_states_per_context: int | None = None,
        config: EngineConfig | None = None,
    ) -> "ExplicitReach":
        return cls(
            cpds,
            max_states_per_context=(
                DEFAULT_STATE_LIMIT
                if max_states_per_context is None
                else max_states_per_context
            ),
            config=config,
        )

    @classmethod
    def restore_engine(
        cls,
        cpds: CPDS,
        data: bytes,
        *,
        max_states_per_context: int | None = None,
        config: EngineConfig | None = None,
    ) -> "ExplicitReach":
        return cls.restore(
            cpds,
            data,
            max_states_per_context=max_states_per_context,
            config=config,
        )
