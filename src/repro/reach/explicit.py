"""Explicit-state computation of the sets ``Rk`` (paper Secs. 2.3, 5).

``R0 = {⟨qI|w1,...,wn⟩}`` and ``Rk`` adds, for every state first reached
at bound ``k−1`` and every thread ``i``, all states thread ``i`` can reach
in one context (:func:`~repro.cpds.semantics.thread_context_post`).
Because a context includes the empty run, expanding only the frontier is
exact: states discovered at earlier levels were already expanded.

Explicit enumeration requires every ``Rk`` to be finite — the finite
context reachability condition (Sec. 5).  Programs violating FCR trip
the per-context divergence guard with
:class:`~repro.errors.ContextExplosionError`.

With ``incremental=True`` (default) the engine memoizes the per-thread
local BFS trees behind :func:`~repro.cpds.semantics.thread_context_post`,
reusing work across context expansions: distinct global states frequently
share the moving thread's ``(shared, stack)`` view, and one context
depends on nothing else.
"""

from __future__ import annotations

from repro.cpds.cpds import CPDS
from repro.cpds.semantics import thread_context_post
from repro.cpds.state import GlobalState, project
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach.base import ReachabilityEngine
from repro.reach.witness import Trace, rebuild_trace


class ExplicitReach(ReachabilityEngine):
    """Frontier-based explicit engine for the observation sequences
    ``(Rk)`` and ``(T(Rk))``."""

    def __init__(
        self,
        cpds: CPDS,
        max_states_per_context: int = DEFAULT_STATE_LIMIT,
        track_traces: bool = True,
        incremental: bool = True,
    ) -> None:
        super().__init__()
        self.cpds = cpds
        self.max_states_per_context = max_states_per_context
        #: Memoized local context trees, shared across all expansions
        #: (``incremental=True``): a context depends only on the moving
        #: thread's local view, which recurs under many global states.
        self._context_cache: dict | None = {} if incremental else None
        #: ``levels[k]`` = global states first reached at bound k.
        self.levels: list[frozenset[GlobalState]] = []
        #: state -> level at which it was first reached.
        self.first_seen: dict[GlobalState, int] = {}
        self._parents: dict | None = {} if track_traces else None

        initial = cpds.initial_state()
        self.levels.append(frozenset([initial]))
        self.first_seen[initial] = 0
        if self._parents is not None:
            self._parents[initial] = None
        self._record_visible(frozenset([initial.visible()]))

    # ------------------------------------------------------------------
    # Level mechanics
    # ------------------------------------------------------------------
    def advance(self) -> bool:
        """Compute ``R(k+1)``; return True iff it strictly grows ``Rk``."""
        frontier = self.levels[-1]
        level = len(self.levels)
        fresh: set[GlobalState] = set()
        for state in frontier:
            for index in range(self.cpds.n_threads):
                reached = thread_context_post(
                    self.cpds,
                    state,
                    index,
                    max_states=self.max_states_per_context,
                    parents=self._parents,
                    cache=self._context_cache,
                )
                for nxt in reached:
                    if nxt not in self.first_seen:
                        self.first_seen[nxt] = level
                        fresh.add(nxt)
        self.levels.append(frozenset(fresh))
        self._record_visible(project(fresh))
        return bool(fresh)

    def ensure_level(self, k: int) -> None:
        while self.k < k:
            self.advance()

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def states_up_to(self, k: int | None = None) -> frozenset[GlobalState]:
        """``Rk`` (default: the latest computed bound)."""
        if k is None:
            k = self.k
        k = min(k, self.k)
        result: set[GlobalState] = set()
        for level in self.levels[: k + 1]:
            result |= level
        return frozenset(result)

    def states_new_at(self, k: int) -> frozenset[GlobalState]:
        """``Rk \\ Rk−1``."""
        if 0 <= k < len(self.levels):
            return self.levels[k]
        return frozenset()

    def plateaued_at(self, k: int) -> bool:
        """True iff ``Rk−1 = Rk``.  By Lemma 7 ``(Rk)`` is stutter-free,
        so a plateau here is already a collapse."""
        return k >= 1 and k <= self.k and not self.levels[k]

    # ------------------------------------------------------------------
    # Witnesses
    # ------------------------------------------------------------------
    def trace(self, target: GlobalState) -> Trace:
        """Reconstruct a witness path to a reached state."""
        if self._parents is None:
            raise ValueError("engine was created with track_traces=False")
        return rebuild_trace(self._parents, target)

    def find_visible(self, visible) -> GlobalState | None:
        """Some reached global state projecting to ``visible``, if any."""
        for state in self.first_seen:
            if state.visible() == visible:
                return state
        return None
