"""Lane registry: canonical lane names → engine classes.

Every analysis family ("lane") registers its engine class here with
:func:`register`; the verifier, CLI, bench runner, and service resolve
lanes exclusively through these lookups instead of ``isinstance``
checks or scattered string literals.  Adding the next lane is one new
module with a ``@register``-decorated engine class — no dispatch site
changes.

Import order: engine modules import this module to decorate themselves,
so the lookup functions must not import engine modules at module load
time.  :func:`_ensure_builtin_lanes` imports the in-tree lanes lazily
on first lookup, which both breaks the cycle and keeps third-party
lanes first-class (they register at their own import time).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import CubaError

if TYPE_CHECKING:
    from repro.core.property import Property
    from repro.cpds.cpds import CPDS
    from repro.reach.base import ReachabilityEngine
    from repro.reach.config import EngineConfig

__all__ = [
    "register",
    "lane_names",
    "canonical_lane",
    "engine_class",
    "engine_for_kind",
    "applicable_lanes",
    "create",
    "LANE_ALIASES",
]

#: Back-compat / paper-notation spellings accepted anywhere a lane name
#: is, resolved to canonical names by :func:`canonical_lane`.  Pre-PR 9
#: BENCH/LOADTEST files already used the canonical "explicit"/
#: "symbolic", so the aliases are mostly the paper's sequence names.
LANE_ALIASES: dict[str, str] = {
    "rk": "explicit",
    "sk": "symbolic",
    "wk": "wuba",
    "write-unbounded": "wuba",
}

_LANES: dict[str, type["ReachabilityEngine"]] = {}
_builtins_loaded = False


def register(cls: type["ReachabilityEngine"]) -> type["ReachabilityEngine"]:
    """Class decorator adding an engine class to the registry after
    validating its lane contract attributes."""
    lane = getattr(cls, "lane", "")
    if not lane or not isinstance(lane, str):
        raise CubaError(f"{cls.__name__}: lane name must be a non-empty string")
    if not getattr(cls, "sequence_name", ""):
        raise CubaError(f"{cls.__name__}: lane {lane!r} must set sequence_name")
    prefix = getattr(cls, "meter_prefix", "")
    if not prefix.endswith("."):
        raise CubaError(
            f"{cls.__name__}: lane {lane!r} meter_prefix must end with '.'"
        )
    kind = getattr(cls, "snapshot_kind", 0)
    if not isinstance(kind, int) or kind <= 0:
        raise CubaError(
            f"{cls.__name__}: lane {lane!r} snapshot_kind must be a positive int"
        )
    if getattr(cls, "preferred_algorithm", None) not in ("scheme1", "algorithm3"):
        raise CubaError(
            f"{cls.__name__}: lane {lane!r} preferred_algorithm must be "
            "'scheme1' or 'algorithm3'"
        )
    existing = _LANES.get(lane)
    if existing is not None and existing is not cls:
        raise CubaError(f"lane {lane!r} already registered by {existing.__name__}")
    for other in _LANES.values():
        if other is not cls and other.snapshot_kind == kind:
            raise CubaError(
                f"lane {lane!r} snapshot_kind {kind} collides with "
                f"lane {other.lane!r}"
            )
    _LANES[lane] = cls
    return cls


def _ensure_builtin_lanes() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    # Side effect of importing: the @register decorators run.
    import repro.reach.explicit  # noqa: F401
    import repro.reach.symbolic  # noqa: F401
    import repro.reach.wuba  # noqa: F401


def lane_names() -> tuple[str, ...]:
    """Canonical names of all registered lanes, sorted."""
    _ensure_builtin_lanes()
    return tuple(sorted(_LANES))


def canonical_lane(name: str) -> str:
    """Resolve ``name`` (canonical or alias, case-insensitive) to the
    registry's canonical lane name; raises CubaError on unknown names."""
    _ensure_builtin_lanes()
    key = name.strip().lower()
    key = LANE_ALIASES.get(key, key)
    if key not in _LANES:
        known = ", ".join(sorted(_LANES))
        raise CubaError(f"unknown lane {name!r} (registered lanes: {known})")
    return key


def engine_class(name: str) -> type["ReachabilityEngine"]:
    """The engine class registered for ``name`` (aliases accepted)."""
    return _LANES[canonical_lane(name)]


def engine_for_kind(kind: int) -> type["ReachabilityEngine"]:
    """The engine class whose snapshots carry kind byte ``kind``."""
    _ensure_builtin_lanes()
    for cls in _LANES.values():
        if cls.snapshot_kind == kind:
            return cls
    raise CubaError(f"no registered lane for snapshot kind {kind}")


def applicable_lanes(cpds: "CPDS", prop: "Property | None" = None) -> tuple[str, ...]:
    """Lanes whose precondition holds on ``(cpds, prop)``."""
    _ensure_builtin_lanes()
    return tuple(
        name for name in sorted(_LANES) if _LANES[name].applicable(cpds, prop)
    )


def create(
    name: str,
    cpds: "CPDS",
    *,
    max_states_per_context: int | None = None,
    config: "EngineConfig | None" = None,
) -> "ReachabilityEngine":
    """Construct a fresh engine for lane ``name``."""
    return engine_class(name).create(
        cpds, max_states_per_context=max_states_per_context, config=config
    )
