"""Context-bounded reachability engines — the registered *lanes*.

Each analysis family ("lane") is an engine class implementing the lane
contract of :class:`~repro.reach.base.ReachabilityEngine` and
registered in :mod:`repro.reach.registry`; the verifier, CLI, bench
runner, and service all resolve lanes through the registry, so a new
lane is one new module with a ``@register``-decorated class.  In-tree
lanes:

* :class:`~repro.reach.explicit.ExplicitReach` (lane ``explicit``,
  sequence ``Rk``) — enumerates the sets ``Rk`` extensionally
  (requires finite context reachability, Sec. 5) and reconstructs
  witness traces;
* :class:`~repro.reach.symbolic.SymbolicReach` (lane ``symbolic``,
  sequence ``Sk``) — maintains ``Sk`` as sets of symbolic states
  ``⟨q|A1,...,An⟩`` with one pushdown store automaton per thread
  (Sec. 6 approach 3, App. E), the Qadeer/Rehof-style engine that also
  handles non-FCR programs;
* :class:`~repro.reach.wuba.WubaReach` (lane ``wuba``, sequence
  ``Wk``) — the write-unbounded family: levels bound shared-state
  *writes* instead of contexts, closing each level under write-free
  computation (requires finite write-free closures, WCR).

All expose the same frontier/level interface consumed by the CUBA
algorithms in :mod:`repro.cuba`; execution knobs travel in
:class:`~repro.reach.config.EngineConfig`.
"""

from repro.reach import registry
from repro.reach.base import ReachabilityEngine
from repro.reach.config import EngineConfig
from repro.reach.explicit import ExplicitReach
from repro.reach.symbolic import SymbolicReach, SymbolicState
from repro.reach.witness import Trace, TraceStep, validate_trace
from repro.reach.wuba import WubaReach

__all__ = [
    "EngineConfig",
    "ExplicitReach",
    "ReachabilityEngine",
    "SymbolicReach",
    "SymbolicState",
    "Trace",
    "TraceStep",
    "WubaReach",
    "registry",
    "validate_trace",
]
