"""Context-bounded reachability engines.

Two interchangeable engines compute the observation sequences of the
paper:

* :class:`~repro.reach.explicit.ExplicitReach` — enumerates the sets
  ``Rk`` extensionally (requires finite context reachability, Sec. 5) and
  reconstructs witness traces;
* :class:`~repro.reach.symbolic.SymbolicReach` — maintains ``Sk`` as sets
  of symbolic states ``⟨q|A1,...,An⟩`` with one pushdown store automaton
  per thread (Sec. 6 approach 3, App. E), the Qadeer/Rehof-style engine
  that also handles non-FCR programs.

Both expose the same frontier/level interface consumed by the CUBA
algorithms in :mod:`repro.cuba`.
"""

from repro.reach.base import ReachabilityEngine
from repro.reach.explicit import ExplicitReach
from repro.reach.symbolic import SymbolicReach, SymbolicState
from repro.reach.witness import Trace, TraceStep, validate_trace

__all__ = [
    "ExplicitReach",
    "ReachabilityEngine",
    "SymbolicReach",
    "SymbolicState",
    "Trace",
    "TraceStep",
    "validate_trace",
]
