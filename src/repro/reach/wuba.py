"""Write-unbounded analysis (WUBA): the observation sequence ``(Wk)``.

The upstream RUBA tool pairs CUBA's context-unbounded analysis with a
*write*-unbounded one: instead of bounding the number of scheduling
contexts, bound the number of **writes to the shared state** and let
each level close under write-free computation.  ``Wk`` is the set of
global states reachable with at most ``k`` shared-state writes, where a
write is any action with ``to_shared != from_shared``.

``(Wk)`` is an observation sequence in the paper's sense (Def. 1): it
is monotone, each level is effectively computable, and its union is the
full reachable set — every execution decomposes into write-free
segments separated by single writes.  Two facts make levels computable
on the existing PDS substrate:

* **Write-free closure factorizes.**  Between writes the shared state
  is pinned, so each thread's shared-preserving moves touch only its
  own stack and moves of different threads commute.  The write-free
  closure of ``⟨q|w1,...,wn⟩`` is exactly the per-thread product of the
  local closures :func:`~repro.cpds.semantics.thread_write_free_post` —
  no interleaving enumeration.
* **Frontier expansion is exact.**  States are inserted closure-first:
  whenever a state enters the level set, its entire write-free closure
  enters with it (and the closure of a closure member is contained in
  the closure itself, write-free reachability being transitive).  So
  advancing only needs to fire *writing* actions from the newest
  level's states; older states were expanded when they were new.

Consequently a plateau of ``(Wk)`` is a genuine fixpoint: an empty
level means no frontier, and the cumulative set is closed under both
write-free moves and writes — it *is* the reachable set, so the plain
Scheme 1 plateau test is sound for this lane
(``preferred_algorithm = "scheme1"``).

Termination of each level requires finite write-free closures (WCR) —
the lane's :meth:`~WubaReach.applicable` precondition, checked like FCR
via per-thread shallow-configuration finiteness on the write-free
sub-PDS, and guarded at runtime by
:class:`~repro.errors.ContextExplosionError`.
"""

from __future__ import annotations

import itertools

from repro.cpds.cpds import CPDS
from repro.cpds.semantics import thread_write_free_post
from repro.cpds.state import GlobalState
from repro.errors import ContextExplosionError
from repro.pds.pds import PDS
from repro.pds.semantics import DEFAULT_STATE_LIMIT, successors as pds_successors
from repro.pds.state import PDSState
from repro.reach.base import ReachabilityEngine
from repro.reach.config import EngineConfig
from repro.reach.registry import register
from repro.util.meter import METER


def write_free_sub_pds(pds: PDS) -> PDS:
    """The thread's dynamics restricted to shared-preserving actions —
    what a thread can do between two writes, under *any* fixed shared
    state the environment leaves it in."""
    sub = PDS(
        pds.initial_shared,
        shared_states=pds.shared_states,
        alphabet=pds.alphabet,
        name=f"{pds.name or 'pds'}-write-free",
    )
    for action in pds.actions:
        if action.to_shared == action.from_shared:
            sub.add_action(action)
    return sub


@register
class WubaReach(ReachabilityEngine):
    """Level-by-level driver for ``(Wk)`` and ``(T(Wk))`` over plain
    :class:`~repro.cpds.state.GlobalState` sets (see module docstring)."""

    lane = "wuba"
    sequence_name = "Wk"
    snapshot_kind = 3
    meter_prefix = "wuba."
    supports_witness = False
    preferred_algorithm = "scheme1"

    def __init__(
        self,
        cpds: CPDS,
        max_states_per_context: int = DEFAULT_STATE_LIMIT,
        incremental: bool | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        super().__init__()
        self.cpds = cpds
        self.config = config if config is not None else EngineConfig()
        incremental = self.config.incremental if incremental is None else incremental
        self.max_states_per_context = max_states_per_context
        #: ``levels[k]`` = global states first reached with k writes.
        self.levels: list[frozenset[GlobalState]] = []
        self._seen: set[GlobalState] = set()
        #: Local-closure memo keyed ``(thread, shared, stack)`` — one
        #: closure per unique local view, however many global states
        #: and levels share it (``incremental=True``).
        self._closure_memo: dict[tuple, frozenset] | None = (
            {} if incremental else None
        )
        self._commit(self._close(cpds.initial_state()))

    # ------------------------------------------------------------------
    # Level mechanics
    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Compute ``W(k+1)``; True iff it strictly grows ``Wk``.

        Exception-safe: the level is built aside and committed last, so
        a divergence guard tripping mid-level
        (:class:`~repro.errors.ContextExplosionError`) leaves the
        committed levels consistent."""
        frontier = self.levels[-1]
        fresh: set[GlobalState] = set()
        writes = 0
        for state in frontier:
            for index, pds in enumerate(self.cpds.threads):
                local = PDSState(state.shared, state.stacks[index])
                for action, local_next in pds_successors(pds, local):
                    if action.to_shared == state.shared:
                        continue  # write-free: already in the closure
                    writes += 1
                    stacks = list(state.stacks)
                    stacks[index] = local_next.stack
                    written = GlobalState(local_next.shared, tuple(stacks))
                    if written in self._seen or written in fresh:
                        continue
                    for closed in self._close(written):
                        if closed not in self._seen:
                            fresh.add(closed)
        METER.bump("wuba.level_writes", writes)
        self._commit(frozenset(fresh))
        return bool(fresh)

    def _close(self, state: GlobalState) -> frozenset[GlobalState]:
        """Write-free closure of ``state`` as the per-thread product of
        local closures (the factorization in the module docstring)."""
        per_thread = [
            self._local_closure(index, state.shared, state.stacks[index])
            for index in range(self.cpds.n_threads)
        ]
        product_size = 1
        for stacks in per_thread:
            product_size *= len(stacks)
        if product_size > self.max_states_per_context:
            raise ContextExplosionError(
                f"write-free closure of {state} has {product_size} states, "
                f"exceeding {self.max_states_per_context}",
                states_seen=product_size,
            )
        return frozenset(
            GlobalState(state.shared, stacks)
            for stacks in itertools.product(*per_thread)
        )

    def _local_closure(self, index: int, shared, stack: tuple) -> frozenset:
        memo = self._closure_memo
        key = (index, shared, stack)
        if memo is not None:
            cached = memo.get(key)
            if cached is not None:
                METER.bump("wuba.closure_cache_hits")
                return cached
        closure = thread_write_free_post(
            self.cpds.thread(index),
            shared,
            stack,
            max_states=self.max_states_per_context,
            index=index,
        )
        if memo is not None:
            memo[key] = closure
        return closure

    def _commit(self, level: frozenset[GlobalState]) -> None:
        self.levels.append(level)
        self._seen |= level
        self._record_visible(frozenset(state.visible() for state in level))

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def states_up_to(self, k: int | None = None) -> frozenset[GlobalState]:
        """``Wk`` (default: the latest computed bound)."""
        if k is None:
            k = self.k
        k = min(k, self.k)
        result: set[GlobalState] = set()
        for level in self.levels[: k + 1]:
            result |= level
        return frozenset(result)

    def states_new_at(self, k: int) -> frozenset[GlobalState]:
        """``Wk \\ Wk−1``."""
        if 0 <= k < len(self.levels):
            return self.levels[k]
        return frozenset()

    def plateaued_at(self, k: int) -> bool:
        """True iff ``Wk−1 = Wk`` — a fixpoint, hence a collapse (see
        module docstring), making Scheme 1 sound for this lane."""
        return k >= 1 and k <= self.k and not self.levels[k]

    def stats(self) -> dict:
        return {
            "global_states": len(self._seen),
            "levels": [len(level) for level in self.levels],
            "closure_memo": (
                len(self._closure_memo) if self._closure_memo is not None else 0
            ),
        }

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the committed levels into a versioned binary blob
        (:mod:`repro.service.snapshot`); the closure memo is a pure
        cache and is rebuilt on demand after restore."""
        from repro.service.snapshot import snapshot_wuba

        return snapshot_wuba(self)

    @classmethod
    def restore(
        cls, cpds: CPDS, data: bytes, *, max_states_per_context: int | None = None
    ) -> "WubaReach":
        """Rebuild a warm engine from a :meth:`snapshot` blob taken on
        the same CPDS; raises :class:`~repro.errors.SnapshotError` on
        any undecodable or mismatched blob."""
        from repro.service.snapshot import restore_wuba

        return restore_wuba(
            cpds, data, max_states_per_context=max_states_per_context
        )

    # ------------------------------------------------------------------
    # Lane contract
    # ------------------------------------------------------------------
    @classmethod
    def applicable(cls, cpds: CPDS, prop=None) -> bool:
        """WCR — every thread's write-free closures must be finite,
        checked like FCR via shallow-configuration finiteness on the
        write-free sub-PDS (sound for closures from arbitrary stacks by
        the same fresh-top decomposition as Thm. 17)."""
        from repro.pds.saturation import shallow_configs_psa

        return all(
            shallow_configs_psa(write_free_sub_pds(pds)).language_is_finite()
            for pds in cpds.threads
        )

    @classmethod
    def create(
        cls,
        cpds: CPDS,
        *,
        max_states_per_context: int | None = None,
        config: EngineConfig | None = None,
    ) -> "WubaReach":
        return cls(
            cpds,
            max_states_per_context=(
                DEFAULT_STATE_LIMIT
                if max_states_per_context is None
                else max_states_per_context
            ),
            config=config,
        )

    @classmethod
    def restore_engine(
        cls,
        cpds: CPDS,
        data: bytes,
        *,
        max_states_per_context: int | None = None,
        config: EngineConfig | None = None,
    ) -> "WubaReach":
        return cls.restore(
            cpds, data, max_states_per_context=max_states_per_context
        )