"""Persistent analysis service (PR 5).

The paper's Cuba tool answers one query per invocation and forgets
everything it computed.  This package turns the library into a
persistent, incremental service:

* :mod:`repro.service.fingerprint` — stable content-addressed identity
  of an analysis problem ``(CPDS, property, engine config)``;
* :mod:`repro.service.snapshot` — compact binary checkpoint/restore of
  engine progress (both lanes), so a bounded run at level ``k`` resumes
  warm instead of starting over;
* :mod:`repro.service.store` — crash-safe sqlite store of verdicts and
  snapshots keyed by fingerprint, with LRU size bounding;
* :mod:`repro.service.server` — the sync :class:`AnalysisService` core
  (in-flight dedup, store-hit short-circuit, deeper-``k`` resume) and
  the stdlib-asyncio JSON-over-HTTP server around it (``cuba serve``);
* :mod:`repro.service.executor` — the engine-run execution layer
  (PR 6): inline on the thread executor, or dispatched to a pool of
  worker processes with the snapshot blobs as the IPC format
  (``cuba serve --executor process``, the daemon default);
* :mod:`repro.service.client` — the matching stdlib HTTP client
  (``cuba submit``), now multi-replica (PR 7): consistent-hash
  fingerprint-affinity routing, per-call connect/read timeouts, bounded
  retry with backoff + jitter (idempotent calls only), and failover;
* :mod:`repro.service.loadtest` — the ``cuba loadtest`` harness (PR 7):
  mixed submit/status/result traffic against 1..N replicas sharing one
  store, ``cuba-loadtest/1`` JSON payloads (p50/p99, dedup/store hit
  rates, lease and busy-retry counters) with committed-baseline gating.

Soundness hinges on the monotone-by-level shape of the bounded
sequences ``(Rk)``/``(T(Sk))``: a checkpoint at level ``k`` plus
continued ``ensure_level`` is provably identical to an uninterrupted
run (differentially tested level-for-level in
``tests/service/test_snapshot.py``).
"""

from repro.service.client import RetryPolicy, ServiceClient
from repro.service.executor import (
    EngineJob,
    JobOutcome,
    ProcessAnalysisExecutor,
    execute_job,
)
from repro.service.fingerprint import cpds_digest, fingerprint
from repro.service.loadtest import compare_loadtest, run_loadtest
from repro.service.server import AnalysisRequest, AnalysisService, ServiceServer
from repro.service.store import (
    AnalysisStore,
    DegradedAnalysisStore,
    StoreEntry,
    open_store,
)

__all__ = [
    "AnalysisRequest",
    "AnalysisService",
    "AnalysisStore",
    "DegradedAnalysisStore",
    "EngineJob",
    "JobOutcome",
    "ProcessAnalysisExecutor",
    "RetryPolicy",
    "ServiceClient",
    "ServiceServer",
    "StoreEntry",
    "compare_loadtest",
    "cpds_digest",
    "execute_job",
    "fingerprint",
    "open_store",
    "run_loadtest",
]
