"""The analysis service: sync core + stdlib asyncio JSON-over-HTTP server.

:class:`AnalysisService` is the transport-independent core every entry
point shares (the HTTP server below, ``cuba submit`` via the client,
tests, and the quickstart demo).  One ``run()`` call resolves a request
through four layers, cheapest first:

1. **In-flight dedup** — concurrent identical fingerprints join the one
   running analysis (``service.dedup_joins``); METER proves exactly one
   engine run (``service.engine_runs``).
2. **Store hit** — a stored verdict that satisfies the request's budget
   returns without touching an engine (``service.store_hits``).
3. **Snapshot resume** — a stored inconclusive run at level ``k`` with
   a snapshot resumes warm and continues to the requested budget
   (``service.resumes``) instead of starting over; sound because the
   bounded sequences are monotone by level and the resumed engines are
   differentially proven level-for-level identical to uninterrupted
   runs.
4. **Fresh run** — the requested lane executes; inconclusive-but-
   resumable outcomes persist their snapshot for the next caller.

Parsed CPDS objects are interned by content digest so repeated
submissions of the same program share one object — which is what lets
``jobs > 1`` requests reuse the leased worker pools of
:mod:`repro.reach.parallel` (the pool cache keys on CPDS identity).

The HTTP layer (:class:`ServiceServer`) is a minimal HTTP/1.1 loop on
``asyncio.start_server`` — no frameworks, connection-per-request —
with endpoints ``POST /submit``, ``GET /status``, ``GET /result``,
``GET /health``, ``GET /meter`` (the smoke test's work-counter
window), and ``POST /shutdown``.  Analyses run on the service's
bounded thread executor; graceful shutdown drains it, flushes the
store, and routes through the shared
:func:`~repro.util.caches.clear_runtime_caches` cleanup so a daemon
never leaks pooled worker processes.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from repro.core.property import Property, property_from_spec
from repro.cpds.cpds import CPDS
from repro.cpds.format import parse_cpds
from repro.errors import CubaError, ServiceError
from repro.obs import trace
from repro.obs.logs import audit, get_logger
from repro.obs.metrics import LATENCY
from repro.obs.prometheus import render
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach import registry
from repro.reach.config import EngineConfig
from repro.service.executor import (
    EngineJob,
    ProcessAnalysisExecutor,
    execute_job,
)
from repro.service.fingerprint import cpds_digest, fingerprint
from repro.service.store import AnalysisStore
from repro.util.caches import clear_runtime_caches
from repro.util.meter import METER

_log = get_logger("service.server")

#: "auto" (the Sec. 6 front-end) plus every registered lane — a new
#: lane module is service-submittable with no change here.
ENGINE_LANES = ("auto", *registry.lane_names())

#: Engine-run execution modes: "thread" runs engines inline on the
#: service's thread executor (library/test default); "process" ships
#: each run to a pool of worker processes over the snapshot codec
#: (:mod:`repro.service.executor` — the ``cuba serve`` default).
EXECUTOR_MODES = ("thread", "process")

#: Parsed-CPDS intern cache size (objects shared across requests).
_CPDS_CACHE_LIMIT = 8


def parse_property_spec(spec: str | None) -> Property:
    """The wire form of a property — the grammar shared with the CLI
    (:func:`repro.core.property.property_from_spec`), re-raised as
    :class:`ServiceError`: the service only accepts properties it can
    content-address."""
    try:
        return property_from_spec(spec)
    except ValueError as bad:
        raise ServiceError(str(bad)) from bad


@dataclass(slots=True)
class AnalysisRequest:
    """One validated verification request.

    The program arrives as exactly one of ``cpds_text`` (the textual
    CPDS exchange format) or ``bp_text`` (a concurrent Boolean program,
    compiled server-side; ``bp_init`` seeds its variables).  Either way
    the fingerprint is computed over the *compiled* CPDS, so the same
    program submitted in either form lands on the same store entry.
    """

    cpds_text: str | None = None
    bp_text: str | None = None
    bp_init: dict | None = None
    property_spec: str | None = None
    engine: str = "auto"
    max_rounds: int = 30
    max_states_per_context: int = DEFAULT_STATE_LIMIT

    def __post_init__(self) -> None:
        if (self.cpds_text is None) == (self.bp_text is None):
            raise ServiceError(
                "a request carries exactly one of 'cpds' or 'bp' program text"
            )
        if self.engine != "auto":
            # Canonicalize aliases ("wk" → "wuba", ...) up front so the
            # fingerprint's engine token — and therefore the store key —
            # is spelling-invariant.
            try:
                self.engine = registry.canonical_lane(self.engine)
            except CubaError as bad:
                raise ServiceError(
                    f"unknown engine lane {self.engine!r}; pick one of "
                    f"{ENGINE_LANES}"
                ) from bad
        if self.max_rounds < 0:
            raise ServiceError(f"max_rounds must be >= 0, got {self.max_rounds}")

    @classmethod
    def from_payload(cls, payload: dict) -> "AnalysisRequest":
        if not isinstance(payload, dict):
            raise ServiceError("request payload must be a JSON object")
        cpds_text = payload.get("cpds")
        bp_text = payload.get("bp")
        for name, text in (("cpds", cpds_text), ("bp", bp_text)):
            if text is not None and (not isinstance(text, str) or not text.strip()):
                raise ServiceError(f"'{name}' must be a non-empty text field")
        bp_init = payload.get("init")
        if bp_init is not None and not isinstance(bp_init, dict):
            raise ServiceError("'init' must be a JSON object of variable values")
        try:
            return cls(
                cpds_text=cpds_text,
                bp_text=bp_text,
                bp_init=bp_init,
                property_spec=payload.get("property"),
                engine=payload.get("engine", "auto"),
                max_rounds=int(payload.get("max_rounds", 30)),
                max_states_per_context=int(
                    payload.get("max_states_per_context", DEFAULT_STATE_LIMIT)
                ),
            )
        except (TypeError, ValueError) as bad:
            raise ServiceError(f"malformed request field: {bad}") from bad


class AnalysisService:
    """Transport-independent service core (see the module docstring)."""

    def __init__(
        self,
        store: AnalysisStore,
        *,
        workers: int = 2,
        jobs: int = 1,
        executor: str = "thread",
    ) -> None:
        if executor not in EXECUTOR_MODES:
            raise ServiceError(
                f"unknown executor mode {executor!r}; pick one of "
                f"{EXECUTOR_MODES}"
            )
        self.store = store
        if store.on_evict is None:
            # Size pressure sheds the in-process caches through the same
            # path bench's cold-run contract and server shutdown use —
            # minus the leased worker pools: eviction fires from an
            # executor thread while other analyses may be mid-level on a
            # leased pool, and closing one under them would fail valid
            # requests.  Pools are bounded by their own LRU cache and
            # are torn down on :meth:`close`.
            store.on_evict = lambda: clear_runtime_caches(pools=False)
        #: Worker processes per explicit engine's parallel advance
        #: (deployment config, not a request knob; results are
        #: jobs-invariant).
        self.jobs = jobs
        #: Engine-run execution mode (see :data:`EXECUTOR_MODES`).
        self.executor_mode = executor
        self._engine_executor = (
            ProcessAnalysisExecutor(workers=workers)
            if executor == "process"
            else None
        )
        #: Bounded analysis executor — the HTTP layer schedules every
        #: ``run()`` through it, capping concurrent engine work.
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cuba-analysis"
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._cpds_cache: OrderedDict[str, CPDS] = OrderedDict()
        self._closed = False

    # ------------------------------------------------------------------
    # Request resolution
    # ------------------------------------------------------------------
    def prepare(self, request: AnalysisRequest) -> tuple[str, CPDS, Property]:
        """Parse/compile and intern the CPDS, build the property, and
        compute the problem fingerprint.  Raises
        :class:`~repro.errors.CubaError` subclasses on malformed input."""
        compiled_prop: Property | None = None
        if request.cpds_text is not None:
            cpds = parse_cpds(request.cpds_text)
        else:
            from repro.bp.translate import compile_source

            compiled = compile_source(request.bp_text, init=request.bp_init or {})
            cpds = compiled.cpds
            compiled_prop = compiled.prop
        digest = cpds_digest(cpds)
        with self._lock:
            cached = self._cpds_cache.get(digest)
            if cached is not None:
                self._cpds_cache.move_to_end(digest)
                cpds = cached
            else:
                self._cpds_cache[digest] = cpds
                while len(self._cpds_cache) > _CPDS_CACHE_LIMIT:
                    self._cpds_cache.popitem(last=False)
        if request.property_spec is not None or compiled_prop is None:
            prop = parse_property_spec(request.property_spec)
        else:
            prop = compiled_prop
        problem = fingerprint(
            cpds,
            prop,
            {
                "engine": request.engine,
                "max_states_per_context": request.max_states_per_context,
            },
        )
        return problem, cpds, prop

    def run(
        self,
        request: AnalysisRequest,
        prepared: tuple[str, CPDS, Property] | None = None,
        enqueued_at: float | None = None,
    ) -> dict:
        """Resolve one request to a response dict (blocking).

        ``prepared`` optionally carries an earlier :meth:`prepare`
        result for this request, so callers that needed the fingerprint
        up front (the HTTP submit path hands it out as the job id)
        don't parse and hash the program twice.  ``enqueued_at`` is the
        submit-time ``perf_counter`` reading (the HTTP layer passes it),
        so the response's ``queue_seconds`` separates executor queueing
        from engine time.

        This wrapper is the service's observability choke point — it
        runs on the executor thread (not the event loop), so the span
        stack nests per-request even under concurrent submits.  Every
        call (owner, dedup joiner, store hit alike) observes the
        ``service.request`` latency histogram, emits one structured
        audit line, and — when tracing is live — wraps resolution in a
        ``service.request`` span.  Per-request fields (queue_seconds)
        go on a *copy*: the shared future/store response stays
        request-independent."""
        started = time.perf_counter()
        queue_seconds = (
            max(0.0, started - enqueued_at) if enqueued_at is not None else 0.0
        )
        audit_fields: dict = {"lease": None}
        with trace.span("service.request", lane=request.engine) as timing:
            try:
                response = self._resolve(request, prepared, audit_fields)
            except BaseException as failure:
                seconds = time.perf_counter() - started
                LATENCY.observe(
                    "service_request", seconds, lane=request.engine
                )
                audit(
                    lane=request.engine,
                    verdict="error",
                    error=f"{type(failure).__name__}: {failure}",
                    lease=audit_fields["lease"],
                    engine_seconds=None,
                    queue_seconds=round(queue_seconds, 4),
                    total_seconds=round(seconds, 4),
                )
                raise
            seconds = time.perf_counter() - started
            # The resolved lane ("explicit"/"symbolic"/"wuba") — not the
            # request's possibly-"auto" engine spec — labels the span,
            # the per-lane histogram cell, and the audit line.
            lane = response.get("engine") or request.engine
            timing.set(verdict=response.get("verdict"), lane=lane)
        LATENCY.observe("service_request", seconds, lane=lane)
        LATENCY.observe("service_queue", queue_seconds)
        response = dict(response)
        response["queue_seconds"] = round(queue_seconds, 4)
        if response.get("cached"):
            store_outcome = "hit"
        elif response.get("resumed"):
            store_outcome = "resume"
        elif response.get("deduplicated"):
            store_outcome = "dedup"
        else:
            store_outcome = "miss"
        audit(
            fingerprint=response.get("fingerprint"),
            lane=lane,
            requested=request.engine,
            backend=response.get("backend"),
            store=store_outcome,
            resumed=bool(response.get("resumed")),
            cached=bool(response.get("cached")),
            deduplicated=bool(response.get("deduplicated")),
            lease=audit_fields["lease"],
            verdict=response.get("verdict"),
            bound=response.get("bound"),
            engine_seconds=response.get("engine_seconds"),
            queue_seconds=response["queue_seconds"],
            total_seconds=round(seconds, 4),
        )
        return response

    def _resolve(
        self,
        request: AnalysisRequest,
        prepared: tuple[str, CPDS, Property] | None,
        audit_fields: dict,
    ) -> dict:
        problem, cpds, prop = self.prepare(request) if prepared is None else prepared
        while True:
            own_future: Future | None = None
            with self._lock:
                if self._closed:
                    raise ServiceError("service is shut down")
                existing = self._inflight.get(problem)
                if existing is None:
                    own_future = Future()
                    self._inflight[problem] = own_future
            if own_future is None:
                METER.bump("service.dedup_joins")
                response = existing.result()
                if self._satisfies(response, request):
                    return response | {"deduplicated": True}
                continue  # joined run was shallower; resume from its snapshot
            # Owner path.  The store probe runs OUTSIDE the service lock
            # (sqlite I/O must not serialize unrelated submits behind
            # this problem); registering first keeps the one-run
            # invariant — concurrent identical submits join the future
            # and are answered below whether it resolves to a store hit
            # or a fresh run.  One verdict-columns read serves both the
            # hit check and (via has_snapshot) the resume decision —
            # the blob itself is only fetched when resuming.
            try:
                entry = self.store.get(problem, include_snapshot=False)
                if (
                    entry is not None
                    and entry.result is not None
                    and self._satisfies(entry.result, request)
                ):
                    METER.bump("service.store_hits")
                    response = entry.result | {"cached": True}
                else:
                    response = self._analyze(
                        problem, cpds, prop, request, entry, audit_fields
                    )
            except BaseException as failure:
                with self._lock:
                    self._inflight.pop(problem, None)
                own_future.set_exception(failure)
                # The future may never be awaited by a joiner; don't let
                # its destructor warn about the unconsumed exception.
                own_future.exception()
                raise
            with self._lock:
                self._inflight.pop(problem, None)
            own_future.set_result(response)
            return response

    def _satisfies(self, response: dict, request: AnalysisRequest) -> bool:
        """Does an existing outcome answer this request?  Conclusive and
        non-resumable (diverged) outcomes always do; an inconclusive one
        only when it explored at least the requested budget."""
        if response.get("final"):
            return True
        return response.get("bound", -1) >= request.max_rounds

    # ------------------------------------------------------------------
    # The engine run
    # ------------------------------------------------------------------
    def _stored_snapshot(self, problem: str, entry) -> bytes | None:
        """The stored snapshot blob for ``problem``, or ``None`` when
        there is nothing to resume from.  ``entry`` is the
        verdict-columns row ``run()`` already fetched; the blob is read
        only when it signals a snapshot exists."""
        if entry is None or not entry.has_snapshot:
            return None
        entry = self.store.get(problem)
        if entry is None:
            return None
        return entry.snapshot

    def _analyze(
        self,
        problem: str,
        cpds: CPDS,
        prop: Property,
        request: AnalysisRequest,
        entry=None,
        audit_fields: dict | None = None,
    ) -> dict:
        """One engine run through the configured executor.  The job is
        self-contained (CPDS + property + budget + the stored snapshot
        as the resume message); dedup accounting, the store write, and
        snapshot-reply validation stay parent-side
        (:mod:`repro.service.executor`).

        When the run resumes from a stored blob, a lease row pins that
        blob for the duration (acquired *before* the blob is fetched,
        released after the result is recorded): with N replicas sharing
        one store, a peer's LRU eviction must never free a snapshot
        this replica is mid-resume on — and if this replica crashes,
        the lease simply expires (``lease_ttl``) instead of wedging
        eviction forever."""
        METER.bump("service.engine_runs")
        lease = None
        if entry is not None and entry.has_snapshot:
            lease = self.store.acquire_lease(problem)
            if audit_fields is not None:
                audit_fields["lease"] = (
                    "acquired" if lease is not None else "unavailable"
                )
        try:
            job = EngineJob(
                cpds=cpds,
                prop=prop,
                problem=problem,
                engine=request.engine,
                max_rounds=request.max_rounds,
                max_states_per_context=request.max_states_per_context,
                jobs=self.jobs,
                snapshot=self._stored_snapshot(problem, entry),
                config=EngineConfig(jobs=self.jobs),
            )
            if self._engine_executor is None:
                outcome = execute_job(job)
            else:
                outcome = self._engine_executor.run(job)
            response = outcome.response
            self.store.record(
                problem,
                {key: value for key, value in response.items() if key != "resumed"},
                bound=outcome.bound,
                engine=outcome.kind,
                snapshot=outcome.snapshot,
            )
        finally:
            self.store.release_lease(problem, lease)
        return response

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the executor, flush and close the store, and clear the
        process-global runtime caches (canonical memo, Hopcroft
        pre-cache, leased worker pools) — the same cleanup the bench
        runner's cold-run contract performs, so a stopped daemon leaves
        no pooled worker processes behind."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.executor.shutdown(wait=True, cancel_futures=False)
        if self._engine_executor is not None:
            self._engine_executor.close()
        self.store.close()
        clear_runtime_caches()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
_METER_WINDOW_PREFIXES = (
    "service.", "snapshot.", "store.",
    # Every registered lane's work counters (explicit./symbolic./wuba.).
    *(registry.engine_class(name).meter_prefix for name in registry.lane_names()),
)

#: Settled /status history kept per server (running jobs never count
#: against it).
_JOB_HISTORY_LIMIT = 256

#: Hard caps on an HTTP request.  Every other resource the server
#: holds is bounded (executor, job history, CPDS cache, pool cache,
#: store size); neither the client's Content-Length nor an endless
#: header stream may be the one untrusted input that can exhaust
#: memory.  64 MB dwarfs any real program text; 16 KB dwarfs any real
#: header section.
MAX_REQUEST_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 16 * 1024

#: The fixed route table, used to bound the ``http.request`` histogram's
#: route label (unknown paths all collapse into ``other``).
_ROUTES = frozenset(
    {"/submit", "/status", "/result", "/health", "/meter", "/metrics",
     "/trace", "/shutdown"}
)


class ServiceServer:
    """Minimal asyncio HTTP/1.1 front for an :class:`AnalysisService`."""

    def __init__(
        self, service: AnalysisService, host: str = "127.0.0.1", port: int = 8765
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._closing: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        #: fingerprint -> job record for async submits and /status —
        #: bounded LRU: finished verdicts live in the store, so settled
        #: records are only kept as a recent-history convenience and a
        #: long-lived daemon must not accumulate one per fingerprint
        #: ever submitted.
        self._jobs: OrderedDict[str, dict] = OrderedDict()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown request, then tear down gracefully:
        stop accepting, drain in-flight analyses, flush the store, shut
        the leased pools (via the shared cache cleanup)."""
        assert self._closing is not None
        await self._closing.wait()
        self._server.close()
        await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(None, self.service.close)

    def run(self) -> None:
        """Synchronous convenience used by ``cuba serve``."""

        async def main() -> None:
            await self.start()
            _log.info(
                "cuba service listening",
                extra={
                    "fields": {"url": f"http://{self.host}:{self.port}"}
                },
            )
            await self.serve_until_shutdown()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:  # graceful Ctrl-C
            self.service.close()

    def request_shutdown(self) -> None:
        """Trigger graceful shutdown; safe to call from any thread (the
        asyncio event is set on the server's own loop)."""
        if self._closing is None or self._loop is None:
            return
        if self._loop.is_closed():  # already torn down
            return
        self._loop.call_soon_threadsafe(self._closing.set)

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        started = time.perf_counter()
        method = path = None
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            status, payload = await self._route(method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except CubaError as refused:
            status, payload = 400, {"error": str(refused)}
        except Exception as crashed:  # noqa: BLE001 - server must answer
            status, payload = 500, {"error": f"{type(crashed).__name__}: {crashed}"}
            _log.error(
                "request handler crashed",
                extra={
                    "fields": {
                        "method": method,
                        "path": path,
                        "error": payload["error"],
                    }
                },
            )
        if path is not None:
            # Route label from the fixed route table only — an arbitrary
            # 404 path must not mint unbounded histogram label values.
            route = path if path in _ROUTES else "other"
            LATENCY.observe(
                "http_request",
                time.perf_counter() - started,
                route=route,
                status=status,
            )
        try:
            await self._respond(writer, status, payload)
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError as bad:
            raise ServiceError(f"malformed request line {line!r}") from bad
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(header)
            if header_bytes > MAX_HEADER_BYTES:
                raise ServiceError(
                    f"request header section exceeds the "
                    f"{MAX_HEADER_BYTES}-byte limit"
                )
            name, _sep, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as bad:
            raise ServiceError("malformed Content-Length header") from bad
        if length < 0 or length > MAX_REQUEST_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_REQUEST_BYTES}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {
            name: values[-1] for name, values in parse_qs(parts.query).items()
        }
        return method.upper(), parts.path, query, body

    @staticmethod
    async def _respond(writer, status: int, payload) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 500: "Internal Server Error"}
        if isinstance(payload, str):  # /metrics Prometheus exposition
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        writer.write(
            (
                f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()

    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str, query: dict, body: bytes):
        if method == "POST" and path == "/submit":
            return await self._submit(body)
        if method == "GET" and path == "/status":
            return await self._off_loop(self._status, query.get("id"))
        if method == "GET" and path == "/result":
            return await self._off_loop(self._result, query.get("id"))
        if method == "GET" and path == "/health":
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job["status"]] = by_status.get(job["status"], 0) + 1
            stats = await self._off_loop(self.service.store.stats)
            return 200, {
                "status": "ok",
                "jobs": by_status,
                "store": stats,
                # Degraded = serving store-less (read-only store dir at
                # startup): verdicts are correct but nothing is cached.
                "store_degraded": bool(
                    getattr(self.service.store, "degraded", False)
                ),
            }
        if method == "GET" and path == "/meter":
            return 200, {
                name: value
                for name, value in METER.snapshot().items()
                if name.startswith(_METER_WINDOW_PREFIXES)
            }
        if method == "GET" and path == "/metrics":
            # Prometheus text exposition: every METER counter plus the
            # latency histograms (str payload ⇒ text/plain content type).
            return 200, render()
        if method == "GET" and path == "/trace":
            return 200, trace.chrome_trace()
        if method == "POST" and path == "/trace":
            try:
                payload = json.loads(body or b"{}")
            except ValueError as bad:
                raise ServiceError(f"trace body is not JSON: {bad}") from bad
            if not isinstance(payload, dict):
                raise ServiceError("trace body must be a JSON object")
            if "enabled" in payload:
                if payload["enabled"]:
                    trace.clear()
                    trace.enable()
                else:
                    trace.disable()
            return 200, {
                "tracing": trace.enabled(),
                "events": len(trace.events()),
            }
        if method == "POST" and path == "/shutdown":
            self.request_shutdown()
            return 200, {"status": "shutting down"}
        return 404, {"error": f"no route {method} {path}"}

    @staticmethod
    async def _off_loop(fn, *args):
        """Run a store-touching handler on the loop's default executor:
        sqlite reads contend the store lock, and a worker thread inside
        a large snapshot-blob transaction must not stall the event loop
        (which would stop the server answering *every* connection,
        /shutdown included).  The default executor — not the bounded
        analysis executor — so polls cannot be starved by long runs."""
        return await asyncio.get_running_loop().run_in_executor(
            None, lambda: fn(*args)
        )

    async def _submit(self, body: bytes):
        try:
            payload = json.loads(body or b"{}")
        except ValueError as bad:
            raise ServiceError(f"submit body is not JSON: {bad}") from bad
        request = AnalysisRequest.from_payload(payload)
        wait = bool(payload.get("wait", True))
        loop = asyncio.get_running_loop()
        prepared = await loop.run_in_executor(
            self.service.executor, self.service.prepare, request
        )
        problem = prepared[0]
        job = self._record_job(problem)
        task = loop.run_in_executor(
            self.service.executor,
            self.service.run,
            request,
            prepared,
            time.perf_counter(),  # enqueued_at: queue wait starts here
        )
        job["status"] = "running"

        async def finish() -> dict:
            try:
                response = await task
            except BaseException as failure:
                # Record EVERY failure mode on the job — a polling
                # client must see "failed", never a forever-"running".
                job["status"] = "failed"
                job["error"] = f"{type(failure).__name__}: {failure}"
                raise
            job["status"] = "done"
            job["response"] = response
            return response

        if wait:
            return 200, await finish()
        asyncio.ensure_future(self._swallow(finish(), problem))
        return 202, {"id": problem, "status": job["status"]}

    def _record_job(self, problem: str) -> dict:
        job = self._jobs.get(problem)
        if job is None:
            job = {"status": "queued", "response": None, "error": None}
            self._jobs[problem] = job
        else:
            # Clear the previous run's outcome: a poller must never be
            # handed the stale shallower response while a deeper
            # re-submission is in flight.
            job.update(status="queued", error=None, response=None)
            self._jobs.move_to_end(problem)
        # Evict the oldest *settled* records past the bound; running
        # jobs are never dropped (their status must stay pollable).
        settled = [
            key
            for key, record in self._jobs.items()
            if record["status"] in ("done", "failed")
        ]
        for key in settled[: max(0, len(self._jobs) - _JOB_HISTORY_LIMIT)]:
            del self._jobs[key]
        return job

    @staticmethod
    async def _swallow(awaitable, problem: str) -> None:
        try:
            await awaitable
        except Exception as failure:
            # Recorded on the job and surfaced via /status and /result —
            # but never silently: a swallowed async failure still logs
            # its fingerprint so operators can find it.
            _log.warning(
                "async submit failed",
                extra={
                    "fields": {
                        "fingerprint": problem,
                        "error": f"{type(failure).__name__}: {failure}",
                    }
                },
            )

    def _status(self, problem: str | None):
        if problem is None:
            return 400, {"error": "missing ?id=<fingerprint>"}
        job = self._jobs.get(problem)
        if job is None:
            entry = self.service.store.get(problem, include_snapshot=False)
            if entry is not None and entry.result is not None:
                return 200, {"id": problem, "status": "done"}
            return 404, {"id": problem, "status": "unknown"}
        payload = {
            "id": problem, "status": job["status"], "error": job["error"]
        }
        if job["response"] is not None:
            # Server-truth timing split for finished jobs: engine
            # compute vs executor queue wait (both also in the audit
            # line and the /result response).
            payload["engine_seconds"] = job["response"].get("engine_seconds")
            payload["queue_seconds"] = job["response"].get("queue_seconds")
        return 200, payload

    def _result(self, problem: str | None):
        if problem is None:
            return 400, {"error": "missing ?id=<fingerprint>"}
        job = self._jobs.get(problem)
        if job is not None and job["response"] is not None:
            return 200, job["response"]
        if job is not None and job["status"] in ("queued", "running"):
            return 202, {"id": problem, "status": job["status"]}
        if job is not None and job["status"] == "failed":
            return 500, {
                "id": problem,
                "status": "failed",
                "error": job["error"],
            }
        # Poll handlers run on the event loop thread: read the verdict
        # columns only, never the snapshot blob.
        entry = self.service.store.get(problem, include_snapshot=False)
        if entry is not None and entry.result is not None:
            return 200, entry.result | {"cached": True}
        return 404, {"id": problem, "status": "unknown"}
