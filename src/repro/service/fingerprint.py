"""Content-addressed fingerprints of analysis problems.

The persistent store (:mod:`repro.service.store`) keys everything by a
stable identity of the *problem*: the CPDS, the property, and the
engine configuration that affects results.  The fingerprint must
satisfy two properties the obvious ``sha256(repr(cpds))`` does not:

* **Semantically identical inputs collide.**  Rule insertion order,
  rule labels (excluded from :class:`~repro.pds.action.Action`
  equality), and the builder that produced the object are all
  irrelevant to the analysis; the fingerprint canonicalizes them away
  by interning every shared state and stack symbol to a dense id in a
  *canonical local order* and hashing the sorted id-encoded rule set —
  the same dense-id idea as
  :class:`~repro.automata.intern.SymbolTable`, but anchored to the
  process-independent fallback key ``(type qualname, repr)`` instead of
  the process-global intern order (which depends on what else the
  process interned first, and a persistent store must survive
  restarts).
* **Config changes don't.**  The engine lane (the *canonical* registry
  name, see :func:`repro.reach.registry.canonical_lane` — aliases must
  collide) and divergence-guard limit change what a stored
  verdict/snapshot means, so they are part of the key.  Execution knobs
  that provably do not affect results (``jobs``, ``batched``,
  ``shard_replay``, ``backend`` — differentially tested elsewhere) are
  *not* included; the service strips them before calling in.

Model values (shared states, stack symbols) are identified by
``(type qualname, repr)``; every in-tree model uses ints and strings,
whose reprs are deterministic.  A custom value type with an
address-dependent repr would need a stable ``__repr__`` to be
fingerprintable — the same contract the seed's symbol ordering already
imposed.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping

from repro.automata.intern import _fallback_key
from repro.core.property import Property
from repro.cpds.cpds import CPDS
from repro.errors import FingerprintError

#: Bumped whenever the canonical serialization below changes shape (or
#: the meaning of a config token — version 2: the ``engine`` token is
#: the registry's canonical lane name); part of the hashed payload, so
#: old store entries simply miss.
FINGERPRINT_VERSION = 2


def _value_token(value) -> tuple[str, str]:
    """Process-independent identity of one model value."""
    return _fallback_key(value)


def _canonical_ids(values) -> tuple[list, dict]:
    """Order ``values`` by the fallback key and hand out dense ids:
    the fingerprint's own local symbol table."""
    ordered = sorted(values, key=_fallback_key)
    return ordered, {value: index for index, value in enumerate(ordered)}


def _cpds_structure(cpds: CPDS) -> tuple:
    """The CPDS as a nested tuple of ints and value tokens, invariant
    under rule order, rule labels, and construction history."""
    shared_order, shared_ids = _canonical_ids(cpds.shared_states)
    threads = []
    for index, pds in enumerate(cpds.threads):
        symbol_order, symbol_ids = _canonical_ids(pds.alphabet)
        rules = sorted(
            (
                shared_ids[action.from_shared],
                tuple(symbol_ids[symbol] for symbol in action.read),
                shared_ids[action.to_shared],
                tuple(symbol_ids[symbol] for symbol in action.write),
            )
            for action in pds.actions
        )
        threads.append(
            (
                tuple(map(_value_token, symbol_order)),
                tuple(symbol_ids[symbol] for symbol in cpds.initial_stacks[index]),
                tuple(rules),
            )
        )
    return (
        tuple(map(_value_token, shared_order)),
        shared_ids[cpds.initial_shared],
        tuple(threads),
    )


def _config_structure(config: Mapping | None) -> tuple:
    if not config:
        return ()
    items = []
    for key in sorted(config):
        value = config[key]
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise FingerprintError(
                f"config value for {key!r} is not a scalar: {value!r}"
            )
        items.append((str(key), type(value).__qualname__, repr(value)))
    return tuple(items)


def _digest(structure: tuple) -> str:
    return hashlib.sha256(repr(structure).encode()).hexdigest()


def cpds_digest(cpds: CPDS) -> str:
    """Content digest of the CPDS alone (no property, no config) — the
    service's key for sharing one parsed CPDS object (and therefore one
    leased worker pool) across requests that differ only in property or
    budget."""
    return _digest(("cuba-cpds", FINGERPRINT_VERSION, _cpds_structure(cpds)))


def fingerprint(
    cpds: CPDS, prop: Property | None = None, config: Mapping | None = None
) -> str:
    """The content-addressed identity of ``(cpds, prop, config)`` as a
    sha256 hex digest.

    Raises :class:`~repro.errors.FingerprintError` for properties that
    cannot declare their semantics (see
    :meth:`~repro.core.property.Property.fingerprint_token`) and for
    non-scalar config values.
    """
    return _digest(
        (
            "cuba-fp",
            FINGERPRINT_VERSION,
            _cpds_structure(cpds),
            prop.fingerprint_token() if prop is not None else None,
            _config_structure(config),
        )
    )
