"""Stdlib HTTP client for the analysis service (``cuba submit``).

Synchronous and dependency-free: each call opens one
:class:`http.client.HTTPConnection` (the server answers
connection-per-request), sends JSON, and returns the decoded response
dict.  Non-2xx responses raise :class:`~repro.errors.ServiceError`
carrying the server's error message.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

from repro.errors import ServiceError


class ServiceClient:
    """Talk to a running ``cuba serve`` instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError as bad:
                raise ServiceError(
                    f"service answered non-JSON ({response.status}): {raw[:200]!r}"
                ) from bad
            return response.status, decoded
        except OSError as unreachable:
            raise ServiceError(
                f"cannot reach cuba service at {self.host}:{self.port}: "
                f"{unreachable}"
            ) from unreachable
        finally:
            connection.close()

    def _checked(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, decoded = self._request(method, path, payload)
        if status >= 400:
            raise ServiceError(
                decoded.get("error", f"service error (HTTP {status})")
            )
        return decoded

    # ------------------------------------------------------------------
    def submit(
        self,
        cpds_text: str | None = None,
        *,
        bp_text: str | None = None,
        bp_init: dict | None = None,
        property_spec: str | None = None,
        engine: str = "auto",
        max_rounds: int = 30,
        wait: bool = True,
    ) -> dict:
        """Submit one analysis — a textual CPDS (``cpds_text``) or a
        concurrent Boolean program (``bp_text``, compiled server-side).
        With ``wait=True`` (default) blocks for the final response;
        otherwise returns ``{"id", "status"}`` immediately — poll
        :meth:`status`/:meth:`result`."""
        payload: dict = {
            "property": property_spec,
            "engine": engine,
            "max_rounds": max_rounds,
            "wait": wait,
        }
        if cpds_text is not None:
            payload["cpds"] = cpds_text
        if bp_text is not None:
            payload["bp"] = bp_text
        if bp_init is not None:
            payload["init"] = bp_init
        return self._checked("POST", "/submit", payload)

    def status(self, problem_id: str) -> dict:
        return self._checked("GET", f"/status?id={problem_id}")

    def result(self, problem_id: str) -> dict | None:
        """The finished response, or ``None`` while still running."""
        status, decoded = self._request("GET", f"/result?id={problem_id}")
        if status == 202:
            return None
        if status >= 400:
            raise ServiceError(
                decoded.get("error", f"service error (HTTP {status})")
            )
        return decoded

    def health(self) -> dict:
        return self._checked("GET", "/health")

    def meter(self) -> dict:
        """The server's service/snapshot/engine METER window — how the
        smoke harness proves claims like "two concurrent identical
        submissions ran one engine"."""
        return self._checked("GET", "/meter")

    def shutdown(self) -> dict:
        """Ask the server to shut down gracefully (flush store, drain
        executor, release leased worker pools)."""
        return self._checked("POST", "/shutdown")
