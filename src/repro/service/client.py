"""Stdlib HTTP client for the analysis service (``cuba submit``).

Synchronous and dependency-free: each call opens one
:class:`http.client.HTTPConnection` (the server answers
connection-per-request), sends JSON, and returns the decoded response
dict.  Non-2xx responses raise :class:`~repro.errors.ServiceError`
carrying the server's error message.

Multi-replica operation (PR 7):

* **Fingerprint-affinity routing** — the client takes a *list* of
  replicas and routes every request over a consistent-hash ring
  (:class:`_HashRing`).  Submits hash a canonical form of the problem
  payload (program text + property + engine — the same ingredients as
  the server-side fingerprint, minus the anytime ``max_rounds`` knob),
  so identical submissions always land on the same replica and its
  in-flight dedup, warm CPDS intern cache, and snapshot store stay
  hot.  Status/result polls prefer the replica that accepted the
  submit (tracked per returned fingerprint) and fall back to ring
  order — any replica can answer a settled job from the shared store.
* **Retry/backoff** — :class:`RetryPolicy` gives every call separate
  connect/read timeouts and bounded retries with exponential backoff +
  jitter.  Only *idempotent* calls retry: all GETs, and ``/submit`` —
  resubmitting an identical problem is safe by the service's dedup
  design (same fingerprint ⇒ joined run or store hit, never a second
  engine run).  ``/shutdown`` never retries.
* **Failover** — a connect/timeout error moves to the next replica on
  the ring immediately; backoff sleeps only once the whole ring has
  been tried.  ``client.stats`` (and METER ``client.*``) count
  requests, retries, failovers, and exhausted failures for the
  loadtest harness.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.client import HTTPConnection

from repro.errors import ServiceError
from repro.util.meter import METER

#: Remembered submit→replica affinities (poll routing); bounded so a
#: long-lived client cannot grow one entry per problem ever submitted.
_AFFINITY_LIMIT = 1024


@dataclass(frozen=True)
class RetryPolicy:
    """Per-call network discipline.

    ``retries`` counts *additional* attempts after the first;
    ``backoff`` doubles per ring wrap up to ``backoff_cap`` and is
    jittered ±50% so N clients retrying a blip don't stampede in
    lockstep."""

    connect_timeout: float = 5.0
    read_timeout: float = 600.0
    retries: int = 2
    backoff: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.connect_timeout <= 0 or self.read_timeout <= 0:
            raise ValueError("timeouts must be positive")


def _hash(value: str) -> int:
    return int.from_bytes(hashlib.sha256(value.encode()).digest()[:8], "big")


class _HashRing:
    """Consistent-hash ring over replica indices.

    Each replica owns ``points`` pseudo-random ring positions; a key is
    served by the first point clockwise from its hash.  Adding or
    removing one replica only remaps the keys that replica owned —
    which is exactly what keeps dedup and snapshot reuse hot across
    deployment resizes."""

    def __init__(self, replicas, points: int = 64) -> None:
        self._count = len(replicas)
        self._points = sorted(
            (_hash(f"{host}:{port}#{index}#{point}"), index)
            for index, (host, port) in enumerate(replicas)
            for point in range(points)
        )

    def ordered(self, key: str) -> list[int]:
        """Every replica index, affinity-first: the key's home replica,
        then the failover successors in ring order."""
        if self._count <= 1:
            return list(range(self._count))
        start = bisect.bisect_left(self._points, (_hash(key), -1))
        order: list[int] = []
        seen: set[int] = set()
        for offset in range(len(self._points)):
            _, index = self._points[(start + offset) % len(self._points)]
            if index not in seen:
                seen.add(index)
                order.append(index)
                if len(order) == self._count:
                    break
        return order


def _parse_replica(spec) -> tuple[str, int]:
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return str(spec[0]), int(spec[1])
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host:
        raise ServiceError(f"cannot parse replica {spec!r}; use host:port")
    try:
        return host, int(port)
    except ValueError as bad:
        raise ServiceError(f"cannot parse replica port in {spec!r}") from bad


class ServiceClient:
    """Talk to one — or a consistent-hash ring of — ``cuba serve``
    replicas (see the module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float | None = None,
        *,
        replicas=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if replicas:
            self.replicas = [_parse_replica(spec) for spec in replicas]
        else:
            self.replicas = [(host, port)]
        # Back-compat single-replica attributes.
        self.host, self.port = self.replicas[0]
        if retry is None:
            retry = (
                RetryPolicy()
                if timeout is None
                else RetryPolicy(read_timeout=timeout)
            )
        self.retry = retry
        self._ring = _HashRing(self.replicas)
        self._stats_lock = threading.Lock()
        self.stats = {
            "requests": 0, "retries": 0, "failovers": 0, "failures": 0,
        }
        #: fingerprint -> replica index that accepted its submit.
        self._affinity: OrderedDict[str, int] = OrderedDict()

    # ------------------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[name] += amount
        METER.bump(f"client.{name}", amount)

    def stats_snapshot(self) -> dict:
        with self._stats_lock:
            return dict(self.stats)

    def _remember_affinity(self, problem: str, replica: int) -> None:
        with self._stats_lock:
            self._affinity[problem] = replica
            self._affinity.move_to_end(problem)
            while len(self._affinity) > _AFFINITY_LIMIT:
                self._affinity.popitem(last=False)

    def _candidates(self, key: str | None, prefer: int | None) -> list[int]:
        order = self._ring.ordered(key) if key is not None else list(
            range(len(self.replicas))
        )
        if prefer is not None and prefer in order:
            order.remove(prefer)
            order.insert(0, prefer)
        return order

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        **route,
    ) -> tuple[int, dict]:
        """Back-compat 2-tuple surface over :meth:`_dispatch`."""
        status, decoded, _target = self._dispatch(method, path, payload, **route)
        return status, decoded

    def _dispatch(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        key: str | None = None,
        replica: int | None = None,
        idempotent: bool = True,
    ) -> tuple[int, dict, int]:
        """One logical request: route by ``key`` (consistent hash, or
        an explicit ``replica`` index), fail over across the ring on
        connect/timeout errors, and — for idempotent calls — retry with
        exponential backoff + jitter until the policy is exhausted."""
        self._bump("requests")
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        if replica is not None:
            candidates = [replica]
        else:
            prefer = None
            if key is not None:
                with self._stats_lock:
                    prefer = self._affinity.get(key)
            candidates = self._candidates(key, prefer)
        attempts = (self.retry.retries + 1) if idempotent else 1
        delay = self.retry.backoff
        errors: list[str] = []
        previous_target: int | None = None
        for attempt in range(attempts):
            target = candidates[attempt % len(candidates)]
            if attempt:
                self._bump("retries")
                if target != previous_target:
                    self._bump("failovers")
                if attempt % len(candidates) == 0:
                    # The whole ring failed once: back off before the
                    # next lap instead of hammering dead replicas.
                    time.sleep(
                        min(delay, self.retry.backoff_cap)
                        * (0.5 + random.random())
                    )
                    delay = min(delay * 2, self.retry.backoff_cap)
            previous_target = target
            host, port = self.replicas[target]
            connection = HTTPConnection(
                host, port, timeout=self.retry.connect_timeout
            )
            try:
                # Explicit connect so the connect budget and the read
                # budget are separate knobs: a refused replica fails in
                # connect_timeout, a slow analysis may stream for
                # read_timeout.
                connection.connect()
                if connection.sock is not None:
                    connection.sock.settimeout(self.retry.read_timeout)
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                try:
                    decoded = json.loads(raw) if raw else {}
                except ValueError as bad:
                    raise ServiceError(
                        f"service answered non-JSON ({response.status}): "
                        f"{raw[:200]!r}"
                    ) from bad
                return response.status, decoded, target
            except OSError as unreachable:
                errors.append(f"{host}:{port}: {unreachable}")
                continue
            finally:
                # Close on EVERY path — success, refusal, timeout — so
                # no error path leaks the connection's socket.
                connection.close()
        self._bump("failures")
        raise ServiceError(
            f"cannot reach any cuba service replica after {attempts} "
            f"attempt(s): " + "; ".join(errors[-len(self.replicas):])
        )

    def _checked(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        **route,
    ) -> dict:
        status, decoded, _target = self._dispatch(method, path, payload, **route)
        if status >= 400:
            raise ServiceError(
                decoded.get("error", f"service error (HTTP {status})")
            )
        return decoded

    # ------------------------------------------------------------------
    @staticmethod
    def _routing_key(payload: dict) -> str:
        """The affinity key of a submit: canonical JSON over the
        problem-identity fields only.  ``max_rounds`` (the anytime
        budget) and ``wait`` are deliberately excluded — a deeper
        resubmission must land on the replica holding the snapshot."""
        identity = {
            name: payload.get(name)
            for name in ("cpds", "bp", "init", "property", "engine")
        }
        return json.dumps(identity, sort_keys=True)

    def submit(
        self,
        cpds_text: str | None = None,
        *,
        bp_text: str | None = None,
        bp_init: dict | None = None,
        property_spec: str | None = None,
        engine: str = "auto",
        max_rounds: int = 30,
        wait: bool = True,
        replica: int | None = None,
    ) -> dict:
        """Submit one analysis — a textual CPDS (``cpds_text``) or a
        concurrent Boolean program (``bp_text``, compiled server-side).
        With ``wait=True`` (default) blocks for the final response;
        otherwise returns ``{"id", "status"}`` immediately — poll
        :meth:`status`/:meth:`result`.  Safe to retry: identical
        submissions dedup onto one engine run server-side."""
        payload: dict = {
            "property": property_spec,
            "engine": engine,
            "max_rounds": max_rounds,
            "wait": wait,
        }
        if cpds_text is not None:
            payload["cpds"] = cpds_text
        if bp_text is not None:
            payload["bp"] = bp_text
        if bp_init is not None:
            payload["init"] = bp_init
        status, decoded, target = self._dispatch(
            "POST",
            "/submit",
            payload,
            key=self._routing_key(payload),
            replica=replica,
        )
        if status >= 400:
            raise ServiceError(
                decoded.get("error", f"service error (HTTP {status})")
            )
        problem = decoded.get("fingerprint") or decoded.get("id")
        if problem:
            self._remember_affinity(problem, target)
        return decoded

    def status(self, problem_id: str) -> dict:
        return self._checked("GET", f"/status?id={problem_id}", key=problem_id)

    def result(self, problem_id: str) -> dict | None:
        """The finished response, or ``None`` while still running."""
        status, decoded, _target = self._dispatch(
            "GET", f"/result?id={problem_id}", key=problem_id
        )
        if status == 202:
            return None
        if status >= 400:
            raise ServiceError(
                decoded.get("error", f"service error (HTTP {status})")
            )
        return decoded

    def health(self, replica: int | None = None) -> dict:
        return self._checked("GET", "/health", replica=replica)

    def meter(self, replica: int | None = None) -> dict:
        """The server's service/snapshot/engine METER window — how the
        smoke harness proves claims like "two concurrent identical
        submissions ran one engine"."""
        return self._checked("GET", "/meter", replica=replica)

    def metrics(self, replica: int | None = None) -> str:
        """The raw ``/metrics`` Prometheus text exposition of one
        replica.  The only non-JSON endpoint, so it bypasses
        :meth:`_dispatch`'s JSON decode: one plain GET against the
        chosen replica (default: the first), no retry/failover — a
        scrape is best-effort by nature."""
        host, port = self.replicas[replica if replica is not None else 0]
        connection = HTTPConnection(
            host, port, timeout=self.retry.connect_timeout
        )
        try:
            connection.connect()
            if connection.sock is not None:
                connection.sock.settimeout(self.retry.read_timeout)
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServiceError(
                    f"metrics scrape failed (HTTP {response.status}): "
                    f"{raw[:200]!r}"
                )
            return raw.decode("utf-8", errors="replace")
        except OSError as unreachable:
            raise ServiceError(
                f"cannot scrape metrics from {host}:{port}: {unreachable}"
            ) from unreachable
        finally:
            connection.close()

    def shutdown(self, replica: int | None = None) -> dict:
        """Ask replica(s) to shut down gracefully (flush store, drain
        executor, release leased worker pools).  With ``replica=None``
        every replica is asked; the first response is returned.  Never
        retried — shutdown is the one non-idempotent call."""
        if replica is not None:
            return self._checked(
                "POST", "/shutdown", replica=replica, idempotent=False
            )
        first: dict | None = None
        errors: list[ServiceError] = []
        for index in range(len(self.replicas)):
            try:
                response = self._checked(
                    "POST", "/shutdown", replica=index, idempotent=False
                )
            except ServiceError as down:
                errors.append(down)
                continue
            if first is None:
                first = response
        if first is None:
            raise errors[0] if errors else ServiceError("no replicas configured")
        return first
