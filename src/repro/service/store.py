"""Crash-safe persistent analysis store (sqlite, stdlib only).

One row per problem fingerprint (:mod:`repro.service.fingerprint`),
holding the verdict record (JSON) and, for inconclusive runs, the
engine snapshot blob (:mod:`repro.service.snapshot`) that lets a later,
deeper-``k`` request resume instead of starting over.

Layout (``STORE_SCHEMA_VERSION`` 2, tracked via ``PRAGMA
user_version``)::

    analyses(
        fingerprint      TEXT PRIMARY KEY,   -- sha256 hex
        result           TEXT,               -- JSON verdict record
        bound            INTEGER,            -- deepest explored k
        engine           TEXT,               -- lane: explicit|symbolic|auto
        snapshot         BLOB,               -- NULL once conclusive
        snapshot_version INTEGER,
        created          REAL,
        last_used        INTEGER,            -- cross-process LRU clock
        snapshot_bytes   INTEGER
    )
    leases(                                  -- blobs pinned by resuming replicas
        token            TEXT PRIMARY KEY,
        fingerprint      TEXT,
        owner            TEXT,               -- host:pid tag, for debugging
        expires          REAL                -- wall-clock lease deadline
    )
    meta(key TEXT PRIMARY KEY, value INTEGER)  -- 'lru_clock' counter

Robustness contract:

* **Crash safety** — every write commits in its own transaction; WAL
  journaling is enabled best-effort (falls back silently where the
  filesystem refuses).
* **Multi-replica safety** — N daemons may share one store file.  Every
  connection sets ``PRAGMA busy_timeout``, and every transaction is
  additionally routed through a bounded retry-with-jitter loop
  (METER ``store.busy_retries``): ``busy_timeout`` covers plain lock
  waits, the retry loop covers the cases sqlite fails *immediately*
  regardless of timeout (e.g. ``SQLITE_BUSY_SNAPSHOT`` on a
  read-to-write upgrade in WAL mode).  The LRU clock is a monotonic
  counter persisted in the ``meta`` table and bumped inside the same
  write transaction as the row touch, so recency is totally ordered
  *across processes* — an in-process clock would let two replicas hand
  out colliding or regressing ranks.
* **Lease protocol** — a replica about to resume from a snapshot blob
  registers a lease row (:meth:`AnalysisStore.acquire_lease`) and
  releases it once its run has recorded a result.  Eviction never
  frees a blob under a live lease (``store.eviction_lease_skips``
  counts the contention) and reaps *expired* leases first, so a
  crashed replica's lease times out instead of wedging eviction
  forever.
* **Corruption tolerance** — a bad row, an undecodable JSON record, or
  a wholesale-corrupt database file degrade to cache *misses*, never
  to crashes: reads catch :class:`sqlite3.DatabaseError`, and an
  unopenable file is rotated aside to ``<path>.corrupt`` and recreated
  empty.  Busy/locked errors are *never* treated as corruption — a
  contended healthy file must not be rotated away.  (Snapshot blobs are
  validated downstream — the service treats
  :class:`~repro.errors.SnapshotError` as a miss too.)
* **Degraded mode** — when the store location is unusable (read-only
  directory, unwritable file), :func:`open_store` returns a
  :class:`DegradedAnalysisStore`: every read misses, every write drops,
  and ``stats()`` says so — a service must log-and-continue store-less,
  not crash-loop at startup.
* **Schema versioning** — a version mismatch wipes and recreates the
  tables; the store holds only recomputable cache data.
* **Size bounding** — when the summed snapshot bytes exceed
  ``max_snapshot_bytes``, least-recently-used *unleased* snapshots are
  evicted (their verdict rows stay — verdicts are tiny and the
  valuable part).  Eviction fires the ``on_evict`` hook, which the
  analysis server routes to the shared
  :func:`~repro.util.caches.clear_runtime_caches` cleanup — the same
  path the benchmark runner's cold-run contract and server shutdown
  use — so size pressure also sheds the in-process canonical tables
  instead of letting a long-lived daemon accumulate them.  (The server
  excludes the leased worker pools here: they are bounded by their own
  LRU cache, and closing one mid-eviction would break analyses running
  on it; pools are released on server shutdown.)

All methods are thread-safe (one connection guarded by a lock): the
server's bounded executor calls in from worker threads.
"""

from __future__ import annotations

import json
import os
import random
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs import trace
from repro.obs.metrics import LATENCY
from repro.util.meter import METER

STORE_SCHEMA_VERSION = 2

#: Default snapshot budget: plenty for thousands of registry-sized
#: snapshots while keeping a runaway daemon's disk use bounded.
DEFAULT_MAX_SNAPSHOT_BYTES = 64 * 1024 * 1024

#: How long sqlite itself waits on a locked database before surfacing
#: SQLITE_BUSY (``PRAGMA busy_timeout``, seconds).
DEFAULT_BUSY_TIMEOUT = 5.0

#: Bounded-retry attempts layered on top of ``busy_timeout`` for the
#: error shapes sqlite returns immediately (snapshot-upgrade busy).
DEFAULT_BUSY_RETRIES = 6

#: A crashed replica's lease survives at most this long (seconds)
#: before eviction reaps it; live replicas release far sooner.
DEFAULT_LEASE_TTL = 300.0

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS analyses (
        fingerprint      TEXT PRIMARY KEY,
        result           TEXT,
        bound            INTEGER NOT NULL DEFAULT 0,
        engine           TEXT,
        snapshot         BLOB,
        snapshot_version INTEGER,
        created          REAL NOT NULL,
        last_used        INTEGER NOT NULL,
        snapshot_bytes   INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS leases (
        token       TEXT PRIMARY KEY,
        fingerprint TEXT NOT NULL,
        owner       TEXT NOT NULL,
        expires     REAL NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS leases_by_fingerprint ON leases(fingerprint)",
    "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value INTEGER)",
    "INSERT OR IGNORE INTO meta (key, value) VALUES ('lru_clock', 0)",
)

#: sqlite message fragments that mean "contended", not "broken".
_BUSY_MARKERS = ("locked", "busy")


def _is_busy(error: BaseException) -> bool:
    """Is this the retryable lock-contention flavor of OperationalError?"""
    return isinstance(error, sqlite3.OperationalError) and any(
        marker in str(error).lower() for marker in _BUSY_MARKERS
    )


def _owner_tag() -> str:
    try:
        host = socket.gethostname()
    except OSError:  # pragma: no cover - exotic platforms
        host = "unknown"
    return f"{host}:{os.getpid()}"


@dataclass(slots=True)
class StoreEntry:
    """One decoded store row.  ``result`` is ``None`` when the stored
    JSON is missing or undecodable (corruption ⇒ miss); ``snapshot`` is
    ``None`` when absent, evicted, written by a different snapshot
    format version, or simply not requested (``include_snapshot=False``
    — check ``has_snapshot`` for existence without the blob
    transfer)."""

    fingerprint: str
    result: dict | None
    bound: int
    engine: str | None
    snapshot: bytes | None
    has_snapshot: bool = False


class AnalysisStore:
    """Disk-backed verdict + snapshot store keyed by fingerprint."""

    #: Real store; :class:`DegradedAnalysisStore` flips this.
    degraded = False

    def __init__(
        self,
        path: str | Path,
        *,
        max_snapshot_bytes: int = DEFAULT_MAX_SNAPSHOT_BYTES,
        on_evict=None,
        busy_timeout: float = DEFAULT_BUSY_TIMEOUT,
        busy_retries: int = DEFAULT_BUSY_RETRIES,
        retry_base: float = 0.01,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        self.path = Path(path)
        self.max_snapshot_bytes = max_snapshot_bytes
        #: Called (once per eviction sweep) after LRU eviction dropped
        #: snapshots; the server wires this to the shared runtime-cache
        #: cleanup (see the module docstring).
        self.on_evict = on_evict
        self.busy_timeout = busy_timeout
        self.busy_retries = busy_retries
        self.retry_base = retry_base
        self.lease_ttl = lease_ttl
        self.owner = _owner_tag()
        self._lock = threading.Lock()
        self._conn = self._open()

    # ------------------------------------------------------------------
    # Busy-retry discipline
    # ------------------------------------------------------------------
    def _busy_retry(self, fn):
        """Run one idempotent transaction closure, retrying the busy
        flavor of :class:`sqlite3.OperationalError` with exponential
        backoff + jitter.  ``PRAGMA busy_timeout`` already makes sqlite
        wait on plain lock conflicts; this loop covers the shapes that
        fail immediately regardless (WAL snapshot-upgrade busy), and
        bounds the total wait so a wedged peer cannot hang a replica
        forever.  Non-busy errors and exhausted retries re-raise — the
        callers' corruption handling takes over."""
        op = getattr(fn, "__name__", "txn")
        start = time.perf_counter()
        with trace.span("store.transaction", op=op) as timing:
            delay = self.retry_base
            try:
                for attempt in range(self.busy_retries + 1):
                    try:
                        return fn()
                    except sqlite3.OperationalError as error:
                        if not _is_busy(error) or attempt == self.busy_retries:
                            raise
                        METER.bump("store.busy_retries")
                        timing.set(retries=attempt + 1)
                        time.sleep(delay * (0.5 + random.random()))
                        delay = min(delay * 2, 0.25)
            finally:
                LATENCY.observe(
                    "store_transaction", time.perf_counter() - start, op=op
                )

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        try:
            return self._busy_retry(self._connect)
        except sqlite3.DatabaseError as error:
            if _is_busy(error):
                # Contended, not corrupt: rotating a healthy file another
                # replica is actively writing would throw its data away.
                raise
            # Wholesale-corrupt file: rotate it aside and start empty —
            # the store only ever holds recomputable cache data, and a
            # service must not crash-loop on a bad cache file.  The WAL
            # sidecars must move with it: an orphaned -wal next to a
            # freshly created empty database would be replayed into it
            # (SQLite's separated-WAL corruption hazard), recorrupting
            # the replacement.
            METER.bump("service.store_corrupt_rotations")
            for suffix in ("", "-wal", "-shm"):
                source = self.path.with_name(self.path.name + suffix)
                target = self.path.with_name(self.path.name + suffix + ".corrupt")
                try:
                    source.replace(target)
                except FileNotFoundError:
                    pass
                except OSError:
                    source.unlink(missing_ok=True)
            return self._busy_retry(self._connect)

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, check_same_thread=False)
        try:
            conn.execute(f"PRAGMA busy_timeout = {int(self.busy_timeout * 1000):d}")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.DatabaseError:  # pragma: no cover - odd filesystems
            pass
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version != STORE_SCHEMA_VERSION:
            with conn:
                for table in ("analyses", "leases", "meta"):
                    conn.execute(f"DROP TABLE IF EXISTS {table}")
                conn.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION:d}")
        with conn:
            for statement in _SCHEMA:
                conn.execute(statement)
        return conn

    def close(self) -> None:
        """Flush and close (idempotent)."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.commit()
                    self._conn.close()
                except sqlite3.DatabaseError:  # pragma: no cover
                    pass
                self._conn = None

    def flush(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.commit()

    def _tick_locked(self) -> int:
        """Next cross-process LRU clock value.  Must run inside a write
        transaction on ``self._conn``: the ``UPDATE`` is an atomic RMW
        inside the database, and the surrounding transaction holds the
        write lock until the row touch commits with it — so two
        replicas can never observe the same tick."""
        self._conn.execute(
            "UPDATE meta SET value = value + 1 WHERE key = 'lru_clock'"
        )
        return self._conn.execute(
            "SELECT value FROM meta WHERE key = 'lru_clock'"
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(
        self, fingerprint: str, *, include_snapshot: bool = True
    ) -> StoreEntry | None:
        """The entry for ``fingerprint`` (bumping its LRU clock), or
        ``None`` on miss — including every corruption mode.

        ``include_snapshot=False`` skips transferring the (potentially
        large) blob: verdict-only consumers — the service's hit check —
        read the cheap columns plus a ``has_snapshot`` flag and fetch
        the blob in a second call only when they actually resume."""
        blob_column = "snapshot" if include_snapshot else "NULL"

        def read():
            return self._conn.execute(
                f"SELECT result, bound, engine, {blob_column},"
                " snapshot_version, snapshot IS NOT NULL "
                "FROM analyses WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()

        def touch():
            # The meta bump comes first so the transaction opens as a
            # writer (honoring busy_timeout) instead of upgrading a
            # read lock mid-way (immediate SQLITE_BUSY in WAL mode).
            with self._conn:
                self._conn.execute(
                    "UPDATE analyses SET last_used = ? WHERE fingerprint = ?",
                    (self._tick_locked(), fingerprint),
                )

        with self._lock:
            if self._conn is None:
                return None
            try:
                row = self._busy_retry(read)
                if row is None:
                    return None
                self._busy_retry(touch)
            except sqlite3.DatabaseError:
                METER.bump("service.store_read_errors")
                return None
        result_json, bound, engine, snapshot, snapshot_version, has_snapshot = row
        result = None
        if result_json is not None:
            try:
                result = json.loads(result_json)
            except (TypeError, ValueError):
                METER.bump("service.store_corrupt_results")
        from repro.service.snapshot import SNAPSHOT_VERSION

        if snapshot_version is not None and snapshot_version != SNAPSHOT_VERSION:
            snapshot = None
            has_snapshot = False
        return StoreEntry(
            fingerprint, result, bound or 0, engine, snapshot, bool(has_snapshot)
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record(
        self,
        fingerprint: str,
        result: dict,
        *,
        bound: int,
        engine: str,
        snapshot: bytes | None = None,
    ) -> None:
        """Upsert the verdict record (and snapshot, when the run was
        inconclusive and resumable) for ``fingerprint``, then enforce
        the snapshot size budget."""
        from repro.service.snapshot import SNAPSHOT_VERSION

        def txn():
            with self._conn:
                self._conn.execute(
                    "INSERT INTO analyses (fingerprint, result, bound, engine,"
                    " snapshot, snapshot_version, created, last_used,"
                    " snapshot_bytes) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT(fingerprint) DO UPDATE SET"
                    " result = excluded.result, bound = excluded.bound,"
                    " engine = excluded.engine, snapshot = excluded.snapshot,"
                    " snapshot_version = excluded.snapshot_version,"
                    " last_used = excluded.last_used,"
                    " snapshot_bytes = excluded.snapshot_bytes",
                    (
                        fingerprint,
                        json.dumps(result, sort_keys=True),
                        bound,
                        engine,
                        snapshot,
                        SNAPSHOT_VERSION if snapshot is not None else None,
                        time.time(),
                        self._tick_locked(),
                        len(snapshot) if snapshot is not None else 0,
                    ),
                )

        with self._lock:
            if self._conn is None:
                return
            try:
                self._busy_retry(txn)
            except sqlite3.DatabaseError:  # pragma: no cover - disk trouble
                METER.bump("service.store_write_errors")
                return
        self._evict_to_budget()

    # ------------------------------------------------------------------
    # Lease protocol
    # ------------------------------------------------------------------
    def acquire_lease(self, fingerprint: str, *, ttl: float | None = None) -> str | None:
        """Pin ``fingerprint``'s snapshot blob against eviction while a
        replica resumes from it.  Returns the lease token to pass to
        :meth:`release_lease`, or ``None`` when the store is closed or
        unwritable (the caller proceeds un-leased — the blob is already
        in memory, a concurrent eviction only costs a future resume).
        Expired peer leases are reaped opportunistically on the way."""
        budget = self.lease_ttl if ttl is None else ttl
        token = f"{self.owner}:{os.urandom(8).hex()}"

        def txn():
            with self._conn:
                now = time.time()
                reaped = self._conn.execute(
                    "DELETE FROM leases WHERE expires <= ?", (now,)
                ).rowcount
                self._conn.execute(
                    "INSERT INTO leases (token, fingerprint, owner, expires)"
                    " VALUES (?, ?, ?, ?)",
                    (token, fingerprint, self.owner, now + budget),
                )
                return reaped

        with self._lock:
            if self._conn is None:
                return None
            try:
                reaped = self._busy_retry(txn)
            except sqlite3.DatabaseError:
                METER.bump("service.store_write_errors")
                return None
        if reaped:
            METER.bump("store.leases_reaped", reaped)
        METER.bump("store.leases_acquired")
        return token

    def release_lease(self, fingerprint: str, token: str | None) -> None:
        """Unpin the blob; idempotent, and a no-op for ``None`` tokens
        (failed acquisition) so callers can release unconditionally."""
        if token is None:
            return

        def txn():
            with self._conn:
                return self._conn.execute(
                    "DELETE FROM leases WHERE token = ?", (token,)
                ).rowcount

        with self._lock:
            if self._conn is None:
                return
            try:
                released = self._busy_retry(txn)
            except sqlite3.DatabaseError:
                METER.bump("service.store_write_errors")
                return
        if released:
            METER.bump("store.leases_released", released)

    def live_leases(self) -> int:
        """Unexpired lease rows (health reporting / tests)."""
        with self._lock:
            if self._conn is None:
                return 0
            try:
                return self._conn.execute(
                    "SELECT COUNT(*) FROM leases WHERE expires > ?",
                    (time.time(),),
                ).fetchone()[0]
            except sqlite3.DatabaseError:
                return 0

    # ------------------------------------------------------------------
    def _evict_to_budget(self) -> None:
        """Drop least-recently-used snapshots until the summed blob
        size fits the budget; verdict rows survive eviction, and blobs
        under a live lease are skipped (``store.eviction_lease_skips``)
        — expired leases are reaped first so a crashed replica cannot
        wedge eviction past its lease TTL."""

        def sweep():
            evicted = 0
            lease_skips = 0
            reaped = 0
            with self._conn:
                now = time.time()
                reaped = self._conn.execute(
                    "DELETE FROM leases WHERE expires <= ?", (now,)
                ).rowcount
                total = self._conn.execute(
                    "SELECT COALESCE(SUM(snapshot_bytes), 0) FROM analyses"
                ).fetchone()[0]
                while total > self.max_snapshot_bytes:
                    victim = self._conn.execute(
                        "SELECT fingerprint, snapshot_bytes FROM analyses "
                        "WHERE snapshot IS NOT NULL AND fingerprint NOT IN"
                        " (SELECT fingerprint FROM leases WHERE expires > ?) "
                        "ORDER BY last_used, rowid LIMIT 1",
                        (now,),
                    ).fetchone()
                    if victim is None:
                        # Everything left is leased (or there are no
                        # blobs at all): stay over budget rather than
                        # free a blob a live replica is resuming from.
                        lease_skips = self._conn.execute(
                            "SELECT COUNT(*) FROM analyses "
                            "WHERE snapshot IS NOT NULL",
                        ).fetchone()[0]
                        break
                    self._conn.execute(
                        "UPDATE analyses SET snapshot = NULL,"
                        " snapshot_version = NULL, snapshot_bytes = 0 "
                        "WHERE fingerprint = ?",
                        (victim[0],),
                    )
                    total -= victim[1]
                    evicted += 1
            return reaped, evicted, lease_skips

        with self._lock:
            if self._conn is None:
                return
            try:
                reaped, evicted, lease_skips = self._busy_retry(sweep)
            except sqlite3.DatabaseError:  # pragma: no cover
                METER.bump("service.store_write_errors")
                return
        if reaped:
            METER.bump("store.leases_reaped", reaped)
        if lease_skips:
            METER.bump("store.eviction_lease_skips", lease_skips)
        if evicted:
            METER.bump("service.store_evictions", evicted)
            if self.on_evict is not None:
                self.on_evict()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Row/byte totals for health reporting."""
        with self._lock:
            if self._conn is None:
                return {"open": False}

            def read():
                rows, with_snapshot, snapshot_bytes = self._conn.execute(
                    "SELECT COUNT(*), COUNT(snapshot),"
                    " COALESCE(SUM(snapshot_bytes), 0) FROM analyses"
                ).fetchone()
                leases = self._conn.execute(
                    "SELECT COUNT(*) FROM leases WHERE expires > ?",
                    (time.time(),),
                ).fetchone()[0]
                return rows, with_snapshot, snapshot_bytes, leases

            try:
                rows, with_snapshot, snapshot_bytes, leases = self._busy_retry(read)
            except sqlite3.DatabaseError:  # pragma: no cover
                return {"open": True, "error": "unreadable"}
        return {
            "open": True,
            "degraded": False,
            "path": str(self.path),
            "entries": rows,
            "snapshots": with_snapshot,
            "snapshot_bytes": snapshot_bytes,
            "max_snapshot_bytes": self.max_snapshot_bytes,
            "leases": leases,
        }


class DegradedAnalysisStore:
    """Store-less fallback for an unusable store location.

    Implements the :class:`AnalysisStore` surface with every read a
    miss and every write a drop, so a replica whose store directory is
    read-only at startup serves correct (just uncached) verdicts
    instead of crash-looping.  ``/health`` surfaces the degradation via
    :meth:`stats`."""

    degraded = True

    def __init__(self, path: str | Path, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        self.on_evict = None
        self.max_snapshot_bytes = 0

    def get(self, fingerprint: str, *, include_snapshot: bool = True):
        return None

    def record(self, fingerprint: str, result: dict, **kwargs) -> None:
        return None

    def acquire_lease(self, fingerprint: str, *, ttl: float | None = None):
        return None

    def release_lease(self, fingerprint: str, token: str | None) -> None:
        return None

    def live_leases(self) -> int:
        return 0

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    def stats(self) -> dict:
        return {
            "open": False,
            "degraded": True,
            "reason": self.reason,
            "path": str(self.path),
        }


def open_store(path: str | Path, **kwargs) -> AnalysisStore | DegradedAnalysisStore:
    """Open the store, degrading instead of crashing when the location
    is unusable (read-only directory, unwritable file): the service
    must come up and serve engine runs even when it cannot cache them.
    ``service.store_degraded`` counts the fallback."""
    try:
        return AnalysisStore(path, **kwargs)
    except (OSError, sqlite3.Error) as broken:
        METER.bump("service.store_degraded")
        return DegradedAnalysisStore(path, f"{type(broken).__name__}: {broken}")
