"""Crash-safe persistent analysis store (sqlite, stdlib only).

One row per problem fingerprint (:mod:`repro.service.fingerprint`),
holding the verdict record (JSON) and, for inconclusive runs, the
engine snapshot blob (:mod:`repro.service.snapshot`) that lets a later,
deeper-``k`` request resume instead of starting over.

Layout (``STORE_SCHEMA_VERSION`` 1, tracked via ``PRAGMA
user_version``)::

    analyses(
        fingerprint      TEXT PRIMARY KEY,   -- sha256 hex
        result           TEXT,               -- JSON verdict record
        bound            INTEGER,            -- deepest explored k
        engine           TEXT,               -- lane: explicit|symbolic|auto
        snapshot         BLOB,               -- NULL once conclusive
        snapshot_version INTEGER,
        created          REAL,
        last_used        REAL,               -- LRU clock
        snapshot_bytes   INTEGER
    )

Robustness contract:

* **Crash safety** — every write commits in its own transaction; WAL
  journaling is enabled best-effort (falls back silently where the
  filesystem refuses).
* **Corruption tolerance** — a bad row, an undecodable JSON record, or
  a wholesale-corrupt database file degrade to cache *misses*, never
  to crashes: reads catch :class:`sqlite3.DatabaseError`, and an
  unopenable file is rotated aside to ``<path>.corrupt`` and recreated
  empty.  (Snapshot blobs are validated downstream — the service
  treats :class:`~repro.errors.SnapshotError` as a miss too.)
* **Schema versioning** — a version mismatch wipes and recreates the
  tables; the store holds only recomputable cache data.
* **Size bounding** — when the summed snapshot bytes exceed
  ``max_snapshot_bytes``, least-recently-used snapshots are evicted
  (their verdict rows stay — verdicts are tiny and the valuable part).
  Eviction fires the ``on_evict`` hook, which the analysis server
  routes to the shared
  :func:`~repro.util.caches.clear_runtime_caches` cleanup — the same
  path the benchmark runner's cold-run contract and server shutdown
  use — so size pressure also sheds the in-process canonical tables
  instead of letting a long-lived daemon accumulate them.  (The server
  excludes the leased worker pools here: they are bounded by their own
  LRU cache, and closing one mid-eviction would break analyses running
  on it; pools are released on server shutdown.)

All methods are thread-safe (one connection guarded by a lock): the
server's bounded executor calls in from worker threads.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.util.meter import METER

STORE_SCHEMA_VERSION = 1

#: Default snapshot budget: plenty for thousands of registry-sized
#: snapshots while keeping a runaway daemon's disk use bounded.
DEFAULT_MAX_SNAPSHOT_BYTES = 64 * 1024 * 1024

_SCHEMA = """
CREATE TABLE IF NOT EXISTS analyses (
    fingerprint      TEXT PRIMARY KEY,
    result           TEXT,
    bound            INTEGER NOT NULL DEFAULT 0,
    engine           TEXT,
    snapshot         BLOB,
    snapshot_version INTEGER,
    created          REAL NOT NULL,
    last_used        REAL NOT NULL,
    snapshot_bytes   INTEGER NOT NULL DEFAULT 0
)
"""


@dataclass(slots=True)
class StoreEntry:
    """One decoded store row.  ``result`` is ``None`` when the stored
    JSON is missing or undecodable (corruption ⇒ miss); ``snapshot`` is
    ``None`` when absent, evicted, written by a different snapshot
    format version, or simply not requested (``include_snapshot=False``
    — check ``has_snapshot`` for existence without the blob
    transfer)."""

    fingerprint: str
    result: dict | None
    bound: int
    engine: str | None
    snapshot: bytes | None
    has_snapshot: bool = False


class AnalysisStore:
    """Disk-backed verdict + snapshot store keyed by fingerprint."""

    def __init__(
        self,
        path: str | Path,
        *,
        max_snapshot_bytes: int = DEFAULT_MAX_SNAPSHOT_BYTES,
        on_evict=None,
    ) -> None:
        self.path = Path(path)
        self.max_snapshot_bytes = max_snapshot_bytes
        #: Called (once per eviction sweep) after LRU eviction dropped
        #: snapshots; the server wires this to the shared runtime-cache
        #: cleanup (see the module docstring).
        self.on_evict = on_evict
        self._lock = threading.Lock()
        #: Strictly increasing LRU clock: wall time, nudged past the
        #: previous tick so bursts within the timer resolution still
        #: order by access (sqlite ORDER BY must see distinct values).
        self._clock = 0.0
        self._conn = self._open()

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            # Wholesale-corrupt file: rotate it aside and start empty —
            # the store only ever holds recomputable cache data, and a
            # service must not crash-loop on a bad cache file.  The WAL
            # sidecars must move with it: an orphaned -wal next to a
            # freshly created empty database would be replayed into it
            # (SQLite's separated-WAL corruption hazard), recorrupting
            # the replacement.
            METER.bump("service.store_corrupt_rotations")
            for suffix in ("", "-wal", "-shm"):
                source = self.path.with_name(self.path.name + suffix)
                target = self.path.with_name(self.path.name + suffix + ".corrupt")
                try:
                    source.replace(target)
                except FileNotFoundError:
                    pass
                except OSError:
                    source.unlink(missing_ok=True)
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, check_same_thread=False)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.DatabaseError:  # pragma: no cover - odd filesystems
            pass
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version != STORE_SCHEMA_VERSION:
            with conn:
                conn.execute("DROP TABLE IF EXISTS analyses")
                conn.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION:d}")
        with conn:
            conn.execute(_SCHEMA)
        return conn

    def close(self) -> None:
        """Flush and close (idempotent)."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.commit()
                    self._conn.close()
                except sqlite3.DatabaseError:  # pragma: no cover
                    pass
                self._conn = None

    def flush(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.commit()

    def _tick(self) -> float:
        """Next LRU clock value (call under the lock)."""
        self._clock = max(time.time(), self._clock + 1e-6)
        return self._clock

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(
        self, fingerprint: str, *, include_snapshot: bool = True
    ) -> StoreEntry | None:
        """The entry for ``fingerprint`` (bumping its LRU clock), or
        ``None`` on miss — including every corruption mode.

        ``include_snapshot=False`` skips transferring the (potentially
        large) blob: verdict-only consumers — the service's hit check —
        read the cheap columns plus a ``has_snapshot`` flag and fetch
        the blob in a second call only when they actually resume."""
        blob_column = "snapshot" if include_snapshot else "NULL"
        with self._lock:
            if self._conn is None:
                return None
            try:
                row = self._conn.execute(
                    f"SELECT result, bound, engine, {blob_column},"
                    " snapshot_version, snapshot IS NOT NULL "
                    "FROM analyses WHERE fingerprint = ?",
                    (fingerprint,),
                ).fetchone()
                if row is None:
                    return None
                with self._conn:
                    self._conn.execute(
                        "UPDATE analyses SET last_used = ? WHERE fingerprint = ?",
                        (self._tick(), fingerprint),
                    )
            except sqlite3.DatabaseError:
                METER.bump("service.store_read_errors")
                return None
        result_json, bound, engine, snapshot, snapshot_version, has_snapshot = row
        result = None
        if result_json is not None:
            try:
                result = json.loads(result_json)
            except (TypeError, ValueError):
                METER.bump("service.store_corrupt_results")
        from repro.service.snapshot import SNAPSHOT_VERSION

        if snapshot_version is not None and snapshot_version != SNAPSHOT_VERSION:
            snapshot = None
            has_snapshot = False
        return StoreEntry(
            fingerprint, result, bound or 0, engine, snapshot, bool(has_snapshot)
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record(
        self,
        fingerprint: str,
        result: dict,
        *,
        bound: int,
        engine: str,
        snapshot: bytes | None = None,
    ) -> None:
        """Upsert the verdict record (and snapshot, when the run was
        inconclusive and resumable) for ``fingerprint``, then enforce
        the snapshot size budget."""
        from repro.service.snapshot import SNAPSHOT_VERSION

        with self._lock:
            if self._conn is None:
                return
            now = self._tick()
            try:
                with self._conn:
                    self._conn.execute(
                        "INSERT INTO analyses (fingerprint, result, bound, engine,"
                        " snapshot, snapshot_version, created, last_used,"
                        " snapshot_bytes) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                        "ON CONFLICT(fingerprint) DO UPDATE SET"
                        " result = excluded.result, bound = excluded.bound,"
                        " engine = excluded.engine, snapshot = excluded.snapshot,"
                        " snapshot_version = excluded.snapshot_version,"
                        " last_used = excluded.last_used,"
                        " snapshot_bytes = excluded.snapshot_bytes",
                        (
                            fingerprint,
                            json.dumps(result, sort_keys=True),
                            bound,
                            engine,
                            snapshot,
                            SNAPSHOT_VERSION if snapshot is not None else None,
                            now,
                            now,
                            len(snapshot) if snapshot is not None else 0,
                        ),
                    )
            except sqlite3.DatabaseError:  # pragma: no cover - disk trouble
                METER.bump("service.store_write_errors")
                return
        self._evict_to_budget()

    def _evict_to_budget(self) -> None:
        """Drop least-recently-used snapshots until the summed blob
        size fits the budget; verdict rows survive eviction."""
        evicted = 0
        with self._lock:
            if self._conn is None:
                return
            try:
                total = self._conn.execute(
                    "SELECT COALESCE(SUM(snapshot_bytes), 0) FROM analyses"
                ).fetchone()[0]
                while total > self.max_snapshot_bytes:
                    victim = self._conn.execute(
                        "SELECT fingerprint, snapshot_bytes FROM analyses "
                        "WHERE snapshot IS NOT NULL "
                        "ORDER BY last_used, rowid LIMIT 1"
                    ).fetchone()
                    if victim is None:
                        break
                    with self._conn:
                        self._conn.execute(
                            "UPDATE analyses SET snapshot = NULL,"
                            " snapshot_version = NULL, snapshot_bytes = 0 "
                            "WHERE fingerprint = ?",
                            (victim[0],),
                        )
                    total -= victim[1]
                    evicted += 1
            except sqlite3.DatabaseError:  # pragma: no cover
                METER.bump("service.store_write_errors")
                return
        if evicted:
            METER.bump("service.store_evictions", evicted)
            if self.on_evict is not None:
                self.on_evict()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Row/byte totals for health reporting."""
        with self._lock:
            if self._conn is None:
                return {"open": False}
            try:
                rows, with_snapshot, snapshot_bytes = self._conn.execute(
                    "SELECT COUNT(*), COUNT(snapshot),"
                    " COALESCE(SUM(snapshot_bytes), 0) FROM analyses"
                ).fetchone()
            except sqlite3.DatabaseError:  # pragma: no cover
                return {"open": True, "error": "unreadable"}
        return {
            "open": True,
            "path": str(self.path),
            "entries": rows,
            "snapshots": with_snapshot,
            "snapshot_bytes": snapshot_bytes,
            "max_snapshot_bytes": self.max_snapshot_bytes,
        }
