"""``cuba loadtest``: a service throughput harness for 1..N replicas.

Drives mixed **submit/status/result** traffic from a pool of client
threads against a replica set (either daemons the caller already runs,
or — spawn mode — N ``cuba serve`` subprocesses launched on ephemeral
ports *sharing one store file*, the multi-replica deployment shape),
then writes a ``cuba-loadtest/1`` JSON payload in the spirit of the
``cuba-bench/1`` perf trajectory:

* per-op and overall **p50/p99 latency** plus throughput (requests/s),
* **dedup-hit-rate** (client-observed ``cached``/``deduplicated``
  responses per submit) and **store-hit-rate** (METER
  ``service.store_hits`` per submit, summed over replicas),
* **retry counts** (client retries/failovers) and **lease contention**
  (``store.leases_*``, ``store.eviction_lease_skips``,
  ``store.busy_retries`` — the PR 7 multi-replica safety counters),
* a **cross-replica probe**: a fingerprint computed on its
  affinity-home replica is re-submitted to a *different* replica, which
  must answer from the shared store (``cached`` + a ``store_hits``
  bump, zero extra engine runs) — the committed-baseline smoke's proof
  that N daemons really share one store.

Like BENCH files, LOADTEST files carry a ``calibration_seconds`` spin
so throughput can be compared across machines, and
:func:`compare_loadtest` gates a current run against a committed
baseline with a matching configuration (``LOADTEST_*.json`` at the
repo root is the service-throughput trajectory).

The traffic mix deliberately includes a *shallow/deeper* pair on one
fingerprint (``max_rounds=1`` then ``max_rounds=4``): the shallow run
parks an inconclusive snapshot in the store, the deeper run resumes it
— which exercises the lease-guarded eviction path under load, not just
in unit tests.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ServiceError
from repro.service.client import RetryPolicy, ServiceClient

LOADTEST_SCHEMA = "cuba-loadtest/1"

#: METER keys (per replica, summed) persisted into the payload.
_METER_KEYS = (
    "service.engine_runs",
    "service.store_hits",
    "service.dedup_joins",
    "service.resumes",
    "service.store_evictions",
    "service.snapshot_rejects",
    "service.store_read_errors",
    "store.busy_retries",
    "store.leases_acquired",
    "store.leases_released",
    "store.leases_reaped",
    "store.eviction_lease_skips",
)


@dataclass(frozen=True)
class WorkloadItem:
    """One submittable problem with its traffic weight."""

    name: str
    weight: int
    kwargs: dict


def build_workloads(quick: bool = True, max_rounds: int = 6) -> list[WorkloadItem]:
    """The traffic mix.  Everything is registry-derived and fast; the
    ``resume-*`` pair shares one fingerprint (``max_rounds`` is outside
    the fingerprint) so the deeper submission resumes the shallow run's
    snapshot — the lease-guarded path."""
    from repro.cpds import format_cpds
    from repro.models import fig1_cpds

    fig1 = format_cpds(fig1_cpds())
    items = [
        WorkloadItem(
            "fig1-explicit", 5,
            dict(cpds_text=fig1, property_spec="shared:3",
                 engine="explicit", max_rounds=max_rounds),
        ),
        WorkloadItem(
            "fig1-symbolic", 3,
            dict(cpds_text=fig1, property_spec="shared:3",
                 engine="symbolic", max_rounds=max_rounds),
        ),
        WorkloadItem(
            "fig1-auto", 3,
            dict(cpds_text=fig1, property_spec="shared:3",
                 engine="auto", max_rounds=max_rounds),
        ),
        # Distinct fingerprint (different property set) so the pair is
        # not short-circuited by the conclusive fig1-explicit entry.
        WorkloadItem(
            "resume-shallow", 2,
            dict(cpds_text=fig1, property_spec="shared:3,4",
                 engine="explicit", max_rounds=1),
        ),
        WorkloadItem(
            "resume-deeper", 2,
            dict(cpds_text=fig1, property_spec="shared:3,4",
                 engine="explicit", max_rounds=4),
        ),
    ]
    if not quick:
        from repro.models.dekker import dekker_source

        items.append(
            WorkloadItem(
                "dekker-auto", 2,
                dict(bp_text=dekker_source(), engine="auto",
                     max_rounds=max(8, max_rounds)),
            )
        )
    return items


# ----------------------------------------------------------------------
# Replica spawning (self-contained multi-replica runs)
# ----------------------------------------------------------------------
@dataclass
class Replica:
    """One spawned ``cuba serve`` subprocess."""

    proc: subprocess.Popen
    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait()


def _free_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _repro_env() -> dict:
    import os

    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_replicas(
    count: int,
    store_path: str | Path,
    *,
    executor: str = "thread",
    jobs: int = 1,
    workers: int = 2,
    store_mb: float = 64.0,
    lease_ttl: float = 300.0,
    startup_timeout: float = 60.0,
) -> list[Replica]:
    """Launch ``count`` ``cuba serve`` daemons on ephemeral ports, all
    sharing ``store_path`` (the contention shape under test), and wait
    until every ``/health`` answers.  The default ``thread`` executor
    keeps spawn cost negligible for short smoke profiles; pass
    ``process`` for the daemon-default execution mode."""
    env = _repro_env()
    replicas: list[Replica] = []
    try:
        for _ in range(count):
            port = _free_port()
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "serve",
                    "--host", "127.0.0.1", "--port", str(port),
                    "--store", str(store_path),
                    "--store-mb", str(store_mb),
                    "--lease-ttl", str(lease_ttl),
                    "--workers", str(workers),
                    "--jobs", str(jobs),
                    "--executor", executor,
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            replicas.append(Replica(proc, "127.0.0.1", port))
        deadline = time.monotonic() + startup_timeout
        for index, replica in enumerate(replicas):
            probe = ServiceClient(
                replica.host, replica.port,
                retry=RetryPolicy(connect_timeout=2.0, read_timeout=10.0,
                                  retries=0),
            )
            while True:
                if replica.proc.poll() is not None:
                    output = (replica.proc.stdout.read() or "")[-2000:]
                    raise ServiceError(
                        f"replica {index} exited during startup: {output}"
                    )
                try:
                    probe.health()
                    break
                except ServiceError:
                    if time.monotonic() > deadline:
                        raise ServiceError(
                            f"replica {index} never became healthy"
                        ) from None
                    time.sleep(0.05)
        return replicas
    except BaseException:
        for replica in replicas:
            replica.stop()
        raise


def stop_replicas(replicas: list[Replica], client: ServiceClient | None) -> None:
    """Graceful shutdown via the API, then terminate stragglers."""
    if client is not None:
        try:
            client.shutdown()
        except ServiceError:  # already down — terminate below
            pass
    for replica in replicas:
        try:
            replica.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            pass
        replica.stop()


# ----------------------------------------------------------------------
# Traffic driver
# ----------------------------------------------------------------------
@dataclass
class _Shared:
    """Cross-worker traffic state."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    known_ids: list[str] = field(default_factory=list)
    #: fingerprint -> (submit kwargs, response final?) for the
    #: cross-replica probe phase.
    problems: dict[str, tuple[dict, bool]] = field(default_factory=dict)


def _drive(
    client: ServiceClient,
    workloads: list[WorkloadItem],
    shared: _Shared,
    deadline: float,
    seed: int,
) -> list[tuple[str, float, bool, dict]]:
    """One worker thread's loop: weighted submit/status/result mix
    until the deadline; returns (op, seconds, ok, flags) records."""
    rng = random.Random(seed)
    weights = [item.weight for item in workloads]
    records: list[tuple[str, float, bool, dict]] = []
    while time.monotonic() < deadline:
        with shared.lock:
            ids = list(shared.known_ids)
        roll = rng.random()
        if roll < 0.5 or not ids:
            op = "submit"
        elif roll < 0.75:
            op = "status"
        else:
            op = "result"
        started = time.perf_counter()
        ok = True
        flags: dict = {}
        try:
            if op == "submit":
                item = rng.choices(workloads, weights=weights)[0]
                response = client.submit(**item.kwargs)
                problem = response.get("fingerprint")
                flags = {
                    "cached": bool(response.get("cached")),
                    "deduplicated": bool(response.get("deduplicated")),
                    "resumed": bool(response.get("resumed")),
                }
                if problem:
                    with shared.lock:
                        if problem not in shared.problems:
                            shared.known_ids.append(problem)
                        previous = shared.problems.get(problem, (None, False))
                        shared.problems[problem] = (
                            item.kwargs,
                            previous[1] or bool(response.get("final")),
                        )
            elif op == "status":
                client.status(rng.choice(ids))
            else:
                client.result(rng.choice(ids))
        except ServiceError:
            ok = False
        records.append((op, time.perf_counter() - started, ok, flags))
    return records


def _percentile(sorted_seconds: list[float], q: float) -> float | None:
    if not sorted_seconds:
        return None
    index = min(
        len(sorted_seconds) - 1, round(q * (len(sorted_seconds) - 1))
    )
    return sorted_seconds[index]


def _meter_sum(client: ServiceClient, replicas: int) -> dict[str, int]:
    totals: dict[str, int] = {}
    for index in range(replicas):
        for name, value in client.meter(replica=index).items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _server_latency(client: ServiceClient, replicas: int) -> dict:
    """Server-truth request latency: scrape every replica's ``/metrics``
    exposition, sum the ``cuba_service_request_seconds`` buckets across
    replicas and label sets, and interpolate p50/p99 out of the merged
    histogram — latency as the *servers* measured it, with client
    transport and retry time excluded.  Best-effort: an unreachable
    replica is skipped, no samples means ``{}``."""
    from repro.obs.metrics import quantile_from_buckets
    from repro.obs.prometheus import parse_text

    cumulative: dict[float, float] = {}
    total = 0.0
    for index in range(replicas):
        try:
            parsed = parse_text(client.metrics(replica=index))
        except (ServiceError, ValueError):
            continue
        buckets = parsed.get("cuba_service_request_seconds_bucket", {})
        for labels, value in buckets.items():
            le = dict(labels).get("le")
            if le is None:
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            cumulative[bound] = cumulative.get(bound, 0.0) + value
        for value in parsed.get(
            "cuba_service_request_seconds_count", {}
        ).values():
            total += value
    if not total or not cumulative:
        return {}
    bounds = sorted(bound for bound in cumulative if bound != float("inf"))
    counts: list[float] = []
    previous = 0.0
    for bound in bounds + [float("inf")]:
        counts.append(cumulative.get(bound, previous) - previous)
        previous = cumulative.get(bound, previous)
    return {
        "server_requests": int(total),
        "server_p50_ms": round(
            quantile_from_buckets(tuple(bounds), counts, total, 0.50) * 1000, 3
        ),
        "server_p99_ms": round(
            quantile_from_buckets(tuple(bounds), counts, total, 0.99) * 1000, 3
        ),
    }


def _cross_replica_probe(
    client: ServiceClient, shared: _Shared, limit: int = 3
) -> dict:
    """Re-submit settled problems to a replica *other than* their
    affinity home; a healthy shared store answers ``cached`` with a
    ``service.store_hits`` bump and zero new engine runs on that
    replica.  Returns ``{"attempted": n, "hits": n}``."""
    n_replicas = len(client.replicas)
    attempted = hits = 0
    if n_replicas < 2:
        return {"attempted": 0, "hits": 0}
    with shared.lock:
        settled = [
            (problem, kwargs)
            for problem, (kwargs, final) in shared.problems.items()
            if final
        ]
    for _problem, kwargs in settled[:limit]:
        key = ServiceClient._routing_key(
            {
                "cpds": kwargs.get("cpds_text"),
                "bp": kwargs.get("bp_text"),
                "init": kwargs.get("bp_init"),
                "property": kwargs.get("property_spec"),
                "engine": kwargs.get("engine", "auto"),
            }
        )
        home = client._ring.ordered(key)[0]
        probe = (home + 1) % n_replicas
        attempted += 1
        try:
            before = client.meter(replica=probe)
            response = client.submit(**kwargs, replica=probe)
            after = client.meter(replica=probe)
        except ServiceError:
            continue
        if (
            response.get("cached")
            and after.get("service.store_hits", 0)
            > before.get("service.store_hits", 0)
            and after.get("service.engine_runs", 0)
            == before.get("service.engine_runs", 0)
        ):
            hits += 1
    return {"attempted": attempted, "hits": hits}


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def run_loadtest(
    *,
    replicas: list[str] | None = None,
    spawn: int = 2,
    store: str | Path | None = None,
    duration: float = 10.0,
    concurrency: int = 8,
    quick: bool = True,
    max_rounds: int = 6,
    label: str = "",
    seed: int = 7,
    executor: str = "thread",
    jobs: int = 1,
    store_mb: float = 64.0,
    lease_ttl: float = 300.0,
    retry: RetryPolicy | None = None,
    cross_check: bool = True,
) -> dict:
    """Run the loadtest and return the ``cuba-loadtest/1`` payload.

    ``replicas`` targets daemons the caller already runs; otherwise
    ``spawn`` fresh ``cuba serve`` subprocesses share one store file
    (``store``, default: a sibling of the JSON output in a temp dir)."""
    from repro.bench.runner import calibrate, git_rev

    spawned: list[Replica] = []
    tempdir = None
    if replicas is None:
        if store is None:
            import tempfile

            tempdir = tempfile.TemporaryDirectory(prefix="cuba-loadtest-")
            store = Path(tempdir.name) / "store.sqlite"
        spawned = spawn_replicas(
            spawn, store, executor=executor, jobs=jobs,
            store_mb=store_mb, lease_ttl=lease_ttl,
        )
        replica_specs = [replica.address for replica in spawned]
    else:
        replica_specs = list(replicas)
    client = ServiceClient(
        replicas=replica_specs,
        retry=retry or RetryPolicy(connect_timeout=5.0, read_timeout=120.0),
    )
    try:
        n_replicas = len(replica_specs)
        workloads = build_workloads(quick=quick, max_rounds=max_rounds)
        shared = _Shared()
        meter_before = _meter_sum(client, n_replicas)
        started = time.monotonic()
        deadline = started + duration
        threads: list[threading.Thread] = []
        results: list[list] = [[] for _ in range(concurrency)]

        def worker(index: int) -> None:
            results[index] = _drive(
                client, workloads, shared, deadline, seed * 1000 + index
            )

        for index in range(concurrency):
            thread = threading.Thread(target=worker, args=(index,), daemon=True)
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        meter_after = _meter_sum(client, n_replicas)
        server_truth = _server_latency(client, n_replicas)
        cross = (
            _cross_replica_probe(client, shared)
            if cross_check
            else {"attempted": 0, "hits": 0}
        )
        meter_delta = {
            name: meter_after.get(name, 0) - meter_before.get(name, 0)
            for name in _METER_KEYS
        }

        records = [record for worker_records in results for record in worker_records]
        ops: dict[str, dict] = {}
        for op in ("submit", "status", "result"):
            seconds = sorted(r[1] for r in records if r[0] == op)
            failures = sum(1 for r in records if r[0] == op and not r[2])
            ops[op] = {
                "count": len(seconds),
                "failures": failures,
                "p50_ms": round((_percentile(seconds, 0.50) or 0) * 1000, 3),
                "p99_ms": round((_percentile(seconds, 0.99) or 0) * 1000, 3),
                "mean_ms": round(
                    (sum(seconds) / len(seconds) * 1000) if seconds else 0, 3
                ),
            }
        all_seconds = sorted(r[1] for r in records)
        submits = [r for r in records if r[0] == "submit"]
        dedup_hits = sum(
            1
            for r in submits
            if r[3].get("cached") or r[3].get("deduplicated")
        )
        failures = sum(1 for r in records if not r[2])
        client_stats = client.stats_snapshot()
        payload = {
            "schema": LOADTEST_SCHEMA,
            "stamp": time.strftime("%Y%m%dT%H%M%SZ", time.gmtime()),
            "git": git_rev(),
            "label": label,
            "quick": quick,
            "duration": duration,
            "elapsed": round(elapsed, 3),
            "concurrency": concurrency,
            "replicas": n_replicas,
            "executor": executor,
            "jobs": jobs,
            "max_rounds": max_rounds,
            "calibration_seconds": calibrate(),
            "ops": ops,
            "totals": {
                "requests": len(records),
                "failures": failures,
                "throughput_rps": round(len(records) / elapsed, 2)
                if elapsed
                else 0.0,
                "p50_ms": round((_percentile(all_seconds, 0.50) or 0) * 1000, 3),
                "p99_ms": round((_percentile(all_seconds, 0.99) or 0) * 1000, 3),
                "submits": len(submits),
                "dedup_hit_rate": round(dedup_hits / len(submits), 4)
                if submits
                else 0.0,
                "store_hit_rate": round(
                    meter_delta.get("service.store_hits", 0) / len(submits), 4
                )
                if submits
                else 0.0,
                "resumes": meter_delta.get("service.resumes", 0),
                "client_retries": client_stats["retries"],
                "client_failovers": client_stats["failovers"],
                "cross_replica_probes": cross["attempted"],
                "cross_replica_store_hits": cross["hits"],
                "lease": {
                    "acquired": meter_delta.get("store.leases_acquired", 0),
                    "released": meter_delta.get("store.leases_released", 0),
                    "reaped": meter_delta.get("store.leases_reaped", 0),
                    "eviction_skips": meter_delta.get(
                        "store.eviction_lease_skips", 0
                    ),
                },
                "busy_retries": meter_delta.get("store.busy_retries", 0),
                # Server-truth latency (scraped /metrics histograms);
                # compare_loadtest gates only the named fields above, so
                # these extras never break baseline comparability.
                **server_truth,
            },
            "meter": meter_delta,
        }
        return payload
    finally:
        if spawned:
            stop_replicas(spawned, client)
        if tempdir is not None:
            tempdir.cleanup()


def write_loadtest_json(payload: dict, out_dir: str | Path = ".") -> Path:
    """Write ``LOADTEST_<stamp>.json`` into ``out_dir``."""
    path = Path(out_dir) / f"LOADTEST_{payload['stamp']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


# ----------------------------------------------------------------------
# Committed-baseline gating (the cuba-bench/1 discipline for service
# throughput)
# ----------------------------------------------------------------------
def comparable_loadtest_configs(current: dict, baseline: dict) -> bool:
    """Two LOADTEST payloads are only comparable when the traffic shape
    matches: profile, duration, concurrency, replica count, and the
    engine execution mode all change what a request costs."""
    return all(
        current.get(name) == baseline.get(name)
        for name in ("quick", "duration", "concurrency", "replicas", "executor")
    )


def latest_comparable_loadtest(current: dict, root: str | Path = ".") -> Path | None:
    """The newest committed ``LOADTEST_*.json`` whose configuration
    matches ``current`` (the CI smoke's baseline selector)."""
    for path in sorted(Path(root).glob("LOADTEST_*.json"), reverse=True):
        try:
            candidate = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):  # pragma: no cover
            continue
        if comparable_loadtest_configs(current, candidate):
            return path
    return None


def compare_loadtest(
    current: dict, baseline: dict, tolerance: float = 0.25
) -> tuple[bool, list[str]]:
    """Regression gate on service throughput.

    Throughput is normalized by each payload's ``calibration_seconds``
    (requests per calibrated CPU unit) so a slower machine is not read
    as a regression; the gate fails when normalized throughput dropped
    more than ``tolerance`` against the baseline, or when the current
    run has failed requests (a loadtest with failures measures error
    handling, not throughput)."""
    messages: list[str] = []
    if not comparable_loadtest_configs(current, baseline):
        messages.append(
            "BASELINE NOT COMPARABLE: configuration mismatch "
            f"(current quick={current.get('quick')} "
            f"duration={current.get('duration')} "
            f"concurrency={current.get('concurrency')} "
            f"replicas={current.get('replicas')} "
            f"executor={current.get('executor')}); pick a baseline with "
            "the same traffic shape"
        )
        return False, messages
    ok = True
    failures = current.get("totals", {}).get("failures", 0)
    if failures:
        ok = False
        messages.append(f"FAILED REQUESTS: {failures} request(s) failed")
    cur_rps = current.get("totals", {}).get("throughput_rps", 0.0)
    base_rps = baseline.get("totals", {}).get("throughput_rps", 0.0)
    cur_cal = current.get("calibration_seconds")
    base_cal = baseline.get("calibration_seconds")
    if cur_cal and base_cal:
        cur_norm = cur_rps * cur_cal
        base_norm = base_rps * base_cal
        messages.append(
            f"normalized throughput: current {cur_norm:.2f} vs baseline "
            f"{base_norm:.2f} (calibration {cur_cal:.4f}s / {base_cal:.4f}s)"
        )
    else:  # pragma: no cover - legacy baseline without calibration
        cur_norm, base_norm = cur_rps, base_rps
        messages.append(
            f"raw throughput: current {cur_rps:.1f} rps vs baseline "
            f"{base_rps:.1f} rps"
        )
    if not base_norm:
        return ok, messages + ["baseline has no throughput; nothing to gate"]
    ratio = cur_norm / base_norm
    messages.append(f"ratio {ratio:.2f} (tolerance {1 - tolerance:.2f})")
    if ratio < 1 - tolerance:
        ok = False
        messages.append(
            "THROUGHPUT REGRESSION: normalized requests/s dropped "
            f"{(1 - ratio) * 100:.0f}% against {baseline.get('stamp')}"
        )
    return ok, messages
