"""Binary checkpoint/restore of reachability-engine progress.

The bounded sequences ``(Rk)`` / ``(Sk)`` are monotone by level and the
engines only ever append — exactly the shape that makes checkpointing
sound: persist the committed levels (plus the caches whose contents are
pure functions of them) and a restored engine's ``ensure_level``
continues from the stored bound, level-for-level identical to an
uninterrupted run, including the METER expansion counts
(differentially tested in ``tests/service/test_snapshot.py``).

Format (``SNAPSHOT_VERSION`` 2)
-------------------------------
``MAGIC ║ u16 version ║ u8 kind ║ payload`` — the payload is a pickled
dict whose integer columns are contiguous ``array('q')`` blobs.  The
kind byte is each lane's registered
:attr:`~repro.reach.base.ReachabilityEngine.snapshot_kind`; version 2
added the WUBA lane (kind 3) alongside the lane-token fingerprint
change, so version-1 blobs decode as :class:`SnapshotError` — a store
miss, never a mis-resume:

* **explicit** (kind 1): the :class:`~repro.cpds.interning.StateTable`
  component pools plus interleaved ``(qid, wids...)`` rows (component
  ids, not packed keys — era-independent and immune to the adaptive
  bit-field geometry), ``first_seen``, the per-level id sets
  (lengths + flat ids), the id-encoded witness parents, and the
  cross-level context-tree cache as raw CSR columns.  The per-thread
  successor memos are *not* persisted — they are pure semantic facts
  the warm engine re-derives without touching any METER counter.
* **symbolic** (kind 2): pools of distinct shared states and canonical
  signature keys, the per-level symbolic states as
  ``(shared_idx, sig_idx...)`` rows, and the cross-expansion memo.
  Automata are persisted as signature keys only and rebuilt through
  the hash-cons table
  (:func:`~repro.automata.canonical.intern_canonical_form`), so
  restored automata share identity with everything the process
  canonicalizes afterwards.  Stored canonical forms carry the
  *snapshotting* process's symbol order; restore re-canonicalizes each
  one under the current process's per-thread alphabets, so a restarted
  daemon with different symbol-interning history still resumes instead
  of silently recomputing from scratch.
* **wuba** (kind 3): the committed ``(Wk)`` levels as
  ``(shared, stacks)`` rows against a pool of distinct per-thread
  stacks, plus the engine's guard and memo mode.  The write-free
  closure memo is a pure semantic cache and is rebuilt on demand.

Snapshots are trusted data: they are produced and consumed by the same
store (pickle is not safe against adversarial blobs, same as every
other pickle-based checkpoint format).  A blob that fails *any* decode
step raises :class:`~repro.errors.SnapshotError`, which the store
layer treats as a cache miss.
"""

from __future__ import annotations

import pickle
import struct
import time
from array import array

from repro.automata.canonical import canonical_nfa, intern_canonical_form
from repro.cpds.cpds import CPDS
from repro.cpds.interning import StateTable
from repro.cpds.semantics import ContextTree
from repro.errors import SnapshotError
from repro.obs import trace
from repro.obs.metrics import LATENCY
from repro.util.meter import METER

MAGIC = b"CUSN"
SNAPSHOT_VERSION = 2

KIND_EXPLICIT = 1
KIND_SYMBOLIC = 2
KIND_WUBA = 3

_HEADER = struct.Struct("<4sHB")


def _encode(kind: int, payload: dict) -> bytes:
    start = time.perf_counter()
    with trace.span("snapshot.encode", kind=kind):
        blob = _HEADER.pack(MAGIC, SNAPSHOT_VERSION, kind) + pickle.dumps(
            payload, protocol=pickle.HIGHEST_PROTOCOL
        )
    METER.bump("snapshot.saves")
    METER.bump("snapshot.save_bytes", len(blob))
    LATENCY.observe("snapshot_encode", time.perf_counter() - start)
    return blob


def _parse_header(data: bytes) -> int:
    """Validate the framing header and return the kind byte; raises
    :class:`SnapshotError` on truncation, wrong magic, or a future
    version."""
    try:
        magic, version, kind = _HEADER.unpack_from(data)
    except struct.error as broken:
        raise SnapshotError(f"snapshot header truncated: {broken}") from broken
    if magic != MAGIC:
        raise SnapshotError(f"bad snapshot magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} != supported {SNAPSHOT_VERSION}"
        )
    return kind


def decode(data: bytes, expected_kind: int | None = None) -> tuple[int, dict]:
    """Validate framing and unpickle the payload; every failure mode —
    truncation, wrong magic, future version, garbage pickle — raises
    :class:`SnapshotError`."""
    start = time.perf_counter()
    kind = _parse_header(data)
    if expected_kind is not None and kind != expected_kind:
        raise SnapshotError(f"snapshot kind {kind} != expected {expected_kind}")
    with trace.span("snapshot.decode", kind=kind, bytes=len(data)):
        try:
            payload = pickle.loads(data[_HEADER.size :])
            if not isinstance(payload, dict):
                raise SnapshotError(
                    f"snapshot payload is {type(payload).__name__}"
                )
        except SnapshotError:
            raise
        except Exception as broken:
            raise SnapshotError(
                f"snapshot payload undecodable: {broken}"
            ) from broken
    METER.bump("snapshot.restores")
    LATENCY.observe("snapshot_decode", time.perf_counter() - start)
    return kind, payload


def snapshot_kind(data: bytes) -> int:
    """The kind byte of a blob — header validation only, so callers
    dispatching on kind before a full restore don't unpickle a large
    payload twice (or double-count ``snapshot.restores``)."""
    return _parse_header(data)


# ----------------------------------------------------------------------
# Explicit engine (Rk)
# ----------------------------------------------------------------------
def snapshot_explicit(engine) -> bytes:
    """Checkpoint an :class:`~repro.reach.explicit.ExplicitReach` built
    on the interned core (``batched=True``; the seed per-state oracle
    keys its bookkeeping by decoded states and is not snapshottable)."""
    if not engine.batched:
        raise SnapshotError(
            "only the batched explicit engine supports snapshots "
            "(the per-state oracle path is a differential test fixture)"
        )
    table = engine.table
    shareds, stacks = table.component_pools()

    level_lens = array("q", (len(level) for level in engine._level_ids))
    level_ids = array("q")
    for level in engine._level_ids:
        level_ids.extend(level)

    parents = engine._parents
    if parents is None:
        parent_rows = None
    else:
        children = array("q")
        parent_sids = array("q")
        threads = array("q")
        actions = []
        for child, entry in parents.items():
            if entry is None:
                continue
            children.append(child)
            parent_sids.append(entry[0])
            threads.append(entry[1])
            actions.append(entry[2])
        parent_rows = (children, parent_sids, threads, actions)

    cache = engine._tree_cache
    if cache is None:
        tree_rows = None
    else:
        views = array("q")
        trees = []
        for view, tree in cache.items():
            index, qid, wid = engine._view_parts(view)
            views.extend((index, qid, wid))
            trees.append(
                (tree.thread, tree.root_qid, tree.root_wid,
                 tree.offsets, tree.qids, tree.wids, tree.actions)
            )
        tree_rows = (views, trees)

    return _encode(
        KIND_EXPLICIT,
        {
            "n_threads": table.n_threads,
            "max_states_per_context": engine.max_states_per_context,
            "track_traces": parents is not None,
            "incremental": cache is not None,
            "shareds": shareds,
            "stacks": stacks,
            "rows": table.export_rows(),
            "first_seen": array("q", engine._first_seen),
            "level_lens": level_lens,
            "level_ids": level_ids,
            "parents": parent_rows,
            "trees": tree_rows,
        },
    )


def restore_explicit(
    cpds: CPDS,
    data: bytes,
    *,
    config=None,
    max_states_per_context: int | None = None,
):
    """Rebuild a warm :class:`~repro.reach.explicit.ExplicitReach` from
    a :func:`snapshot_explicit` blob.  ``config`` carries the execution
    knobs (:class:`~repro.reach.config.EngineConfig` —
    ``jobs``/``shard_replay``/``backend``; pure execution knobs, never
    serialized into the blob) and may differ from the snapshotted
    engine's; ``max_states_per_context`` defaults to the snapshotted
    guard.  Raises :class:`SnapshotError` when the blob is undecodable
    or does not belong to ``cpds``."""
    from repro.reach.config import EngineConfig
    from repro.reach.explicit import ExplicitReach

    if config is None:
        config = EngineConfig()
    _kind, payload = decode(data, expected_kind=KIND_EXPLICIT)
    try:
        n_threads = payload["n_threads"]
        if n_threads != cpds.n_threads:
            raise SnapshotError(
                f"snapshot has {n_threads} threads, CPDS has {cpds.n_threads}"
            )
        table = StateTable.from_snapshot(
            n_threads, payload["shareds"], payload["stacks"], payload["rows"]
        )
        engine = ExplicitReach(
            cpds,
            max_states_per_context=(
                payload["max_states_per_context"]
                if max_states_per_context is None
                else max_states_per_context
            ),
            track_traces=payload["track_traces"],
            incremental=payload["incremental"],
            config=config.replace(batched=True),
        )
        if len(table) == 0 or table.state(0) != cpds.initial_state():
            raise SnapshotError("snapshot does not belong to this CPDS")
        engine.table = table

        levels = []
        cursor = 0
        level_ids = payload["level_ids"]
        for length in payload["level_lens"]:
            levels.append(tuple(level_ids[cursor : cursor + length]))
            cursor += length
        engine._level_ids = levels
        engine._first_seen = list(payload["first_seen"])
        if len(engine._first_seen) != len(table):
            raise SnapshotError("snapshot columns disagree on state count")

        parent_rows = payload["parents"]
        if parent_rows is None:
            engine._parents = None
        else:
            children, parent_sids, threads, actions = parent_rows
            rebuilt: dict = {levels[0][0]: None}
            for child, parent, thread, action in zip(
                children, parent_sids, threads, actions
            ):
                rebuilt[child] = (parent, thread, action)
            engine._parents = rebuilt

        tree_rows = payload["trees"]
        if tree_rows is None:
            engine._tree_cache = None
        else:
            views, trees = tree_rows
            cache: dict = {}
            qid_shift = engine._view_qid_shift
            wid_shift = engine._view_wid_shift
            for position, row in enumerate(trees):
                base = 3 * position
                index, qid, wid = views[base], views[base + 1], views[base + 2]
                cache[(qid << qid_shift) | (wid << wid_shift) | index] = ContextTree(
                    *row
                )
            engine._tree_cache = cache

        # Rebuild the base-class visible records by replaying the level
        # projections (decoded lazily off the restored core).
        engine.visible_levels.clear()
        engine._visible_cumulative.clear()
        visible = table.visible
        for level in levels:
            engine._record_visible(frozenset(visible(sid) for sid in level))
        engine._decoded_levels = []
        engine._first_seen_view = None
        return engine
    except SnapshotError:
        raise
    except Exception as broken:
        raise SnapshotError(f"explicit snapshot malformed: {broken}") from broken


# ----------------------------------------------------------------------
# Symbolic engine (Sk)
# ----------------------------------------------------------------------
def snapshot_symbolic(engine) -> bytes:
    """Checkpoint a :class:`~repro.reach.symbolic.SymbolicReach`: the
    canonical-signature frontier (per-level symbolic states) and the
    cross-expansion memo, both id-encoded against pools of distinct
    shared states and signature keys."""
    shared_ids: dict = {}
    shared_pool: list = []
    sig_ids: dict = {}
    sig_pool: list = []

    def shared_idx(value) -> int:
        idx = shared_ids.get(value)
        if idx is None:
            idx = shared_ids[value] = len(shared_pool)
            shared_pool.append(value)
        return idx

    def sig_idx(signature) -> int:
        idx = sig_ids.get(signature)
        if idx is None:
            idx = sig_ids[signature] = len(sig_pool)
            sig_pool.append(signature.key)
        return idx

    level_lens = array("q", (len(level) for level in engine.levels))
    state_rows = array("q")
    for level in engine.levels:
        for symbolic in level:
            state_rows.append(shared_idx(symbolic.shared))
            state_rows.extend(sig_idx(s) for s in symbolic.signatures)

    memo = engine._expansions
    if memo is None:
        memo_rows = None
    else:
        keys = array("q")
        part_lens = array("q")
        part_pairs = array("q")
        for (thread, shared, signature), parts in memo.items():
            keys.extend((thread, shared_idx(shared), sig_idx(signature)))
            part_lens.append(len(parts))
            for part_shared, _canonical, part_sig in parts:
                part_pairs.extend((shared_idx(part_shared), sig_idx(part_sig)))
        memo_rows = (keys, part_lens, part_pairs)

    return _encode(
        KIND_SYMBOLIC,
        {
            "n_threads": engine.cpds.n_threads,
            "batched": engine.batched,
            "shared_pool": shared_pool,
            "sig_pool": sig_pool,
            "level_lens": level_lens,
            "state_rows": state_rows,
            "expansions": memo_rows,
        },
    )


def restore_symbolic(cpds: CPDS, data: bytes, *, batched: bool | None = None):
    """Rebuild a warm :class:`~repro.reach.symbolic.SymbolicReach` from
    a :func:`snapshot_symbolic` blob.  ``batched`` defaults to the
    snapshotted engine's mode.  Raises :class:`SnapshotError` when the
    blob is undecodable or does not belong to ``cpds``."""
    from repro.reach.symbolic import SymbolicReach, SymbolicState, nfa_tops

    _kind, payload = decode(data, expected_kind=KIND_SYMBOLIC)
    try:
        n = payload["n_threads"]
        if n != cpds.n_threads:
            raise SnapshotError(
                f"snapshot has {n} threads, CPDS has {cpds.n_threads}"
            )
        from repro.reach.config import EngineConfig

        engine = SymbolicReach(
            cpds,
            incremental=payload["expansions"] is not None,
            config=EngineConfig(
                batched=payload["batched"] if batched is None else batched
            ),
        )
        initial_level = engine.levels[0]

        shared_pool = payload["shared_pool"]
        # Stored canonical forms embed the *snapshotting* process's
        # symbol order (canonical BFS numbering visits symbols in
        # SymbolTable order, which depends on interning history).  A
        # restarted daemon with different history would compute
        # different signatures for the same languages, so every stored
        # form is re-canonicalized under THIS process's per-thread
        # alphabet — a no-op returning the identical interned pair when
        # the orders agree, and an exact translation when they don't.
        raw = [intern_canonical_form(*key) for key in payload["sig_pool"]]
        alphabets = engine._alphabets
        translated: dict[tuple[int, int], tuple] = {}

        def pair_for(idx: int, thread: int) -> tuple:
            pair = translated.get((idx, thread))
            if pair is None:
                pair = canonical_nfa(raw[idx][0], alphabets[thread])
                translated[(idx, thread)] = pair
            return pair

        levels: list[frozenset] = []
        cursor = 0
        state_rows = payload["state_rows"]
        width = 1 + n
        for length in payload["level_lens"]:
            bucket = []
            for _ in range(length):
                shared = shared_pool[state_rows[cursor]]
                chosen = tuple(
                    pair_for(state_rows[cursor + 1 + offset], offset)
                    for offset in range(n)
                )
                bucket.append(
                    SymbolicState(
                        shared,
                        tuple(pair[0] for pair in chosen),
                        tuple(pair[1] for pair in chosen),
                    )
                )
                cursor += width
            levels.append(frozenset(bucket))
        if not levels or levels[0] != initial_level:
            raise SnapshotError("snapshot does not belong to this CPDS")

        memo_rows = payload["expansions"]
        if memo_rows is None:
            engine._expansions = None
        else:
            keys, part_lens, part_pairs = memo_rows
            memo: dict = {}
            pair_cursor = 0
            for position, length in enumerate(part_lens):
                base = 3 * position
                thread = keys[base]
                key = (
                    thread,
                    shared_pool[keys[base + 1]],
                    pair_for(keys[base + 2], thread)[1],
                )
                parts = []
                for _ in range(length):
                    part_shared = shared_pool[part_pairs[pair_cursor]]
                    dfa, signature = pair_for(part_pairs[pair_cursor + 1], thread)
                    parts.append((part_shared, dfa, signature))
                    pair_cursor += 2
                memo[key] = tuple(parts)
            engine._expansions = memo

        engine.levels = levels
        seen: set = set()
        for level in levels:
            seen |= level
        engine._seen = seen

        engine.visible_levels.clear()
        engine._visible_cumulative.clear()
        for level in levels:
            visible: set = set()
            for symbolic in level:
                visible |= engine._visible_product(
                    symbolic.shared,
                    tuple(nfa_tops(automaton) for automaton in symbolic.automata),
                )
            engine._record_visible(frozenset(visible))
        return engine
    except SnapshotError:
        raise
    except Exception as broken:
        raise SnapshotError(f"symbolic snapshot malformed: {broken}") from broken


# ----------------------------------------------------------------------
# WUBA engine (Wk)
# ----------------------------------------------------------------------
def snapshot_wuba(engine) -> bytes:
    """Checkpoint a :class:`~repro.reach.wuba.WubaReach`: the committed
    ``(Wk)`` levels as ``(shared, stack-ids...)`` rows against a pool of
    distinct per-thread stacks.  The write-free closure memo is a pure
    semantic cache (rebuilt on demand), so it is not persisted."""
    stack_ids: dict = {}
    stack_pool: list = []

    def stack_idx(stack) -> int:
        idx = stack_ids.get(stack)
        if idx is None:
            idx = stack_ids[stack] = len(stack_pool)
            stack_pool.append(stack)
        return idx

    level_lens = array("q", (len(level) for level in engine.levels))
    shared_rows: list = []
    stack_rows = array("q")
    for level in engine.levels:
        for state in level:
            shared_rows.append(state.shared)
            stack_rows.extend(stack_idx(stack) for stack in state.stacks)

    return _encode(
        KIND_WUBA,
        {
            "n_threads": engine.cpds.n_threads,
            "max_states_per_context": engine.max_states_per_context,
            "incremental": engine._closure_memo is not None,
            "stack_pool": stack_pool,
            "level_lens": level_lens,
            "shared_rows": shared_rows,
            "stack_rows": stack_rows,
        },
    )


def restore_wuba(cpds: CPDS, data: bytes, *, max_states_per_context: int | None = None):
    """Rebuild a warm :class:`~repro.reach.wuba.WubaReach` from a
    :func:`snapshot_wuba` blob.  ``max_states_per_context`` defaults to
    the snapshotted guard.  Raises :class:`SnapshotError` when the blob
    is undecodable or does not belong to ``cpds`` (level 0 must match
    the write-free closure of this CPDS's initial state)."""
    from repro.cpds.state import GlobalState
    from repro.reach.wuba import WubaReach

    _kind, payload = decode(data, expected_kind=KIND_WUBA)
    try:
        n = payload["n_threads"]
        if n != cpds.n_threads:
            raise SnapshotError(
                f"snapshot has {n} threads, CPDS has {cpds.n_threads}"
            )
        engine = WubaReach(
            cpds,
            max_states_per_context=(
                payload["max_states_per_context"]
                if max_states_per_context is None
                else max_states_per_context
            ),
            incremental=payload["incremental"],
        )
        stack_pool = payload["stack_pool"]
        shared_rows = payload["shared_rows"]
        stack_rows = payload["stack_rows"]
        levels: list[frozenset] = []
        state_index = 0
        cursor = 0
        for length in payload["level_lens"]:
            bucket = []
            for _ in range(length):
                stacks = tuple(
                    stack_pool[stack_rows[cursor + offset]] for offset in range(n)
                )
                bucket.append(GlobalState(shared_rows[state_index], stacks))
                state_index += 1
                cursor += n
            levels.append(frozenset(bucket))
        # A fresh engine's level 0 is the write-free closure of the
        # initial state — deterministic, so equality is the belonging
        # check (same shape as the explicit/symbolic restores).
        if not levels or levels[0] != engine.levels[0]:
            raise SnapshotError("snapshot does not belong to this CPDS")
        engine.levels = levels
        seen: set = set()
        for level in levels:
            seen |= level
        engine._seen = seen
        engine.visible_levels.clear()
        engine._visible_cumulative.clear()
        for level in levels:
            engine._record_visible(
                frozenset(state.visible() for state in level)
            )
        return engine
    except SnapshotError:
        raise
    except Exception as broken:
        raise SnapshotError(f"wuba snapshot malformed: {broken}") from broken
