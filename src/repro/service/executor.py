"""Engine-run execution for the analysis service: in-thread or on a
process pool, with the PR 5 snapshot codec as the IPC format.

The service's four resolution layers (in-flight dedup, store hit,
snapshot resume, fresh run) all stay parent-side in
:class:`~repro.service.server.AnalysisService` — this module owns only
the *engine run* itself, factored into one function so both execution
modes share it verbatim:

* :func:`execute_job` — restore-or-build an engine, run the requested
  lane to the budget, and package the response plus (when the outcome is
  resumable) a fresh snapshot blob.  The thread executor calls it
  inline; METER bumps land directly on the process counters.
* :class:`ProcessAnalysisExecutor` — ships the same
  :class:`EngineJob` to a pool of worker processes.  The *stored
  snapshot blob is the request message* (the parent checkpoints, the
  worker restores and runs ``ensure_level`` via the engines' resume
  path) and the *result snapshot blob is the reply message* — both in
  the versioned ``CUSN`` framing of :mod:`repro.service.snapshot`, so
  the codec's version/kind validation doubles as IPC hygiene: a worker
  on a mismatched codec surfaces as a
  :class:`~repro.errors.SnapshotError` miss, never a poisoned cache.

IPC protocol invariants (see ROADMAP Reference):

* The parent never trusts a worker-returned blob: the ``CUSN`` header
  is re-validated before the store sees it, and an undecodable blob is
  dropped (``service.ipc_snapshot_rejects``) while the verdict itself
  is kept — degradation, not poisoning.
* Worker METER deltas travel back alongside the outcome and are merged
  into the parent's counters, so ``/meter`` totals are
  executor-invariant (the soak test's oracle check).
* ``service.engine_runs``, in-flight dedup, and store writes stay
  parent-side; a killed worker surfaces as a clean
  :class:`~repro.errors.CubaError`, the broken pool is retired, and the
  job is re-runnable (the next ``run`` spawns a fresh pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.errors import CubaError, SnapshotError
from repro.obs import trace
from repro.obs.logs import get_logger
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.util.meter import METER

_log = get_logger("service.executor")

if TYPE_CHECKING:
    from repro.reach.config import EngineConfig


@dataclass(slots=True)
class EngineJob:
    """One engine run, fully described by picklable values.

    ``engine`` is ``"auto"`` or any registered lane name
    (:mod:`repro.reach.registry`; aliases accepted).  ``config``
    carries the execution knobs
    (:class:`~repro.reach.config.EngineConfig` — a plain frozen
    dataclass, so it pickles across the process boundary); the ``jobs``
    field is the pre-config shim and is only consulted when ``config``
    is ``None``.  ``snapshot`` is the parent's checkpoint of the stored
    engine (or ``None`` on a fingerprint miss / snapshot-less entry):
    the snapshot-as-message half of the IPC protocol.
    """

    cpds: CPDS
    prop: Property
    problem: str
    engine: str = "auto"
    max_rounds: int = 30
    max_states_per_context: int = DEFAULT_STATE_LIMIT
    jobs: int = 1
    snapshot: bytes | None = None
    config: "EngineConfig | None" = None
    #: When True the worker records spans for this job and ships them
    #: home in :attr:`JobOutcome.spans` (set by the process executor
    #: from the parent's live tracing state).
    trace: bool = False

    def engine_config(self) -> "EngineConfig":
        """The effective execution config for this job."""
        from repro.reach.config import EngineConfig

        if self.config is not None:
            return self.config
        return EngineConfig(jobs=self.jobs)


@dataclass
class JobOutcome:
    """What an engine run produced: the wire-ready response dict, the
    store-record columns, the result snapshot blob (when resumable),
    and — on the process path — the worker's METER delta."""

    response: dict
    bound: int
    kind: str
    snapshot: bytes | None = None
    meter: dict = field(default_factory=dict)
    #: Engine wall time (the loadtest harness separates queueing and
    #: transport latency from compute using this).
    seconds: float = 0.0
    #: Worker-side span records (only when :attr:`EngineJob.trace` was
    #: set); the parent re-parents them under its dispatch span via
    #: :func:`repro.obs.trace.adopt`, mirroring the METER-delta merge.
    spans: list = field(default_factory=list)


def describe_result(
    result: VerificationResult,
    problem: str,
    kind: str,
    explored: int,
    resumable: bool,
) -> dict:
    """The service wire form of a verification result."""
    return {
        "fingerprint": problem,
        "verdict": result.verdict.value,
        "bound": result.bound,
        "k": explored,
        "method": result.method,
        "message": result.message,
        "witness": str(result.witness) if result.witness is not None else None,
        "trace": str(result.trace) if result.trace is not None else None,
        "engine": kind,
        "final": result.verdict is not Verdict.UNKNOWN or not resumable,
        "cached": False,
        "deduplicated": False,
    }


def _restore(job: EngineJob):
    """A warm engine from the job's snapshot message, or ``None`` when
    there is nothing (or nothing decodable) to resume from.  The kind
    byte resolves the lane through the registry, so a new lane's
    snapshots resume with no changes here."""
    from repro.reach import registry
    from repro.service.snapshot import snapshot_kind

    if job.snapshot is None:
        return None
    try:
        cls = registry.engine_for_kind(snapshot_kind(job.snapshot))
        engine = cls.restore_engine(
            job.cpds,
            job.snapshot,
            max_states_per_context=job.max_states_per_context,
            config=job.engine_config(),
        )
    except (SnapshotError, CubaError) as broken:
        # Bad blob, or a kind byte no registered lane owns (a snapshot
        # from a lane this build doesn't ship) ⇒ miss, never a crash.
        METER.bump("service.snapshot_rejects")
        _log.warning(
            "snapshot rejected, running fresh",
            extra={
                "fields": {
                    "fingerprint": job.problem,
                    "lane": job.engine,
                    "error": str(broken),
                }
            },
        )
        return None
    METER.bump("service.resumes")
    return engine


def execute_job(job: EngineJob) -> JobOutcome:
    """Run one engine job to a verdict or budget (the shared core of
    both execution modes; ``service.engine_runs`` is the *caller's*
    bump — dedup accounting stays parent-side)."""
    if not trace.enabled():
        return _execute_job(job)
    with trace.span(
        "service.engine_run", problem=job.problem, engine=job.engine
    ) as timing:
        outcome = _execute_job(job)
        timing.set(
            lane=outcome.kind,
            verdict=outcome.response["verdict"],
            resumed=outcome.response["resumed"],
        )
        return outcome


def _execute_job(job: EngineJob) -> JobOutcome:
    import time

    from repro.cuba.lanes import ensure_applicable, run_lane
    from repro.cuba.verifier import Cuba
    from repro.reach import registry

    started = time.perf_counter()
    config = job.engine_config()
    engine = _restore(job)
    resumed = engine is not None
    if job.engine == "auto":  # the Sec. 6 front-end
        verifier = Cuba(
            job.cpds,
            job.prop,
            max_states_per_context=job.max_states_per_context,
            config=config,
        )
        result = verifier.verify(max_rounds=job.max_rounds, engine=engine).result
        engine = verifier.last_engine
        kind = engine.lane if engine is not None else "auto"
    else:
        kind = registry.canonical_lane(job.engine)
        if engine is not None and engine.lane != kind:
            # Fingerprints key snapshots by lane, so this is defensive:
            # a cross-lane blob is a miss, not a mis-resume.
            METER.bump("service.snapshot_rejects")
            engine = None
            resumed = False
        if engine is None:
            cls = registry.engine_class(kind)
            try:
                # Applicability must be checked *before* construction:
                # building e.g. a wuba engine on a non-WCR model
                # diverges into the state-limit guard instead of
                # failing fast.
                ensure_applicable(cls, job.cpds, job.prop)
            except CubaError as precondition:
                # A failed lane precondition is UNKNOWN for a reason
                # deeper k cannot fix: the outcome is *final* (bound 0,
                # not resumable), so the store caches it and repeated
                # requests never rerun the check — the same contract
                # such runs had when they diverged into the state-limit
                # guard instead.
                METER.bump("service.lane_rejects")
                result = VerificationResult(
                    Verdict.UNKNOWN,
                    bound=0,
                    method=f"{cls.preferred_algorithm}({cls.sequence_name})",
                    message=str(precondition),
                )
            else:
                engine = cls.create(
                    job.cpds,
                    max_states_per_context=job.max_states_per_context,
                    config=config,
                )
        if engine is not None:
            result = run_lane(
                engine, job.cpds, job.prop, max_rounds=job.max_rounds
            )

    explored = engine.k if engine is not None else result.bound
    # UNKNOWN below the budget means the run stopped for a reason
    # deeper k cannot fix (explicit-engine divergence): final.
    resumable = result.verdict is Verdict.UNKNOWN and explored >= job.max_rounds
    seconds = time.perf_counter() - started
    response = describe_result(result, job.problem, kind, explored, resumable)
    response["resumed"] = resumed
    response["engine_seconds"] = round(seconds, 4)
    # Resolved replay backend (explicit lane), for the audit log; lanes
    # without a backend notion report None.
    response["backend"] = (
        engine.stats().get("backend") if engine is not None else None
    )
    snapshot = None
    if resumable and engine is not None:
        try:
            snapshot = engine.snapshot()
        except SnapshotError as broken:  # pragma: no cover - defensive
            snapshot = None
            _log.warning(
                "snapshot encode failed, result kept without resume blob",
                extra={
                    "fields": {
                        "fingerprint": job.problem,
                        "lane": kind,
                        "error": str(broken),
                    }
                },
            )
    return JobOutcome(
        response=response, bound=explored, kind=kind, snapshot=snapshot,
        seconds=seconds,
    )


def _execute_in_worker(job: EngineJob) -> JobOutcome:
    """Worker entry point: run the job and ship the METER delta home so
    the parent's counters stay executor-invariant."""
    from repro.util.caches import clear_runtime_caches

    before = METER.snapshot()
    spans: list = []
    if job.trace:
        trace.clear()
        trace.enable()
    try:
        return_value = execute_job(job)
    finally:
        if job.trace:
            spans = trace.take()
            trace.disable()
        # Worker-leased saturation pools (engine jobs with jobs>1) must
        # not outlive the job: the parent cannot reach into a worker to
        # release them on shutdown.
        clear_runtime_caches()
    return_value.spans = spans
    return_value.meter = dict(METER.delta(before))
    return return_value


class ProcessAnalysisExecutor:
    """A lazily spawned pool of engine-run worker processes.

    Lazy spawn mirrors :class:`~repro.reach.parallel.ViewSaturationPool`
    lifecycle semantics: a broken pool is retired on failure and the
    next :meth:`run` call spawns a fresh one, so every failed job is
    re-runnable without restarting the service.
    """

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"executor needs workers >= 1, got {workers}")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        from repro.reach.parallel import _mp_context

        if self._closed:
            raise CubaError("process executor is shut down")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_mp_context()
            )
        return self._pool

    def _retire(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def run(self, job: EngineJob) -> JobOutcome:
        """Execute ``job`` on a worker; merge its METER delta and
        validate its snapshot reply before the caller can store it.

        When the parent is tracing, the job is flagged so the worker
        records spans too; the reply's span records are re-based onto
        this process's clock and re-parented under the dispatch span
        (span-shipping mirrors the METER-delta merge)."""
        if not trace.enabled():
            return self._run(job)
        import time

        job.trace = True
        with trace.span("executor.dispatch", problem=job.problem):
            parent_id = trace.current_id()
            dispatched = time.perf_counter()
            outcome = self._run(job)
            if outcome.spans:
                trace.adopt(outcome.spans, parent=parent_id, at=dispatched)
                outcome.spans = []
        return outcome

    def _run(self, job: EngineJob) -> JobOutcome:
        pool = self._ensure_pool()
        try:
            outcome = pool.submit(_execute_in_worker, job).result()
        except (BrokenProcessPool, OSError) as crash:
            self._retire()
            raise CubaError(
                f"process-pool engine run failed: a worker process died "
                f"({crash.__class__.__name__}: {crash}); nothing was "
                f"recorded — the job is safe to resubmit"
            ) from crash
        except RuntimeError as crash:
            if "shutdown" not in str(crash) and "interpreter" not in str(crash):
                raise
            self._retire()
            raise CubaError(
                f"process-pool engine run failed: the executor was shut "
                f"down mid-job ({crash}); nothing was recorded — the job "
                f"is safe to resubmit"
            ) from crash
        for name, value in outcome.meter.items():
            METER.bump(name, value)
        if outcome.snapshot is not None:
            from repro.service.snapshot import snapshot_kind

            try:
                # Header/version validation only — the full decode runs
                # on the resume path.  An undecodable reply loses its
                # blob, never its verdict, and never reaches the store.
                snapshot_kind(outcome.snapshot)
            except SnapshotError as broken:
                METER.bump("service.ipc_snapshot_rejects")
                _log.warning(
                    "worker snapshot reply rejected, verdict kept",
                    extra={
                        "fields": {
                            "fingerprint": job.problem,
                            "lane": outcome.kind,
                            "error": str(broken),
                        }
                    },
                )
                outcome.snapshot = None
        return outcome

    def close(self) -> None:
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
