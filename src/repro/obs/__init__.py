"""Observability: spans, latency histograms, exposition, audit logging.

METER (:mod:`repro.util.meter`) answers *how much work* an analysis
did; this package answers *where the time went* — per level, per lane,
per request — captured in-band instead of reconstructed from outside
by the loadtest client:

* :mod:`repro.obs.trace` — spans: nested timed regions with
  parent/child links, thread/process ids, near-zero cost while
  disabled, Chrome trace-event export, and cross-process re-parenting
  of worker spans (the METER-delta merge design, applied to timings);
* :mod:`repro.obs.metrics` — always-on fixed-bucket latency histograms
  with interpolated p50/p99 (the server-truth latency story);
* :mod:`repro.obs.prometheus` — ``/metrics`` text exposition (counters
  + histograms) and the small parser the tests and the loadtest's
  server-truth summary share;
* :mod:`repro.obs.logs` — structured logging (``--log-format
  text|json``) and the per-request audit line.

Everything here is stdlib-only, mirroring the rest of the repo.
"""

from repro.obs.metrics import BUCKET_BOUNDS, Histograms, LATENCY, timed
from repro.obs.prometheus import parse_text, render, sanitize
from repro.obs.logs import audit, get_logger, setup_logging
from repro.obs.trace import (
    adopt,
    chrome_trace,
    span,
    write_chrome_trace,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Histograms",
    "LATENCY",
    "adopt",
    "audit",
    "chrome_trace",
    "get_logger",
    "parse_text",
    "render",
    "sanitize",
    "setup_logging",
    "span",
    "timed",
    "write_chrome_trace",
]
