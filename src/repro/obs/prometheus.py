"""Prometheus text exposition (and a matching parser) — zero deps.

:func:`render` turns the METER counter registry and the
:class:`~repro.obs.metrics.Histograms` latency registry into the
Prometheus text format, version 0.0.4: every counter becomes a
``cuba_<name>_total`` counter family, every histogram a
``cuba_<name>_seconds`` histogram family with cumulative ``le``
buckets, ``_sum`` and ``_count`` — the exposition contract the
``/metrics`` endpoint serves and the CI ``obs-smoke`` lane validates.

:func:`parse_text` is the inverse used by the golden test, the smoke
lane, and the loadtest's server-truth latency summary; it is a
deliberately small parser for the subset :func:`render` emits (plus
comments), not a general OpenMetrics reader.
"""

from __future__ import annotations

import re

from repro.obs.metrics import Histograms, LATENCY
from repro.util.meter import METER, Counters

__all__ = ["parse_text", "render", "sanitize"]

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def sanitize(name: str) -> str:
    """A METER/histogram dotted name as a Prometheus metric name."""
    clean = _INVALID.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _labels(pairs: tuple, extra: tuple = ()) -> str:
    items = tuple(pairs) + tuple(extra)
    if not items:
        return ""
    inner = ",".join(
        f'{sanitize(str(key))}="{_escape(value)}"' for key, value in items
    )
    return "{" + inner + "}"


def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format(value: float) -> str:
    # Integral floats print as integers — Prometheus accepts either,
    # the golden test wants a stable spelling.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render(
    counters: Counters | dict | None = None,
    histograms: Histograms | None = None,
    prefix: str = "cuba",
) -> str:
    """The full scrape body: all counters, then all histograms, each
    family sorted by name (stable output for golden tests and diffs)."""
    counts = (
        METER.snapshot()
        if counters is None
        else counters.snapshot()
        if isinstance(counters, Counters)
        else dict(counters)
    )
    lines: list[str] = []
    for name in sorted(counts):
        metric = f"{prefix}_{sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format(counts[name])}")

    cells = (histograms if histograms is not None else LATENCY).snapshot()
    bounds = (histograms if histograms is not None else LATENCY).bounds
    by_family: dict[str, list[tuple[tuple, dict]]] = {}
    for (name, labels), cell in cells.items():
        by_family.setdefault(name, []).append((labels, cell))
    for name in sorted(by_family):
        metric = f"{prefix}_{sanitize(name)}_seconds"
        lines.append(f"# TYPE {metric} histogram")
        for labels, cell in sorted(by_family[name]):
            cumulative = 0
            for bound, count in zip(bounds, cell["buckets"]):
                cumulative += count
                lines.append(
                    f"{metric}_bucket{_labels(labels, (('le', _format(bound)),))} "
                    f"{cumulative}"
                )
            lines.append(
                f'{metric}_bucket{_labels(labels, (("le", "+Inf"),))} '
                f'{cell["count"]}'
            )
            lines.append(
                f"{metric}_sum{_labels(labels)} {_format(cell['sum'])}"
            )
            lines.append(
                f"{metric}_count{_labels(labels)} {cell['count']}"
            )
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_text(text: str) -> dict[str, dict[tuple, float]]:
    """Parse an exposition body into ``metric name -> {sorted label
    tuple -> value}``.  Raises :class:`ValueError` on any line that is
    neither a comment, blank, nor a well-formed sample — the smoke
    lane's "serves valid Prometheus" check."""
    samples: dict[str, dict[tuple, float]] = {}
    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(
                f"line {line_number} is not a Prometheus sample: {line!r}"
            )
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (key, value.replace('\\"', '"').replace("\\\\", "\\"))
                for key, value in _LABEL.findall(labels_text)
            )
        )
        try:
            value = float(match.group("value"))
        except ValueError as bad:
            raise ValueError(
                f"line {line_number} has a non-numeric value: {line!r}"
            ) from bad
        samples.setdefault(match.group("name"), {})[labels] = value
    return samples
