"""Fixed-bucket latency histograms — METER's timing counterpart.

:class:`Histograms` is a lock-guarded registry in the
:class:`repro.util.meter.Counters` mold: ``observe(name, seconds,
**labels)`` drops one duration into the exponential bucket grid below,
keyed by ``(name, labels)``.  Unlike spans (:mod:`repro.obs.trace`),
histograms are **always on** — one lock acquire plus a bisect per
observation, paid only at coarse operation granularity (a request, an
engine run, a store transaction, a snapshot encode), never inside
per-state loops.

p50/p99 come from :meth:`Histograms.percentile` by linear interpolation
within the winning bucket — the server-truth latency numbers the
loadtest previously could only approximate from the client side.  The
``/metrics`` endpoint renders the same registry in Prometheus text form
(:mod:`repro.obs.prometheus`), where cumulative ``le`` buckets let any
scraper derive the same quantiles.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter

__all__ = ["BUCKET_BOUNDS", "Histograms", "LATENCY", "timed"]

#: Upper bounds (seconds) of the finite buckets; observations beyond
#: the last bound land in the implicit +Inf overflow bucket.  Roughly
#: ×2.5 steps from half a millisecond (sub-ms store transactions) to
#: ten seconds (deep engine runs) — 15 buckets, small enough to ship in
#: every scrape, fine enough that interpolated p50/p99 are meaningful.
BUCKET_BOUNDS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histograms:
    """Named fixed-bucket histograms (``(name, labels) -> buckets``)."""

    def __init__(self, bounds: tuple[float, ...] = BUCKET_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        #: key -> [counts per bucket (+1 overflow), total count, sum]
        self._cells: dict[tuple, list] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def observe(self, name: str, seconds: float, **labels) -> None:
        """Record one duration (must be ≥ 0); thread-safe."""
        if seconds < 0:
            raise ValueError(f"durations are non-negative, got {seconds}")
        index = bisect_left(self.bounds, seconds)
        key = self._key(name, labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = [
                    [0] * (len(self.bounds) + 1), 0, 0.0
                ]
            cell[0][index] += 1
            cell[1] += 1
            cell[2] += seconds

    def snapshot(self) -> dict[tuple, dict]:
        """Immutable view: ``(name, labels) -> {"buckets", "count",
        "sum"}`` with per-bucket (non-cumulative) counts."""
        with self._lock:
            return {
                key: {
                    "buckets": tuple(cell[0]),
                    "count": cell[1],
                    "sum": cell[2],
                }
                for key, cell in self._cells.items()
            }

    def percentile(self, name: str, q: float, **labels) -> float | None:
        """The ``q``-quantile (0..1) in seconds, interpolated linearly
        inside the winning bucket; ``None`` when nothing was observed.
        Observations in the +Inf bucket report the last finite bound —
        a floor, like any bucketed quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            cell = self._cells.get(self._key(name, labels))
            if cell is None or not cell[1]:
                return None
            counts, total = list(cell[0]), cell[1]
        return quantile_from_buckets(self.bounds, counts, total, q)

    def reset(self) -> None:
        """Drop every cell (test isolation)."""
        with self._lock:
            self._cells.clear()


def quantile_from_buckets(
    bounds: tuple[float, ...], counts: list[int], total: int, q: float
) -> float:
    """Shared bucket-interpolation core (also used on scraped
    exposition data by the loadtest's server-truth summary)."""
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count:
            lower = bounds[index - 1] if index > 0 else 0.0
            if index >= len(bounds):
                return bounds[-1]
            upper = bounds[index]
            fraction = (rank - previous) / count
            return lower + (upper - lower) * min(1.0, max(0.0, fraction))
    return bounds[-1]


#: Process-wide default registry, mirroring ``util.meter.METER``.
LATENCY = Histograms()


@contextmanager
def timed(name: str, registry: Histograms = LATENCY, **labels):
    """Time a block into ``registry``: ``with timed("store.transaction",
    op="get"): ...``"""
    start = perf_counter()
    try:
        yield
    finally:
        registry.observe(name, perf_counter() - start, **labels)
