"""Spans: in-band timing of the analysis pipeline's phases.

METER (:mod:`repro.util.meter`) counts *work*; spans time *phases*.  A
span is one timed region — ``with span("explicit.level", level=3):`` —
recorded with monotonic start/duration, process and thread ids, and a
parent link to the span that was open on the same thread when it
started, so a whole run renders as a flame chart
(:func:`chrome_trace` emits the ``chrome://tracing`` /
Perfetto trace-event JSON form).

Tracing is **off by default** and costs near nothing while off: the
module-level :data:`_enabled` flag is checked before any allocation, and
a disabled :func:`span` call returns one shared no-op context manager.
The quick-bench overhead gate (``tests/obs/test_overhead.py``, run in
the CI ``obs-smoke`` lane) asserts the disabled-mode cost stays under
2% of end-to-end wall time.

Span records are plain picklable dicts::

    {"name": str, "ts": float, "dur": float, "pid": int, "tid": int,
     "id": int, "parent": int | None, "args": dict}

``ts`` is ``time.perf_counter()`` — meaningful only relative to other
events from the same process.  Worker processes therefore ship their
drained events home (:func:`take`, riding ``JobOutcome.spans`` exactly
like the PR 6 METER-delta merge) and the parent re-bases them onto its
own clock at the dispatch timestamp and links their roots under the
dispatching span (:func:`adopt`) — the flame chart shows worker phases
nested under the parent request even though they ran in another
process.

Naming convention (see ROADMAP Reference): dotted lowercase,
``<layer>.<phase>`` — ``service.request``, ``service.engine_run``,
``lane.run``, ``<lane>.level`` (emitted by the
:class:`~repro.reach.base.ReachabilityEngine` template method, so every
lane — including future ones — inherits per-level spans for free),
``explicit.saturation``, ``explicit.replay_sharded``,
``canonical.form``, ``snapshot.encode``/``decode``,
``store.transaction``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "MAX_EVENTS",
    "adopt",
    "chrome_trace",
    "clear",
    "current_id",
    "disable",
    "enable",
    "enabled",
    "events",
    "span",
    "take",
    "write_chrome_trace",
]

#: Hard cap on buffered events: a traced soak must degrade to a
#: truncated trace, never to unbounded memory.  Drops are counted in
#: :data:`dropped`.
MAX_EVENTS = 65536

_enabled = False
_lock = threading.Lock()
_events: list[dict] = []
_ids = itertools.count(1)
_local = threading.local()

#: Events discarded because the buffer was full (monotone; reset by
#: :func:`clear`).
dropped = 0


def enable() -> None:
    """Turn tracing on (process-wide)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off; buffered events are kept until :func:`clear`."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """True iff spans are currently being recorded."""
    return _enabled


def clear() -> None:
    """Drop all buffered events (capture-mode reset; tests)."""
    global dropped
    with _lock:
        _events.clear()
        dropped = 0


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_id() -> int | None:
    """The id of the innermost open span on this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


class _NullSpan:
    """The shared disabled-mode context manager: no allocation, no
    record.  ``set`` exists so call sites can unconditionally annotate
    the object :func:`span` handed them."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


_NULL = _NullSpan()


class _Span:
    __slots__ = ("name", "args", "_id", "_start")

    def __init__(self, name: str, args: dict) -> None:
        self.name = name
        self.args = args

    def set(self, **args) -> None:
        """Attach/overwrite args after entry (e.g. a hit/miss path only
        known once the body ran)."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._id = next(_ids)
        _stack().append(self._id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        stack = _local.stack
        stack.pop()
        record = {
            "name": self.name,
            "ts": self._start,
            "dur": end - self._start,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "id": self._id,
            "parent": stack[-1] if stack else None,
            "args": self.args,
        }
        global dropped
        with _lock:
            if len(_events) < MAX_EVENTS:
                _events.append(record)
            else:
                dropped += 1
        return False


def span(name: str, **args):
    """A context manager timing one region.  When tracing is disabled
    this returns a shared no-op object before allocating anything."""
    if not _enabled:
        return _NULL
    return _Span(name, args)


def events() -> list[dict]:
    """A snapshot copy of the buffered events."""
    with _lock:
        return list(_events)


def take() -> list[dict]:
    """Drain and return the buffered events (the worker-side half of
    the cross-process shipping protocol)."""
    with _lock:
        drained = list(_events)
        _events.clear()
    return drained


def adopt(
    foreign: list[dict], *, parent: int | None = None, at: float | None = None
) -> list[dict]:
    """Merge events recorded in another process into this buffer.

    ``perf_counter`` clocks are process-local, so the foreign events are
    re-based: their earliest start is aligned to ``at`` (the parent's
    dispatch timestamp; defaults to now).  Top-level foreign spans
    (``parent is None``) are linked under ``parent`` — the parent-side
    span that dispatched the work — while the foreign *internal*
    parent/child links and pid/tid are preserved, so the flame chart
    shows the worker's phases nested inside the dispatching request.
    Span ids are remapped into this process's id space to avoid
    collisions.  Returns the adopted records.
    """
    if not foreign:
        return []
    if at is None:
        at = time.perf_counter()
    offset = at - min(event["ts"] for event in foreign)
    remap = {event["id"]: next(_ids) for event in foreign}
    adopted = []
    for event in foreign:
        record = dict(event)
        record["ts"] = event["ts"] + offset
        record["id"] = remap[event["id"]]
        record["parent"] = (
            remap.get(event["parent"], parent)
            if event["parent"] is not None
            else parent
        )
        adopted.append(record)
    global dropped
    with _lock:
        room = MAX_EVENTS - len(_events)
        _events.extend(adopted[:room])
        dropped += max(0, len(adopted) - room)
    return adopted


def chrome_trace(records: list[dict] | None = None) -> dict:
    """The buffered (or given) events as a Chrome trace-event JSON
    object — one ``"X"`` (complete) event per span, microsecond
    timestamps relative to the earliest event, loadable in
    ``chrome://tracing`` / Perfetto."""
    if records is None:
        records = events()
    base = min((event["ts"] for event in records), default=0.0)
    trace_events = [
        {
            "ph": "X",
            "name": event["name"],
            "ts": round((event["ts"] - base) * 1e6, 3),
            "dur": round(event["dur"] * 1e6, 3),
            "pid": event["pid"],
            "tid": event["tid"],
            "args": {
                **event["args"],
                "span_id": event["id"],
                "parent_id": event["parent"],
            },
        }
        for event in records
    ]
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, records: list[dict] | None = None) -> Path:
    """Write :func:`chrome_trace` JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(records), indent=2) + "\n")
    return path
