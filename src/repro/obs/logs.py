"""Structured logging for the service: one setup, two formats, and the
per-request audit line.

``cuba serve`` historically printed ad-hoc lines (the listening banner,
the degraded-store warning) to stdout/stderr; this module replaces that
with the stdlib :mod:`logging` tree under the ``cuba`` root logger and
a ``--log-format text|json`` switch.  ``json`` emits one JSON object
per line (machine-shippable); ``text`` keeps a human ``key=value``
rendering of the same fields.

:func:`audit` writes the **per-request audit record** — the one
structured line the server emits for every submit, carrying the
fingerprint, lane, resolved backend, store outcome
(hit/dedup/resume/fresh), lease outcome, ``engine_seconds`` vs
``queue_seconds``, and the verdict — to the ``cuba.audit`` logger.  In
both formats the line's payload is valid JSON, so log pipelines parse
it without caring which format the operator picked.
"""

from __future__ import annotations

import json
import logging
import time

__all__ = ["AUDIT_LOGGER", "audit", "get_logger", "setup_logging"]

AUDIT_LOGGER = "cuba.audit"
LOG_FORMATS = ("text", "json")


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``record.fields`` (a dict attached
    via ``extra``) is merged in top-level."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(time.time(), 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False, default=str)


class TextFormatter(logging.Formatter):
    """Human-readable: timestamped message plus ``key=value`` fields."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = f"{stamp} {record.levelname.lower():7s} {record.name}: " \
               f"{record.getMessage()}"
        fields = getattr(record, "fields", None)
        if fields:
            rendered = " ".join(
                f"{key}={json.dumps(value, default=str)}"
                for key, value in fields.items()
            )
            line = f"{line} {rendered}"
        if record.exc_info and record.exc_info[0] is not None:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def setup_logging(
    fmt: str = "text",
    level: int = logging.INFO,
    stream=None,
) -> logging.Logger:
    """Configure the ``cuba`` logger tree for the chosen format and
    return the root ``cuba`` logger.  Idempotent: re-running replaces
    the previously installed handler (tests flip formats freely).
    Only the ``cuba`` subtree is touched — never the root logger of the
    embedding application."""
    if fmt not in LOG_FORMATS:
        raise ValueError(f"unknown log format {fmt!r}; pick one of {LOG_FORMATS}")
    logger = logging.getLogger("cuba")
    for handler in [h for h in logger.handlers if getattr(h, "_cuba", False)]:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler._cuba = True
    handler.setFormatter(JsonFormatter() if fmt == "json" else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``cuba`` tree (``get_logger("service")`` →
    ``cuba.service``)."""
    return logging.getLogger(f"cuba.{name}")


def audit(**fields) -> dict:
    """Emit one audit record on ``cuba.audit`` and return it.

    The message body is the record's canonical JSON, so even a bare
    (unconfigured, text-format) handler line carries machine-parseable
    content; under :class:`JsonFormatter` the same fields also land
    top-level in the output object."""
    record = dict(fields)
    logging.getLogger(AUDIT_LOGGER).info(
        json.dumps(record, sort_keys=True, default=str),
        extra={"fields": record},
    )
    return record
