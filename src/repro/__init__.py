"""CUBA: interprocedural context-unbounded analysis of concurrent programs.

A from-scratch reproduction of Liu & Wahl, PLDI 2018.  The public API:

>>> from repro import Cuba, AlwaysSafe
>>> from repro.models import fig1_cpds
>>> report = Cuba(fig1_cpds(), AlwaysSafe()).verify()
>>> report.verdict.value
'safe'

Key entry points:

* :class:`~repro.cuba.verifier.Cuba` — the Sec. 6 verification front-end;
* :func:`~repro.cuba.scheme1.scheme1_rk`,
  :func:`~repro.cuba.algorithm3.algorithm3` — the individual algorithms;
* :func:`~repro.bp.translate.compile_source` — concurrent Boolean
  programs (App. B) to CPDS;
* :func:`~repro.cpds.format.parse_cpds` — the textual CPDS format;
* :mod:`repro.models` — the paper's benchmark suite.
"""

from repro.bp import compile_source
from repro.core import (
    AlwaysSafe,
    MutualExclusion,
    Property,
    SharedStateReachability,
    Verdict,
    VerificationResult,
    VisiblePredicate,
)
from repro.cpds import CPDS, GlobalState, VisibleState, format_cpds, parse_cpds
from repro.cuba import (
    Cuba,
    CubaReport,
    algorithm3,
    check_fcr,
    context_bounded_analysis,
    quick_check,
    scheme1_rk,
    scheme1_sk,
)
from repro.pds import PDS, Action, PDSState
from repro.reach import ExplicitReach, SymbolicReach

__version__ = "1.0.0"

__all__ = [
    "Action",
    "AlwaysSafe",
    "CPDS",
    "Cuba",
    "CubaReport",
    "ExplicitReach",
    "GlobalState",
    "MutualExclusion",
    "PDS",
    "PDSState",
    "Property",
    "SharedStateReachability",
    "SymbolicReach",
    "Verdict",
    "VerificationResult",
    "VisiblePredicate",
    "VisibleState",
    "algorithm3",
    "check_fcr",
    "context_bounded_analysis",
    "quick_check",
    "compile_source",
    "format_cpds",
    "parse_cpds",
    "scheme1_rk",
    "scheme1_sk",
]
