"""Verification verdicts and result records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.cpds.state import VisibleState
from repro.reach.witness import Trace


class Verdict(enum.Enum):
    """Outcome of a (partial) CUBA verification run."""

    #: The property holds for every context bound (sequence converged).
    SAFE = "safe"
    #: A violation is reachable; ``bound`` is the context bound exposing it.
    UNSAFE = "unsafe"
    #: Round budget exhausted without a conclusion (the algorithms are
    #: semi-decision procedures and need not terminate).
    UNKNOWN = "unknown"


@dataclass(slots=True)
class VerificationResult:
    """Outcome of one algorithm run.

    ``bound`` is the context bound at which the verdict was reached: the
    bound revealing the bug for UNSAFE (Table 2's parenthesized number),
    the collapse point ``kmax`` for SAFE, and the last explored bound for
    UNKNOWN.
    """

    verdict: Verdict
    bound: int
    method: str
    message: str = ""
    witness: VisibleState | None = None
    trace: Trace | None = None
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def is_safe(self) -> bool:
        return self.verdict is Verdict.SAFE

    @property
    def is_unsafe(self) -> bool:
        return self.verdict is Verdict.UNSAFE

    @property
    def conclusive(self) -> bool:
        return self.verdict is not Verdict.UNKNOWN

    def __str__(self) -> str:
        head = f"[{self.method}] {self.verdict.value} at k={self.bound}"
        if self.message:
            head += f": {self.message}"
        if self.witness is not None:
            head += f" (witness {self.witness})"
        return head
