"""Safety properties over visible states.

The paper formulates reachability properties (assertions) over visible
states (Sec. 1: "Most reachability properties, including assertions
inserted into a program, are formulated only over visible states").  A
:class:`Property` is a predicate telling which visible states *violate*
safety; the CUBA algorithms check it against each new ``T(Rk)`` level.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Collection, Hashable, Iterable, Mapping

from repro.cpds.state import VisibleState
from repro.errors import FingerprintError

Shared = Hashable
Symbol = Hashable


class Property(abc.ABC):
    """A safety property ``C``: characterizes the *bad* visible states."""

    @abc.abstractmethod
    def violated_by(self, visible: VisibleState) -> bool:
        """True iff reaching ``visible`` violates the property."""

    def find_violation(self, visibles: Iterable[VisibleState]) -> VisibleState | None:
        """First violating visible state in ``visibles``, or ``None``."""
        for visible in visibles:
            if self.violated_by(visible):
                return visible
        return None

    def describe(self) -> str:
        return type(self).__name__

    def fingerprint_token(self) -> tuple:
        """A canonical, process-independent token identifying this
        property's *semantics*, consumed by the content-addressed
        fingerprint of :mod:`repro.service.fingerprint`.  Two property
        objects with identical semantics must return equal tokens.

        The base implementation refuses: a property that does not
        declare its semantics (e.g. an opaque callable) cannot be
        content-addressed and must not silently collide in the
        persistent analysis store.
        """
        raise FingerprintError(
            f"property {type(self).__name__} is not fingerprintable; "
            "implement fingerprint_token() to use it with the analysis "
            "service"
        )


def _value_token(value) -> tuple[str, str]:
    """Process-independent identity of a model value (shared state or
    stack symbol).  This is the symbol interner's fallback ordering key
    — shared deliberately: the service fingerprint requires property
    tokens and CPDS value tokens to agree, so there is exactly one
    definition of "value identity" in the codebase."""
    from repro.automata.intern import _fallback_key

    return _fallback_key(value)


class SharedStateReachability(Property):
    """Violated when the shared state enters a bad set.

    This is the shape assertion failures compile to: the Boolean-program
    front-end routes failed ``assert`` statements into a dedicated error
    shared state.
    """

    def __init__(self, bad_shared: Collection[Shared]) -> None:
        self.bad_shared = frozenset(bad_shared)

    def violated_by(self, visible: VisibleState) -> bool:
        return visible.shared in self.bad_shared

    def describe(self) -> str:
        bad = ", ".join(sorted(map(str, self.bad_shared)))
        return f"shared state never in {{{bad}}}"

    def fingerprint_token(self) -> tuple:
        return ("shared", tuple(sorted(map(_value_token, self.bad_shared))))


class VisiblePredicate(Property):
    """Violated when a user predicate holds on the visible state."""

    def __init__(
        self, is_bad: Callable[[VisibleState], bool], description: str = ""
    ) -> None:
        self.is_bad = is_bad
        self.description = description

    def violated_by(self, visible: VisibleState) -> bool:
        return bool(self.is_bad(visible))

    def describe(self) -> str:
        return self.description or "visible-state predicate"


class MutualExclusion(Property):
    """Violated when two or more threads sit in critical sections.

    ``critical`` maps a thread index to the set of its top-of-stack
    symbols that mean "inside the critical section" — the paper's
    "mutually exclusive local-state reachability" (Ex. 2).
    """

    def __init__(self, critical: Mapping[int, Collection[Symbol]]) -> None:
        self.critical = {index: frozenset(tops) for index, tops in critical.items()}

    def violated_by(self, visible: VisibleState) -> bool:
        inside = 0
        for index, tops in self.critical.items():
            if index < visible.n_threads and visible.tops[index] in tops:
                inside += 1
                if inside >= 2:
                    return True
        return False

    def describe(self) -> str:
        threads = ", ".join(str(index) for index in sorted(self.critical))
        return f"mutual exclusion among threads {{{threads}}}"

    def fingerprint_token(self) -> tuple:
        return (
            "mutex",
            tuple(
                (index, tuple(sorted(map(_value_token, tops))))
                for index, tops in sorted(self.critical.items())
            ),
        )


class AlwaysSafe(Property):
    """The trivially true property — used to drive pure convergence runs
    (e.g. measuring ``kmax`` without an assertion)."""

    def violated_by(self, visible: VisibleState) -> bool:
        return False

    def describe(self) -> str:
        return "true"

    def fingerprint_token(self) -> tuple:
        return ("true",)


def _atom(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def property_from_spec(spec: str | None) -> Property:
    """Parse the textual property grammar shared by the CLI and the
    analysis-service wire format: ``None`` means trivially safe,
    ``shared:STATE[,STATE...]`` a shared-state reachability property
    (integer-looking tokens become ints, matching the CPDS format's
    atom rule).  There is deliberately one parser: the two entry points
    must agree for service fingerprints to be entry-point independent.
    Raises :class:`ValueError` on anything else — callers wrap it in
    their surface's error type.
    """
    if spec is None:
        return AlwaysSafe()
    kind, _sep, payload = str(spec).partition(":")
    if kind == "shared" and payload:
        return SharedStateReachability({_atom(s) for s in payload.split(",")})
    raise ValueError(
        f"cannot parse property {spec!r}; use shared:STATE[,STATE...]"
    )
