"""Safety properties over visible states.

The paper formulates reachability properties (assertions) over visible
states (Sec. 1: "Most reachability properties, including assertions
inserted into a program, are formulated only over visible states").  A
:class:`Property` is a predicate telling which visible states *violate*
safety; the CUBA algorithms check it against each new ``T(Rk)`` level.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Collection, Hashable, Iterable, Mapping

from repro.cpds.state import VisibleState

Shared = Hashable
Symbol = Hashable


class Property(abc.ABC):
    """A safety property ``C``: characterizes the *bad* visible states."""

    @abc.abstractmethod
    def violated_by(self, visible: VisibleState) -> bool:
        """True iff reaching ``visible`` violates the property."""

    def find_violation(self, visibles: Iterable[VisibleState]) -> VisibleState | None:
        """First violating visible state in ``visibles``, or ``None``."""
        for visible in visibles:
            if self.violated_by(visible):
                return visible
        return None

    def describe(self) -> str:
        return type(self).__name__


class SharedStateReachability(Property):
    """Violated when the shared state enters a bad set.

    This is the shape assertion failures compile to: the Boolean-program
    front-end routes failed ``assert`` statements into a dedicated error
    shared state.
    """

    def __init__(self, bad_shared: Collection[Shared]) -> None:
        self.bad_shared = frozenset(bad_shared)

    def violated_by(self, visible: VisibleState) -> bool:
        return visible.shared in self.bad_shared

    def describe(self) -> str:
        bad = ", ".join(sorted(map(str, self.bad_shared)))
        return f"shared state never in {{{bad}}}"


class VisiblePredicate(Property):
    """Violated when a user predicate holds on the visible state."""

    def __init__(
        self, is_bad: Callable[[VisibleState], bool], description: str = ""
    ) -> None:
        self.is_bad = is_bad
        self.description = description

    def violated_by(self, visible: VisibleState) -> bool:
        return bool(self.is_bad(visible))

    def describe(self) -> str:
        return self.description or "visible-state predicate"


class MutualExclusion(Property):
    """Violated when two or more threads sit in critical sections.

    ``critical`` maps a thread index to the set of its top-of-stack
    symbols that mean "inside the critical section" — the paper's
    "mutually exclusive local-state reachability" (Ex. 2).
    """

    def __init__(self, critical: Mapping[int, Collection[Symbol]]) -> None:
        self.critical = {index: frozenset(tops) for index, tops in critical.items()}

    def violated_by(self, visible: VisibleState) -> bool:
        inside = 0
        for index, tops in self.critical.items():
            if index < visible.n_threads and visible.tops[index] in tops:
                inside += 1
                if inside >= 2:
                    return True
        return False

    def describe(self) -> str:
        threads = ", ".join(str(index) for index in sorted(self.critical))
        return f"mutual exclusion among threads {{{threads}}}"


class AlwaysSafe(Property):
    """The trivially true property — used to drive pure convergence runs
    (e.g. measuring ``kmax`` without an assertion)."""

    def violated_by(self, visible: VisibleState) -> bool:
        return False

    def describe(self) -> str:
        return "true"
