"""The observation-sequence paradigm (paper Sec. 3) — the core abstraction.

An observation sequence ``(Ok)`` maps a resource bound ``k`` to a
monotone, computable observation about a parameterized program.  The
generic verification Scheme 1 increases ``k`` until the sequence appears
to converge, checking the property on the way.  The CUBA instantiations
over ``Rk`` and ``T(Rk)`` live in :mod:`repro.cuba`.
"""

from repro.core.observation import ObservationSequence, run_scheme1
from repro.core.property import (
    AlwaysSafe,
    MutualExclusion,
    Property,
    SharedStateReachability,
    VisiblePredicate,
)
from repro.core.result import Verdict, VerificationResult
from repro.core.terminology import (
    collapses_at,
    first_plateau,
    is_monotone,
    plateaus_at,
    stutters_at,
)

__all__ = [
    "AlwaysSafe",
    "MutualExclusion",
    "ObservationSequence",
    "Property",
    "SharedStateReachability",
    "Verdict",
    "VerificationResult",
    "VisiblePredicate",
    "collapses_at",
    "first_plateau",
    "is_monotone",
    "plateaus_at",
    "run_scheme1",
    "stutters_at",
]
