"""Table 1 terminology over finite sequence prefixes.

The paper defines plateau / stutter / collapse / convergence for infinite
observation sequences; analyses and tests work with finite prefixes, so
the collapse/stutter judgments here are relative to the observed prefix
(a prefix can of course never *prove* convergence — that is the whole
point of the paper's generator machinery).

Observations may be any values supporting ``==`` and, for the
monotonicity check, ``<=`` (set-like containment).
"""

from __future__ import annotations

from collections.abc import Sequence


def is_monotone(prefix: Sequence) -> bool:
    """``Ok ⊆ Ok+1`` for all adjacent pairs of the prefix (Def. 1)."""
    return all(prefix[k] <= prefix[k + 1] for k in range(len(prefix) - 1))


def plateaus_at(prefix: Sequence, k: int) -> bool:
    """``Ok = Ok+1`` — pauses or stops growing (needs index k+1)."""
    if not 0 <= k + 1 < len(prefix):
        raise IndexError(f"plateau at {k} needs observations {k} and {k + 1}")
    return prefix[k] == prefix[k + 1]


def stutters_at(prefix: Sequence, k: int) -> bool:
    """``Ok = Ok+1`` but the prefix grows again later.

    Over a finite prefix this is a *definite* stutter; absence of
    stuttering in the prefix does not preclude stuttering later.
    """
    if not plateaus_at(prefix, k):
        return False
    return any(
        prefix[j] != prefix[j + 1] for j in range(k + 1, len(prefix) - 1)
    )


def collapses_at(prefix: Sequence, k: int) -> bool:
    """All observations from index ``k`` to the end of the prefix agree
    (collapse *relative to the prefix*)."""
    if not 0 <= k < len(prefix):
        raise IndexError(f"index {k} outside prefix of length {len(prefix)}")
    return all(prefix[j] == prefix[k] for j in range(k, len(prefix)))


def first_plateau(prefix: Sequence, start: int = 1) -> int | None:
    """Smallest ``k ≥ start`` with ``Ok−1 = Ok``, or None."""
    for k in range(max(start, 1), len(prefix)):
        if prefix[k - 1] == prefix[k]:
            return k
    return None
