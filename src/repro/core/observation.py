"""The generic Scheme 1 of the paper (Sec. 3).

Scheme 1 works for *any* observation sequence: advance ``k``, report an
error as soon as the property is violated, and report success when the
sequence plateaus.  Its output on plateau is only correct for
stutter-free sequences (paper property (e)); stuttering sequences need
the stronger convergence test of Alg. 3 (:mod:`repro.cuba.algorithm3`).
"""

from __future__ import annotations

import abc

from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.state import VisibleState


class ObservationSequence(abc.ABC):
    """Driver interface for an observation sequence ``(Ok)`` (Def. 1).

    Implementations compute observations lazily: after ``advance`` has
    been called ``k`` times, observations ``O0..Ok`` are determined.
    Monotonicity is the implementation's responsibility.
    """

    @property
    @abc.abstractmethod
    def k(self) -> int:
        """Largest index computed so far."""

    @abc.abstractmethod
    def advance(self) -> None:
        """Compute ``O(k+1)``."""

    @abc.abstractmethod
    def equals_previous(self) -> bool:
        """``O(k−1) = O(k)`` — the plateau test of Scheme 1, Line 4."""

    @abc.abstractmethod
    def find_violation(self, prop: Property) -> VisibleState | None:
        """A property violation witnessed by ``O(k)``, if any
        (expressibility, Def. 1)."""


def run_scheme1(
    sequence: ObservationSequence,
    prop: Property,
    max_rounds: int = 100,
    method: str = "scheme1",
) -> VerificationResult:
    """Scheme 1 (paper page 4): iterate, refute, or detect a plateau.

    Correctness of the SAFE answer relies on the sequence being
    stutter-free; use :func:`repro.cuba.algorithm3.algorithm3` otherwise.
    """
    witness = sequence.find_violation(prop)
    if witness is not None:
        return VerificationResult(
            Verdict.UNSAFE,
            bound=sequence.k,
            method=method,
            message=f"violation of '{prop.describe()}'",
            witness=witness,
        )
    for _round in range(max_rounds):
        sequence.advance()
        witness = sequence.find_violation(prop)
        if witness is not None:
            return VerificationResult(
                Verdict.UNSAFE,
                bound=sequence.k,
                method=method,
                message=f"violation of '{prop.describe()}'",
                witness=witness,
            )
        if sequence.equals_previous():
            return VerificationResult(
                Verdict.SAFE,
                bound=sequence.k,
                method=method,
                message="observation sequence plateaued",
            )
    return VerificationResult(
        Verdict.UNKNOWN,
        bound=sequence.k,
        method=method,
        message=f"no conclusion within {max_rounds} rounds",
    )
