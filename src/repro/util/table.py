"""Minimal ASCII table rendering for benchmark reports."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a left-aligned ASCII table with a header separator."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(text.ljust(width) for text, width in zip(row, widths)).rstrip()

    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)
