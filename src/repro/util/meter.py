"""Wall-clock and peak-memory measurement (Table 2's Time/Mem columns)."""

from __future__ import annotations

import time
import tracemalloc
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Measurement:
    """Result of one measured call."""

    value: Any
    seconds: float
    peak_mb: float

    def __str__(self) -> str:
        return f"{self.seconds:.2f}s / {self.peak_mb:.2f}MB"


def measure(fn: Callable[[], Any]) -> Measurement:
    """Run ``fn`` once, recording wall time and peak Python heap usage.

    ``tracemalloc`` tracks allocations made during the call only (the
    counter is reset first), mirroring the per-benchmark memory column of
    Table 2.  It slows execution somewhat; timings are therefore
    comparable *within* this harness, not against untraced runs.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    value = fn()
    seconds = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    if not already_tracing:
        tracemalloc.stop()
    return Measurement(value=value, seconds=seconds, peak_mb=peak / (1024 * 1024))
