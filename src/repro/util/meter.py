"""Measurement: wall clock, peak memory, and named work counters.

:func:`measure` backs Table 2's Time/Mem columns.  :class:`Counters` is a
registry of named monotone counters threaded through the hot paths (the
``post*`` saturation engine, canonicalization, the abstract explorers) so
benchmarks can report algorithmic work — rule applications, edges added,
cache hits — alongside wall-clock numbers.  The module-level :data:`METER`
is the default registry; :func:`scoped` captures the delta produced by a
region of code without disturbing concurrent totals.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from collections import Counter
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any


class Counters:
    """Named monotone counters (``name -> int``).

    Names are dotted strings, e.g. ``"post_star.rule_applications"``.
    Counters only ever grow; consumers interested in one region of code
    take a :meth:`snapshot` before and :meth:`delta` after (or use the
    :func:`scoped` context manager on the global :data:`METER`).
    """

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()
        # The analysis service (PR 5) runs engines on a thread
        # executor, so the global METER is bumped concurrently;
        # ``counts[name] += amount`` is a non-atomic read-modify-write
        # and would silently drop increments — and METER totals are
        # load-bearing (batching invariants, the service's
        # one-engine-run proofs).  An uncontended lock acquire costs
        # tens of nanoseconds against bumps that are already batched on
        # the hot paths.
        self._lock = threading.Lock()

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (must be ≥ 0); thread-safe."""
        if amount < 0:
            raise ValueError("counters are monotone; amount must be >= 0")
        with self._lock:
            self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Immutable view of all current totals."""
        with self._lock:
            return dict(self._counts)

    def delta(self, since: dict[str, int]) -> dict[str, int]:
        """Per-counter growth relative to an earlier :meth:`snapshot`,
        omitting counters that did not move."""
        out: dict[str, int] = {}
        with self._lock:
            for name, value in self._counts.items():
                grown = value - since.get(name, 0)
                if grown:
                    out[name] = grown
        return out

    def reset(self) -> None:
        """Zero every counter (test isolation; production code never calls
        this)."""
        with self._lock:
            self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counters({dict(self._counts)!r})"


#: Process-wide default registry used by the library's instrumented paths.
METER = Counters()


@contextmanager
def scoped(meter: Counters = METER) -> Iterator[dict[str, int]]:
    """Context manager yielding a dict that, on exit, holds the counter
    deltas produced inside the ``with`` block::

        with scoped() as work:
            post_star(pds)
        work["post_star.rule_applications"]
    """
    before = meter.snapshot()
    delta: dict[str, int] = {}
    try:
        yield delta
    finally:
        delta.update(meter.delta(before))


@dataclass(frozen=True, slots=True)
class Measurement:
    """Result of one measured call."""

    value: Any
    seconds: float
    peak_mb: float

    def __str__(self) -> str:
        return f"{self.seconds:.2f}s / {self.peak_mb:.2f}MB"


def measure(fn: Callable[[], Any]) -> Measurement:
    """Run ``fn`` once, recording wall time and peak Python heap usage.

    ``tracemalloc`` tracks allocations made during the call only (the
    counter is reset first), mirroring the per-benchmark memory column of
    Table 2.  It slows execution somewhat; timings are therefore
    comparable *within* this harness, not against untraced runs.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    value = fn()
    seconds = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    if not already_tracing:
        tracemalloc.stop()
    return Measurement(value=value, seconds=seconds, peak_mb=peak / (1024 * 1024))
