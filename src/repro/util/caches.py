"""Process-global runtime-cache lifecycle — one cleanup path for all.

Several subsystems keep process-global caches: the canonicalization
memo and hash-cons tables (:mod:`repro.automata.canonical`), the
Hopcroft preimage-list cache (:mod:`repro.automata.dense`), and the
leased view-saturation worker pools (:mod:`repro.reach.parallel`).
Before the analysis service existed, only the benchmark runner cleared
them (its cold-run contract); a long-lived daemon that never routed
through the bench path would accumulate canonical tables without bound
and leak pooled worker processes across shutdowns.

:func:`clear_runtime_caches` is the single shared cleanup: the bench
runner's ``_clear_caches``, the analysis server's shutdown path, and
the store's size-pressure eviction hook all call it, so every owner of
a long-lived process drops the same state the same way.
"""

from __future__ import annotations

import sys


def clear_runtime_caches(*, pools: bool = True) -> None:
    """Reset every process-global cache: the canonicalization memo and
    hash-cons table, the Hopcroft pre-cache, and (with ``pools=True``)
    the leased view-saturation worker pools.

    The parallel module is only touched when it was already imported —
    serial processes never pay for (or perturb timings with)
    multiprocessing machinery just to shut down pools they never
    started.
    """
    from repro.automata import canonical, dense

    canonical.canonical_cache_clear()
    dense.pre_cache_clear()
    if pools:
        parallel = sys.modules.get("repro.reach.parallel")
        if parallel is not None:
            parallel.pool_cache_clear()
