"""Measurement and reporting utilities for the benchmark harnesses."""

from repro.util.meter import METER, Counters, Measurement, measure, scoped
from repro.util.table import render_table

__all__ = ["METER", "Counters", "Measurement", "measure", "render_table", "scoped"]
