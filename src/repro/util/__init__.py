"""Measurement and reporting utilities for the benchmark harnesses."""

from repro.util.meter import Measurement, measure
from repro.util.table import render_table

__all__ = ["Measurement", "measure", "render_table"]
