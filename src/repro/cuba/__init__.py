"""CUBA: context-unbounded analysis algorithms (paper Secs. 4–6).

* :mod:`~repro.cuba.generators` — the generator set ``G`` of Eq. (2) and
  Theorem 11.
* :mod:`~repro.cuba.overapprox` — Alg. 2's context-insensitive finite
  abstraction ``M`` and its reachable set ``Z`` (Lemma 12).
* :mod:`~repro.cuba.fcr` — the finite-context-reachability condition
  (Lemma 16 / Theorem 17, Fig. 4).
* :mod:`~repro.cuba.scheme1` — Scheme 1 instantiated with ``(Rk)``.
* :mod:`~repro.cuba.algorithm3` — Alg. 3 over ``(T(Rk))`` (explicit) or
  ``(T(Sk))`` (symbolic) with generator-based stuttering detection.
* :mod:`~repro.cuba.verifier` — the Sec. 6 front-end combining them.
"""

from repro.cuba.generators import GeneratorAnalysis, generator_analysis
from repro.cuba.overapprox import (
    FiniteAbstraction,
    abstract_bug_lower_bound,
    abstract_visible_levels,
    build_abstraction,
    compute_z,
)
from repro.cuba.fcr import FCRReport, check_fcr, thread_shallow_psa
from repro.cuba.scheme1 import RkSequence, scheme1_rk, scheme1_sk
from repro.cuba.algorithm3 import algorithm3
from repro.cuba.cba import context_bounded_analysis
from repro.cuba.quickcheck import quick_check
from repro.cuba.verifier import Cuba, CubaReport

__all__ = [
    "Cuba",
    "CubaReport",
    "context_bounded_analysis",
    "FCRReport",
    "FiniteAbstraction",
    "GeneratorAnalysis",
    "RkSequence",
    "abstract_bug_lower_bound",
    "abstract_visible_levels",
    "algorithm3",
    "build_abstraction",
    "check_fcr",
    "compute_z",
    "generator_analysis",
    "quick_check",
    "scheme1_rk",
    "scheme1_sk",
    "thread_shallow_psa",
]
