"""Scheme 1 instantiated with the global-state sequence ``(Rk)`` (Sec. 4).

``(Rk)`` is stutter-free (Lemma 7), so a plateau *is* a collapse and the
plain Scheme 1 plateau test is sound.  The explicit engine requires
finite context reachability; on non-FCR programs the per-context guard
raises and the run reports UNKNOWN with the explosion diagnosis.
"""

from __future__ import annotations

from repro.core.observation import ObservationSequence
from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.cpds.state import VisibleState
from repro.cuba.lanes import scheme1_lane
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach.config import EngineConfig, merge_legacy_kwargs
from repro.reach.explicit import ExplicitReach
from repro.util.meter import METER


class RkSequence(ObservationSequence):
    """The observation sequence ``k ↦ Rk`` over an explicit engine."""

    def __init__(self, engine: ExplicitReach) -> None:
        self.engine = engine

    @property
    def k(self) -> int:
        return self.engine.k

    def advance(self) -> None:
        self.engine.advance()

    def equals_previous(self) -> bool:
        return self.engine.plateaued_at(self.engine.k)

    def find_violation(self, prop: Property) -> VisibleState | None:
        # Rk refines T(Rk); reachability properties are checked on the
        # projection (they are expressible there, Ex. 2).
        return prop.find_violation(self.engine.visible_up_to())


def scheme1_rk(
    cpds: CPDS,
    prop: Property,
    max_rounds: int = 50,
    max_states_per_context: int = DEFAULT_STATE_LIMIT,
    engine: ExplicitReach | None = None,
    incremental: bool | None = None,
    batched: bool | None = None,
    jobs: int | None = None,
    parallel_saturation: bool = True,
    shard_replay: bool | None = None,
    shard_min_work: int | None = None,
    backend: str | None = None,
    config: EngineConfig | None = None,
) -> VerificationResult:
    """Run Scheme 1(Rk) (paper Sec. 4) to a verdict or round budget.

    Returns UNSAFE with the revealing bound and a witness trace, SAFE
    with the collapse bound ``k0`` (then ``Rk = Rk0`` for all k ≥ k0),
    or UNKNOWN when the budget runs out / FCR is violated.  Every
    result's ``stats["meter"]`` carries the work counters (context-cache
    hits, saturation work) accumulated during this run.

    Execution knobs travel in ``config``
    (:class:`~repro.reach.config.EngineConfig`; the individual
    ``batched``/``jobs``/``shard_replay``/``shard_min_work``/``backend``
    keywords are a deprecated shim), and ``incremental`` /
    ``parallel_saturation`` configure the engine constructed here
    (``batched=False`` selects the seed per-state oracle path;
    ``jobs > 1`` runs the advance across a pool of worker processes,
    see :mod:`repro.reach.parallel`).  All are ignored when a prepared
    ``engine`` instance is passed (configure that engine at
    construction instead).

    ``max_rounds`` is the *total* context-bound budget.  A prepared
    engine may arrive with computed history — warm reuse, or a
    checkpoint restore (:meth:`ExplicitReach.restore`): its existing
    levels are replayed through the verdict checks first and count
    toward the budget, so a run resumed from a level-``k`` snapshot
    reports exactly what an uninterrupted ``max_rounds`` run would.

    This is the explicit lane's instantiation of the generic driver
    :func:`repro.cuba.lanes.scheme1_lane` (sound here by Lemma 7:
    ``(Rk)`` is stutter-free, so a plateau is a collapse).
    """
    config = merge_legacy_kwargs(
        config,
        "scheme1_rk",
        jobs=jobs,
        batched=batched,
        backend=backend,
        shard_replay=shard_replay,
        shard_min_work=shard_min_work,
    )
    if engine is None:
        engine = ExplicitReach(
            cpds,
            max_states_per_context=max_states_per_context,
            incremental=incremental,
            parallel_saturation=parallel_saturation,
            config=config,
        )
    return scheme1_lane(cpds, prop, engine=engine, max_rounds=max_rounds)


def scheme1_sk(
    cpds: CPDS,
    prop: Property,
    max_rounds: int = 50,
    incremental: bool = True,
) -> VerificationResult:
    """Scheme 1 over the symbolic state sets ``Sk`` — a library
    extension beyond the paper's three approaches.

    A round that produces no language-new symbolic state means the
    frontier is empty, so every later ``Sk`` — and hence every ``Rk`` —
    equals the current one: the plateau test is sound.  Unlike
    ``Scheme 1(Rk)`` this works without FCR; unlike ``Alg. 3`` it needs
    no generator machinery, at the price of comparing whole automata
    languages (it cannot converge when stack languages keep growing,
    e.g. Fig. 1).
    """
    from repro.reach.symbolic import SymbolicReach

    meter_before = METER.snapshot()
    engine = SymbolicReach(cpds, incremental=incremental)
    method = "scheme1(Sk)"

    def sk_stats() -> dict:
        return {
            **engine.stats(),
            "meter": METER.delta(meter_before),
        }

    def check(bound: int) -> VerificationResult | None:
        witness = prop.find_violation(engine.visible_new_at(bound))
        if witness is None:
            return None
        return VerificationResult(
            Verdict.UNSAFE,
            bound=bound,
            method=method,
            message=f"violation of '{prop.describe()}'",
            witness=witness,
        )

    result = check(0)
    if result is not None:
        return result
    for _round in range(max_rounds):
        engine.advance()
        k = engine.k
        result = check(k)
        if result is not None:
            return result
        if engine.plateaued_at(k):
            return VerificationResult(
                Verdict.SAFE,
                bound=k,
                method=method,
                message="symbolic state set collapsed (empty frontier)",
                stats=sk_stats(),
            )
    return VerificationResult(
        Verdict.UNKNOWN,
        bound=engine.k,
        method=method,
        message=f"no conclusion within {max_rounds} rounds",
        stats=sk_stats(),
    )
