"""Scheme 1 instantiated with the global-state sequence ``(Rk)`` (Sec. 4).

``(Rk)`` is stutter-free (Lemma 7), so a plateau *is* a collapse and the
plain Scheme 1 plateau test is sound.  The explicit engine requires
finite context reachability; on non-FCR programs the per-context guard
raises and the run reports UNKNOWN with the explosion diagnosis.
"""

from __future__ import annotations

from repro.core.observation import ObservationSequence
from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.cpds.state import VisibleState
from repro.errors import ContextExplosionError
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach.explicit import ExplicitReach
from repro.util.meter import METER


class RkSequence(ObservationSequence):
    """The observation sequence ``k ↦ Rk`` over an explicit engine."""

    def __init__(self, engine: ExplicitReach) -> None:
        self.engine = engine

    @property
    def k(self) -> int:
        return self.engine.k

    def advance(self) -> None:
        self.engine.advance()

    def equals_previous(self) -> bool:
        return self.engine.plateaued_at(self.engine.k)

    def find_violation(self, prop: Property) -> VisibleState | None:
        # Rk refines T(Rk); reachability properties are checked on the
        # projection (they are expressible there, Ex. 2).
        return prop.find_violation(self.engine.visible_up_to())


def scheme1_rk(
    cpds: CPDS,
    prop: Property,
    max_rounds: int = 50,
    max_states_per_context: int = DEFAULT_STATE_LIMIT,
    engine: ExplicitReach | None = None,
    incremental: bool = True,
    batched: bool = True,
    jobs: int = 1,
    parallel_saturation: bool = True,
    shard_replay: bool = True,
    shard_min_work: int | None = None,
    backend: str = "auto",
) -> VerificationResult:
    """Run Scheme 1(Rk) (paper Sec. 4) to a verdict or round budget.

    Returns UNSAFE with the revealing bound and a witness trace, SAFE
    with the collapse bound ``k0`` (then ``Rk = Rk0`` for all k ≥ k0),
    or UNKNOWN when the budget runs out / FCR is violated.  Every
    result's ``stats["meter"]`` carries the work counters (context-cache
    hits, saturation work) accumulated during this run.

    ``incremental``, ``batched``, ``jobs``, ``parallel_saturation``,
    ``shard_replay`` and ``backend`` configure the engine constructed
    here (``backend`` selects the replay arithmetic —
    :mod:`repro.reach.vectorized` — and is a pure execution knob)
    (``batched=False`` selects the seed per-state oracle path;
    ``jobs > 1`` runs the whole advance — view saturation and sharded
    tree replay — across a pool of worker processes, see
    :mod:`repro.reach.parallel`; the two boolean knobs isolate either
    half for benchmarking); all are ignored when a prepared ``engine``
    instance is passed (configure that engine at construction
    instead).

    ``max_rounds`` is the *total* context-bound budget.  A prepared
    engine may arrive with computed history — warm reuse, or a
    checkpoint restore (:meth:`ExplicitReach.restore`): its existing
    levels are replayed through the verdict checks first and count
    toward the budget, so a run resumed from a level-``k`` snapshot
    reports exactly what an uninterrupted ``max_rounds`` run would.
    """
    meter_before = METER.snapshot()
    if engine is None:
        engine = ExplicitReach(
            cpds,
            max_states_per_context=max_states_per_context,
            incremental=incremental,
            batched=batched,
            jobs=jobs,
            parallel_saturation=parallel_saturation,
            shard_replay=shard_replay,
            backend=backend,
            **(
                {}
                if shard_min_work is None
                else {"shard_min_work": shard_min_work}
            ),
        )
    method = "scheme1(Rk)"

    def check(bound: int) -> VerificationResult | None:
        witness = prop.find_violation(engine.visible_new_at(bound))
        if witness is None:
            return None
        state = engine.find_visible(witness)
        trace = engine.trace(state) if state is not None else None
        return VerificationResult(
            Verdict.UNSAFE,
            bound=bound,
            method=method,
            message=f"violation of '{prop.describe()}'",
            witness=witness,
            trace=trace,
            stats=_stats(engine, meter_before),
        )

    def safe(bound: int) -> VerificationResult:
        return VerificationResult(
            Verdict.SAFE,
            bound=bound,
            method=method,
            message="(Rk) collapsed (stutter-free plateau, Lemma 7)",
            stats=_stats(engine, meter_before),
        )

    # Replay the checks over any levels the engine already holds (a
    # fresh engine has only level 0), then advance to the budget.  The
    # replay is capped at the budget: an engine restored from a
    # deeper-than-requested snapshot must not leak verdicts from beyond
    # the bound an uninterrupted ``max_rounds`` run would explore.
    for bound in range(min(engine.k, max_rounds) + 1):
        result = check(bound)
        if result is not None:
            return result
        if engine.plateaued_at(bound):
            return safe(bound)
    try:
        while engine.k < max_rounds:
            engine.advance()
            k = engine.k
            result = check(k)
            if result is not None:
                return result
            if engine.plateaued_at(k):
                return safe(k)
    except ContextExplosionError as explosion:
        return VerificationResult(
            Verdict.UNKNOWN,
            bound=engine.k,
            method=method,
            message=f"explicit engine diverged: {explosion}",
            stats=_stats(engine, meter_before),
        )
    return VerificationResult(
        Verdict.UNKNOWN,
        # min(): a deeper-than-budget restored engine reports the bound
        # an uninterrupted max_rounds run would have reached.
        bound=min(engine.k, max_rounds),
        method=method,
        message=f"no conclusion within {max_rounds} rounds",
        stats=_stats(engine, meter_before),
    )


def _stats(engine: ExplicitReach, meter_before: dict) -> dict:
    return {
        **engine.stats(),
        "visible_states": len(engine.visible_up_to()),
        "meter": METER.delta(meter_before),
    }


def scheme1_sk(
    cpds: CPDS,
    prop: Property,
    max_rounds: int = 50,
    incremental: bool = True,
) -> VerificationResult:
    """Scheme 1 over the symbolic state sets ``Sk`` — a library
    extension beyond the paper's three approaches.

    A round that produces no language-new symbolic state means the
    frontier is empty, so every later ``Sk`` — and hence every ``Rk`` —
    equals the current one: the plateau test is sound.  Unlike
    ``Scheme 1(Rk)`` this works without FCR; unlike ``Alg. 3`` it needs
    no generator machinery, at the price of comparing whole automata
    languages (it cannot converge when stack languages keep growing,
    e.g. Fig. 1).
    """
    from repro.reach.symbolic import SymbolicReach

    meter_before = METER.snapshot()
    engine = SymbolicReach(cpds, incremental=incremental)
    method = "scheme1(Sk)"

    def sk_stats() -> dict:
        return {
            **engine.stats(),
            "meter": METER.delta(meter_before),
        }

    def check(bound: int) -> VerificationResult | None:
        witness = prop.find_violation(engine.visible_new_at(bound))
        if witness is None:
            return None
        return VerificationResult(
            Verdict.UNSAFE,
            bound=bound,
            method=method,
            message=f"violation of '{prop.describe()}'",
            witness=witness,
        )

    result = check(0)
    if result is not None:
        return result
    for _round in range(max_rounds):
        engine.advance()
        k = engine.k
        result = check(k)
        if result is not None:
            return result
        if engine.plateaued_at(k):
            return VerificationResult(
                Verdict.SAFE,
                bound=k,
                method=method,
                message="symbolic state set collapsed (empty frontier)",
                stats=sk_stats(),
            )
    return VerificationResult(
        Verdict.UNKNOWN,
        bound=engine.k,
        method=method,
        message=f"no conclusion within {max_rounds} rounds",
        stats=sk_stats(),
    )
