"""Finite context reachability (paper Sec. 5, Lemma 16, Theorem 17).

``Rk`` is finite for every ``k`` if, for each thread ``i``, the set
``R(Q×Σ≤1_i)`` of states reachable from shallow configurations is finite
(Thm. 17).  That set is regular: we build its pushdown store automaton by
``post*`` saturation and decide finiteness by cycle analysis (Fig. 4:
"the absence of loops ... implies their languages are finite").

When FCR holds the explicit engine may represent every ``Rk``
extensionally; otherwise the symbolic engine must be used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpds.cpds import CPDS
from repro.pds.pds import PDS
from repro.pds.psa import PSA
from repro.pds.saturation import shallow_configs_psa


def thread_shallow_psa(pds: PDS) -> PSA:
    """The PSA for ``post*(Q×Σ≤1)`` of one thread (Fig. 4's automata)."""
    return shallow_configs_psa(pds)


@dataclass(frozen=True, slots=True)
class FCRReport:
    """Outcome of the FCR analysis for a CPDS.

    ``thread_finite[i]`` is the Lemma 16 premise for thread ``i``;
    ``holds`` is Theorem 17's conclusion (all premises true).  The check
    is *sufficient*: a False does not prove some ``Rk`` infinite in
    general (the paper leaves decidability of FCR open), though for
    threads whose shallow reach is infinite within one context — the
    common case — it is also necessary in practice.
    """

    thread_finite: tuple[bool, ...]
    thread_has_loop: tuple[bool, ...]

    @property
    def holds(self) -> bool:
        return all(self.thread_finite)

    def __str__(self) -> str:
        verdicts = ", ".join(
            f"P{index + 1}:{'finite' if finite else 'infinite'}"
            for index, finite in enumerate(self.thread_finite)
        )
        return f"FCR {'holds' if self.holds else 'fails'} ({verdicts})"


def check_fcr(cpds: CPDS) -> FCRReport:
    """Decide the Theorem 17 premise for every thread of a CPDS.

    ``thread_finite`` uses the exact language-finiteness criterion
    (useful cycles pumping a real symbol); ``thread_has_loop`` records
    the paper's coarser graph-loop check of Fig. 4 for comparison.
    """
    finite: list[bool] = []
    loops: list[bool] = []
    for pds in cpds.threads:
        psa = thread_shallow_psa(pds)
        finite.append(psa.language_is_finite())
        loops.append(psa.has_loop())
    return FCRReport(tuple(finite), tuple(loops))
