"""Generator sets (paper Sec. 4.1.1–4.1.2, Eq. 2, Theorem 11).

A generator set ``G`` certifies convergence: if the visible-state
sequence plateaus *and* every reachable generator has already been seen,
the sequence has collapsed (Def. 10).  The paper's concrete ``G`` is
purely syntactic — visible states in which some thread's visible state
could have just emerged from a pop::

    G = { ⟨q|σ1,...,σn⟩ : ∃i. (q,ε) is the target of a pop edge in Δi
                          and (σi = ε or (?,?σi) is the target of a
                               push edge in Δi) }

``G`` leaves the other threads' symbols arbitrary, so it is huge; we keep
it *intensionally* (pop-target shared states and emerging symbols per
thread) and only ever intersect it with finite sets such as ``Z``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.cpds.cpds import CPDS
from repro.cpds.state import VisibleState
from repro.pds.action import ActionKind
from repro.pds.state import EMPTY

Shared = Hashable
Symbol = Hashable


@dataclass(frozen=True, slots=True)
class GeneratorAnalysis:
    """Intensional representation of the generator set ``G`` of Eq. (2).

    ``pop_targets[i]`` — shared states that some pop of thread ``i``
    can produce; ``emerging[i]`` — symbols ``ρ1`` written under the top
    by some push of thread ``i`` (the candidates to surface after a
    pop).
    """

    pop_targets: tuple[frozenset[Shared], ...]
    emerging: tuple[frozenset[Symbol], ...]

    @property
    def n_threads(self) -> int:
        return len(self.pop_targets)

    def is_generator(self, visible: VisibleState) -> bool:
        """Membership of a visible state in ``G`` (Eq. 2)."""
        for index in range(min(self.n_threads, visible.n_threads)):
            if visible.shared not in self.pop_targets[index]:
                continue
            top = visible.tops[index]
            if top is EMPTY or top in self.emerging[index]:
                return True
        return False

    def intersect(self, visibles: Iterable[VisibleState]) -> frozenset[VisibleState]:
        """``G ∩ visibles`` for a finite collection (e.g. ``G ∩ Z``)."""
        return frozenset(v for v in visibles if self.is_generator(v))


def generator_analysis(cpds: CPDS) -> GeneratorAnalysis:
    """Extract Eq. (2)'s ingredients syntactically from the programs.

    Pop edges are actions consuming a symbol and writing nothing; the
    empty-stack "overwrites" ``(q,ε)→(q',ε)`` do not pop anything and are
    excluded.  Push edges contribute their under-symbol ``ρ1``.
    """
    pop_targets: list[frozenset[Shared]] = []
    emerging: list[frozenset[Symbol]] = []
    for pds in cpds.threads:
        pops: set[Shared] = set()
        unders: set[Symbol] = set()
        for action in pds.actions:
            kind = action.kind
            if kind is ActionKind.POP:
                pops.add(action.to_shared)
            elif kind is ActionKind.PUSH:
                unders.add(action.write[1])
        pop_targets.append(frozenset(pops))
        emerging.append(frozenset(unders))
    return GeneratorAnalysis(tuple(pop_targets), tuple(emerging))
