"""Sound zero-iteration verification via the overapproximation ``Z``.

By Lemma 12, ``T(R) ⊆ Z``.  If no visible state in ``Z`` violates the
property, the program is safe for *every* context bound — without
computing a single ``Rk``.  This realizes, in its simplest form, the
abstract-interpretation direction the paper's conclusion raises
(computing visible-state information without the exact sets): ``Z`` is
exactly the limit of the context-insensitive abstract sequence.

The check is sound but very incomplete: a violation inside ``Z`` says
nothing (``Z`` overapproximates), so the result is then UNKNOWN and the
real algorithms must run.  The Cuba front-end exposes it as an optional
fast path.
"""

from __future__ import annotations

from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.cuba.overapprox import compute_z


def quick_check(cpds: CPDS, prop: Property) -> VerificationResult:
    """Try to prove ``prop`` from ``Z`` alone.

    Returns SAFE (bound 0 — no exploration happened) when every state
    of ``Z`` satisfies the property, otherwise UNKNOWN carrying the
    abstract witness in ``stats["abstract_witness"]``.
    """
    z = compute_z(cpds)
    witness = prop.find_violation(z)
    if witness is None:
        return VerificationResult(
            Verdict.SAFE,
            bound=0,
            method="quick-check(Z)",
            message=(
                "no state of the context-insensitive overapproximation Z "
                "violates the property (sound by Lemma 12)"
            ),
            stats={"Z": len(z)},
        )
    return VerificationResult(
        Verdict.UNKNOWN,
        bound=0,
        method="quick-check(Z)",
        message="Z contains a (possibly spurious) violation",
        stats={"Z": len(z), "abstract_witness": witness},
    )
