"""Plain context-bounded analysis — the Qadeer/Rehof baseline [35].

This is what JMoped implements (BDD-based) and what the paper compares
against in Fig. 5: explore reachability up to a *fixed* context bound
and report any violation found.  It can refute but never prove — a safe
answer only means "no bug within k contexts" (the fundamental CBA
limitation the CUBA algorithms remove).

Both engines are supported; the symbolic one matches JMoped's
pushdown-store-automata representation and is the Fig. 5 baseline.
"""

from __future__ import annotations

from repro.automata.canonical import canonical_cache_info
from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.errors import ContextExplosionError
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach.base import ReachabilityEngine
from repro.reach.explicit import ExplicitReach
from repro.reach.symbolic import SymbolicReach
from repro.util.meter import METER


def context_bounded_analysis(
    cpds: CPDS,
    prop: Property,
    bound: int,
    engine: ReachabilityEngine | str = "symbolic",
    max_states_per_context: int = DEFAULT_STATE_LIMIT,
    incremental: bool = True,
    batched: bool = True,
    jobs: int = 1,
    shard_replay: bool = True,
    backend: str = "auto",
) -> VerificationResult:
    """Check ``prop`` for executions with at most ``bound`` contexts.

    Returns UNSAFE with the minimal revealing bound, or UNKNOWN with
    message "no violation within k contexts" — never SAFE, because CBA
    underapproximates (Sec. 7: "a bug which requires more than that
    bound to manifest will slip through").

    ``incremental`` enables cross-expansion reuse in the engine
    constructed here (context-tree memoization for explicit, expansion
    memoization for symbolic); ``batched`` selects view-batched frontier
    expansion (``False`` = the per-state oracle path; the symbolic
    engine has its own ``batched`` default); ``jobs > 1`` runs the
    explicit engine's whole advance — view saturation and (unless
    ``shard_replay=False``) sharded tree replay — across worker
    processes (:mod:`repro.reach.parallel`; the symbolic engine ignores
    both).  All
    are ignored when a prepared engine instance is passed.  The UNKNOWN
    result's ``stats["meter"]`` records the saturation/cache/
    frontier-batching work counters this analysis produced, plus the
    canonicalization cache state and the per-engine summary — the
    numbers the BENCH harness (:mod:`repro.bench.runner`) persists.
    """
    meter_before = METER.snapshot()
    if isinstance(engine, str):
        if engine == "explicit":
            engine = ExplicitReach(
                cpds,
                max_states_per_context=max_states_per_context,
                incremental=incremental,
                batched=batched,
                jobs=jobs,
                shard_replay=shard_replay,
                backend=backend,
            )
        elif engine == "symbolic":
            engine = SymbolicReach(cpds, incremental=incremental)
        else:
            raise ValueError(f"unknown engine {engine!r}")
    method = f"cba(k={bound})"

    witness = prop.find_violation(engine.visible_up_to(0))
    if witness is not None:
        return VerificationResult(
            Verdict.UNSAFE, bound=0, method=method, witness=witness,
            message=f"violation of '{prop.describe()}'",
        )
    try:
        while engine.k < bound:
            engine.advance()
            witness = prop.find_violation(engine.visible_new_at(engine.k))
            if witness is not None:
                return VerificationResult(
                    Verdict.UNSAFE, bound=engine.k, method=method, witness=witness,
                    message=f"violation of '{prop.describe()}'",
                )
    except ContextExplosionError as explosion:
        return VerificationResult(
            Verdict.UNKNOWN, bound=engine.k, method=method,
            message=f"explicit engine diverged: {explosion}",
        )
    stats = {
        "visible_states": len(engine.visible_up_to()),
        "meter": METER.delta(meter_before),
        "canonical_cache": canonical_cache_info(),
    }
    if isinstance(engine, SymbolicReach):
        stats["symbolic"] = engine.stats()
    elif isinstance(engine, ExplicitReach):
        stats["explicit"] = engine.stats()
    return VerificationResult(
        Verdict.UNKNOWN, bound=bound, method=method,
        message=f"no violation within {bound} contexts (CBA cannot prove safety)",
        stats=stats,
    )
