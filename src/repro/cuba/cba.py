"""Plain context-bounded analysis — the Qadeer/Rehof baseline [35].

This is what JMoped implements (BDD-based) and what the paper compares
against in Fig. 5: explore reachability up to a *fixed* context bound
and report any violation found.  It can refute but never prove — a safe
answer only means "no bug within k contexts" (the fundamental CBA
limitation the CUBA algorithms remove).

Every registered lane is supported; the symbolic one matches JMoped's
pushdown-store-automata representation and is the Fig. 5 baseline.
"""

from __future__ import annotations

from repro.automata.canonical import canonical_cache_info
from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.errors import ContextExplosionError, CubaError
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach import registry
from repro.reach.base import ReachabilityEngine
from repro.reach.config import EngineConfig, merge_legacy_kwargs
from repro.util.meter import METER


def context_bounded_analysis(
    cpds: CPDS,
    prop: Property,
    bound: int,
    engine: ReachabilityEngine | str = "symbolic",
    max_states_per_context: int = DEFAULT_STATE_LIMIT,
    incremental: bool | None = None,
    batched: bool | None = None,
    jobs: int | None = None,
    shard_replay: bool | None = None,
    backend: str | None = None,
    config: EngineConfig | None = None,
) -> VerificationResult:
    """Check ``prop`` for executions with at most ``bound`` contexts.

    Returns UNSAFE with the minimal revealing bound, or UNKNOWN with
    message "no violation within k contexts" — never SAFE, because CBA
    underapproximates (Sec. 7: "a bug which requires more than that
    bound to manifest will slip through").

    ``engine`` accepts any registered lane name (aliases included, see
    :mod:`repro.reach.registry`) or a prepared engine instance.
    Execution knobs travel in ``config``
    (:class:`~repro.reach.config.EngineConfig`; the individual
    ``batched``/``jobs``/``shard_replay``/``backend`` keywords are a
    deprecated shim) — each lane applies the knobs it understands.  All
    are ignored when a prepared engine instance is passed.  The UNKNOWN
    result's ``stats["meter"]`` records the saturation/cache/
    frontier-batching work counters this analysis produced, plus the
    canonicalization cache state and the per-engine summary — the
    numbers the BENCH harness (:mod:`repro.bench.runner`) persists.
    """
    meter_before = METER.snapshot()
    config = merge_legacy_kwargs(
        config,
        "context_bounded_analysis",
        jobs=jobs,
        batched=batched,
        backend=backend,
        shard_replay=shard_replay,
    )
    if incremental is not None:
        config = config.replace(incremental=incremental)
    if isinstance(engine, str):
        try:
            name = registry.canonical_lane(engine)
        except CubaError as error:
            raise ValueError(f"unknown engine {engine!r}") from error
        engine = registry.create(
            name,
            cpds,
            max_states_per_context=max_states_per_context,
            config=config,
        )
    method = f"cba(k={bound})"

    witness = prop.find_violation(engine.visible_up_to(0))
    if witness is not None:
        return VerificationResult(
            Verdict.UNSAFE, bound=0, method=method, witness=witness,
            message=f"violation of '{prop.describe()}'",
        )
    try:
        while engine.k < bound:
            engine.advance()
            witness = prop.find_violation(engine.visible_new_at(engine.k))
            if witness is not None:
                return VerificationResult(
                    Verdict.UNSAFE, bound=engine.k, method=method, witness=witness,
                    message=f"violation of '{prop.describe()}'",
                )
    except ContextExplosionError as explosion:
        return VerificationResult(
            Verdict.UNKNOWN, bound=engine.k, method=method,
            message=f"{engine.lane} engine diverged: {explosion}",
        )
    stats = {
        "visible_states": len(engine.visible_up_to()),
        "meter": METER.delta(meter_before),
        "canonical_cache": canonical_cache_info(),
    }
    if engine.lane:
        stats[engine.lane] = engine.stats()
    return VerificationResult(
        Verdict.UNKNOWN, bound=bound, method=method,
        message=f"no violation within {bound} contexts (CBA cannot prove safety)",
        stats=stats,
    )
