"""The CUBA front-end (paper Sec. 6).

Given a CPDS and a property, Cuba first decides FCR.  If it holds, both
explicit methods run "in parallel" — here deterministically interleaved
on one shared engine, evaluating both termination tests every round and
reporting whichever concludes first, exactly the observable behavior of
the paper's two computation threads.  Otherwise the symbolic
``Alg. 3(T(Sk))`` runs alone::

    Input: a CPDS Pn and a property C
    1: if Pn satisfies FCR then
    2:     Alg. 3(T(Rk)) ∥ Scheme 1(Rk)
    3: else
    4:     Alg. 3(T(Sk))
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.cuba.algorithm3 import algorithm3
from repro.cuba.fcr import FCRReport, check_fcr
from repro.cuba.generators import generator_analysis
from repro.cuba.lanes import run_lane
from repro.cuba.overapprox import compute_z
from repro.errors import ContextExplosionError, CubaError
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach import registry
from repro.reach.base import ReachabilityEngine
from repro.reach.config import EngineConfig, merge_legacy_kwargs


@dataclass(slots=True)
class CubaReport:
    """Full outcome of a Cuba run.

    ``result`` is the winning verdict; ``winner`` names the method that
    produced it.  ``rk_bound`` / ``trk_bound`` are the collapse bounds of
    ``(Rk)`` and ``(T(Rk))`` when determined; a method interrupted by the
    other's success reports only the lower bound ``≥ interrupted_at``
    (Table 2's ``≥`` entries).
    """

    fcr: FCRReport
    result: VerificationResult
    winner: str
    rk_bound: int | None = None
    trk_bound: int | None = None
    interrupted_at: int | None = None

    @property
    def verdict(self) -> Verdict:
        return self.result.verdict

    def bound_text(self, which: str) -> str:
        """Table 2 style rendering of a kmax column (``"rk"``/``"trk"``)."""
        bound = self.rk_bound if which == "rk" else self.trk_bound
        if bound is not None:
            return str(bound)
        if self.interrupted_at is not None:
            return f"≥{self.interrupted_at}"
        return "-"


class Cuba:
    """Verifier implementing the overall procedure of Sec. 6."""

    def __init__(
        self,
        cpds: CPDS,
        prop: Property,
        max_states_per_context: int = DEFAULT_STATE_LIMIT,
        jobs: int | None = None,
        shard_replay: bool | None = None,
        backend: str | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.cpds = cpds
        self.prop = prop
        self.max_states_per_context = max_states_per_context
        #: Execution knobs forwarded to whatever engine :meth:`verify`
        #: constructs (:class:`~repro.reach.config.EngineConfig`; the
        #: individual ``jobs``/``shard_replay``/``backend`` keywords are
        #: a deprecated shim) — each lane applies what it understands.
        self.config = merge_legacy_kwargs(
            config, "Cuba", jobs=jobs, shard_replay=shard_replay, backend=backend
        )
        #: The reachability engine the last :meth:`verify` call ran on
        #: (the lane the registry/FCR dispatch selected) — the handle
        #: the analysis service snapshots for deeper-``k`` resume.
        self.last_engine: ReachabilityEngine | None = None

    # ------------------------------------------------------------------
    def verify(
        self,
        max_rounds: int = 50,
        engine: ReachabilityEngine | str | None = None,
    ) -> CubaReport:
        """Run the front-end procedure and collect the full report.

        ``engine`` selects the lane:

        * ``None`` — the paper's auto procedure: FCR decides between
          the explicit pair race and the symbolic ``Alg. 3(T(Sk))``.
        * a registered lane name (or alias) — run exactly that lane via
          :func:`repro.cuba.lanes.run_lane`, e.g. ``"wuba"``.
        * a prepared engine instance of the lane FCR selects — warm
          reuse, or a checkpoint restore.  Its existing levels are
          replayed through the verdict checks and count toward the
          ``max_rounds`` total-bound budget, so a resumed run reports
          exactly what an uninterrupted run would.
        """
        if isinstance(engine, str):
            return self._verify_lane(engine, max_rounds)
        fcr = check_fcr(self.cpds)
        if fcr.holds:
            return self._verify_explicit_pair(fcr, max_rounds, engine)
        if engine is None:
            engine = registry.create("symbolic", self.cpds, config=self.config)
        elif engine.lane != "symbolic":
            raise ValueError(
                "FCR fails: the prepared engine must be from the "
                f"'symbolic' lane, got lane {engine.lane!r} "
                f"(registered lanes: {', '.join(registry.lane_names())})"
            )
        self.last_engine = engine
        result = algorithm3(
            self.cpds, self.prop, engine=engine, max_rounds=max_rounds
        )
        trk = result.bound if result.verdict is Verdict.SAFE else None
        return CubaReport(
            fcr=fcr,
            result=result,
            winner=result.method,
            trk_bound=trk,
            # (Rk) is never tracked on the symbolic path; report the
            # Table 2 style lower bound "≥ explored".
            interrupted_at=result.bound,
        )

    # ------------------------------------------------------------------
    def _verify_lane(self, lane: str, max_rounds: int) -> CubaReport:
        """Run one named lane to a verdict and wrap it in a report.

        The lane's own ``applicable`` precondition replaces the FCR
        dispatch; Table 2's ``(Rk)``/``(T(Rk))`` bound columns are
        specific to the auto procedure, so a named-lane report carries
        only the explored bound (``interrupted_at``)."""
        name = registry.canonical_lane(lane)
        cls = registry.engine_class(name)
        if not cls.applicable(self.cpds, self.prop):
            raise CubaError(
                f"lane {name!r} is not applicable to this model "
                "(its precondition failed); applicable lanes: "
                f"{', '.join(registry.applicable_lanes(self.cpds, self.prop)) or 'none'}"
            )
        prepared = cls.create(
            self.cpds,
            max_states_per_context=self.max_states_per_context,
            config=self.config,
        )
        self.last_engine = prepared
        result = run_lane(prepared, self.cpds, self.prop, max_rounds=max_rounds)
        return CubaReport(
            fcr=check_fcr(self.cpds),
            result=result,
            winner=result.method,
            interrupted_at=result.bound,
        )

    # ------------------------------------------------------------------
    def _verify_explicit_pair(
        self,
        fcr: FCRReport,
        max_rounds: int,
        engine: ReachabilityEngine | None = None,
    ) -> CubaReport:
        """Alg. 3(T(Rk)) ∥ Scheme 1(Rk) on one shared explicit engine."""
        if engine is None:
            engine = registry.create(
                "explicit",
                self.cpds,
                max_states_per_context=self.max_states_per_context,
                config=self.config,
            )
        elif engine.lane != "explicit":
            raise ValueError(
                "FCR holds: the prepared engine must be from the "
                f"'explicit' lane, got lane {engine.lane!r} "
                f"(registered lanes: {', '.join(registry.lane_names())})"
            )
        self.last_engine = engine
        analysis = generator_analysis(self.cpds)
        reachable_generators = analysis.intersect(compute_z(self.cpds))

        witness = self.prop.find_violation(engine.visible_up_to(0))
        if witness is not None:
            return self._unsafe_report(fcr, engine, 0, witness)

        rk_bound: int | None = None
        trk_bound: int | None = None

        def examine(k: int) -> CubaReport | None:
            """Both methods' per-bound checks; a report ends the race."""
            nonlocal rk_bound, trk_bound
            witness = self.prop.find_violation(engine.visible_new_at(k))
            if witness is not None:
                return self._unsafe_report(fcr, engine, k, witness)

            if rk_bound is None and engine.plateaued_at(k):
                rk_bound = k  # (Rk) collapsed (Lemma 7)
            if trk_bound is None:
                new_plateau = (
                    not engine.visible_new_at(k) and engine.visible_new_at(k - 1)
                )
                if new_plateau and reachable_generators <= engine.visible_up_to(k):
                    trk_bound = k - 1  # (T(Rk)) collapsed (Thm. 11)

            if rk_bound is None and trk_bound is None:
                return None
            winner = "scheme1(Rk)" if trk_bound is None else "alg3(T(Rk))"
            result = VerificationResult(
                Verdict.SAFE,
                bound=trk_bound if trk_bound is not None else rk_bound,
                method=winner,
                message="observation sequence converged",
                stats={
                    "global_states": engine.n_states,
                    "visible_states": len(engine.visible_up_to()),
                },
            )
            return CubaReport(
                fcr=fcr,
                result=result,
                winner=winner,
                rk_bound=rk_bound,
                trk_bound=trk_bound,
                interrupted_at=k,
            )

        try:
            # Replay bounds the engine already holds (a fresh engine has
            # only level 0), then advance to the budget.  Capped at the
            # budget: a deeper-than-requested restored engine must not
            # leak verdicts past what an uninterrupted run explores.
            for k in range(1, min(engine.k, max_rounds) + 1):
                report = examine(k)
                if report is not None:
                    return report
            while engine.k < max_rounds:
                engine.advance()
                report = examine(engine.k)
                if report is not None:
                    return report
        except ContextExplosionError as explosion:
            result = VerificationResult(
                Verdict.UNKNOWN,
                bound=engine.k,
                method="cuba",
                message=f"{engine.lane} engine diverged: {explosion}",
            )
            return CubaReport(
                fcr=fcr, result=result, winner="none", interrupted_at=engine.k
            )

        explored = min(engine.k, max_rounds)
        result = VerificationResult(
            Verdict.UNKNOWN,
            bound=explored,
            method="cuba",
            message=f"no conclusion within {max_rounds} rounds",
        )
        return CubaReport(fcr=fcr, result=result, winner="none", interrupted_at=explored)

    # ------------------------------------------------------------------
    def _unsafe_report(
        self, fcr: FCRReport, engine: ReachabilityEngine, bound: int, witness
    ) -> CubaReport:
        state = engine.find_visible(witness)
        trace = engine.trace(state) if state is not None else None
        result = VerificationResult(
            Verdict.UNSAFE,
            bound=bound,
            method="cuba",
            message=f"violation of '{self.prop.describe()}'",
            witness=witness,
            trace=trace,
        )
        return CubaReport(
            fcr=fcr,
            result=result,
            winner="cuba",
            rk_bound=None,
            trk_bound=None,
            interrupted_at=bound,
        )
