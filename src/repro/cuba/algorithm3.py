"""Alg. 3: CUBA over ``(T(Rk))`` with stuttering detection (Sec. 4.1.4).

The visible-state sequence converges by finiteness of its domain but can
stutter, so the plain plateau test is unsound.  Alg. 3 strengthens it:
on reaching a *new* plateau (``|T(Rk−2)| < |T(Rk−1)| = |T(Rk)|``) it
additionally requires every reachable generator to have been seen,
overapproximated by ``G ∩ Z ⊆ T(Rk)`` (Secs. 4.1.2–4.1.3).  If the test
fails, the algorithm skips forward to the next new plateau; by Def. 10 /
Thm. 11 a passed test certifies collapse at ``k−1``, making the
algorithm tight (it stops at the minimal convergence bound).

The same algorithm runs over the explicit engine (``T(Rk)``, requires
FCR) or the symbolic engine (``T(Sk)``, App. E) — they compute the same
projections.
"""

from __future__ import annotations

from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.cuba.generators import generator_analysis
from repro.cuba.overapprox import compute_z
from repro.errors import ContextExplosionError, CubaError
from repro.pds.semantics import DEFAULT_STATE_LIMIT
from repro.reach import registry
from repro.reach.base import ReachabilityEngine


def algorithm3(
    cpds: CPDS,
    prop: Property,
    engine: ReachabilityEngine | str = "explicit",
    max_rounds: int = 50,
    max_states_per_context: int = DEFAULT_STATE_LIMIT,
) -> VerificationResult:
    """Run Alg. 3 to a verdict or round budget.

    ``engine`` selects the representation: any registered lane name
    (``"explicit"`` — Table 2's ``Alg. 3(T(Rk))``, FCR required;
    ``"symbolic"`` — ``Alg. 3(T(Sk))``; aliases accepted, see
    :mod:`repro.reach.registry`) or a prepared engine instance.
    ``max_rounds`` is the *total* context-bound budget: a prepared
    engine's existing levels — warm reuse, or a checkpoint restore —
    are replayed through the verdict and plateau checks first and count
    toward it, so a resumed run reports exactly what an uninterrupted
    run would.

    SAFE results carry the collapse bound ``kmax`` of ``(T(Rk))``;
    UNSAFE results the context bound revealing the violation.  ``stats``
    records ``|Z|``, ``|G∩Z|`` and each rejected plateau with its
    missing generators — the diagnostic of Ex. 14.
    """
    if isinstance(engine, str):
        try:
            name = registry.canonical_lane(engine)
        except CubaError as error:
            raise ValueError(f"unknown engine {engine!r}") from error
        engine = registry.create(
            name, cpds, max_states_per_context=max_states_per_context
        )
    method = f"alg3(T({engine.sequence_name}))"

    analysis = generator_analysis(cpds)
    z = compute_z(cpds)
    reachable_generators = analysis.intersect(z)
    stats: dict = {
        "Z": len(z),
        "G∩Z": len(reachable_generators),
        "plateaus_rejected": [],
    }

    def unsafe(bound: int, witness) -> VerificationResult:
        trace = None
        if engine.supports_witness:
            state = engine.find_visible(witness)
            if state is not None:
                trace = engine.trace(state)
        return VerificationResult(
            Verdict.UNSAFE,
            bound=bound,
            method=method,
            message=f"violation of '{prop.describe()}'",
            witness=witness,
            trace=trace,
            stats=dict(stats),
        )

    witness = prop.find_violation(engine.visible_up_to(0))
    if witness is not None:
        return unsafe(0, witness)

    def examine(k: int) -> VerificationResult | None:
        """The per-bound body: violation check, then the strengthened
        new-plateau test of Thm. 11."""
        witness = prop.find_violation(engine.visible_new_at(k))
        if witness is not None:
            return unsafe(k, witness)
        # New plateau: |T(Rk−2)| < |T(Rk−1)| = |T(Rk)|.
        new_plateau = not engine.visible_new_at(k) and engine.visible_new_at(k - 1)
        if not new_plateau:
            return None
        seen = engine.visible_up_to(k)
        missing = reachable_generators - seen
        if missing:
            stats["plateaus_rejected"].append(
                {"k": k - 1, "missing": frozenset(missing)}
            )
            return None  # stuttering cannot be excluded: skip forward
        stats["visible_states"] = len(seen)
        return VerificationResult(
            Verdict.SAFE,
            bound=k - 1,
            method=method,
            message=(
                "visible sequence collapsed: plateau with all reachable "
                "generators seen (Thm. 11)"
            ),
            stats=dict(stats),
        )

    try:
        # Replay bounds the engine already holds (a fresh engine has
        # only level 0), then advance to the budget.  Capped at the
        # budget: a deeper-than-requested restored engine must not leak
        # verdicts from beyond what an uninterrupted run would explore.
        for k in range(1, min(engine.k, max_rounds) + 1):
            result = examine(k)
            if result is not None:
                return result
        while engine.k < max_rounds:
            engine.advance()
            result = examine(engine.k)
            if result is not None:
                return result
    except ContextExplosionError as explosion:
        return VerificationResult(
            Verdict.UNKNOWN,
            bound=engine.k,
            method=method,
            message=f"{engine.lane} engine diverged (use symbolic): {explosion}",
            stats=dict(stats),
        )
    return VerificationResult(
        Verdict.UNKNOWN,
        bound=min(engine.k, max_rounds),
        method=method,
        message=f"no conclusion within {max_rounds} rounds",
        stats=dict(stats),
    )
