"""Context-insensitive overapproximation ``Z`` (paper Sec. 4.1.3, Alg. 2).

Each thread's PDS is cut off at stack depth 1: pushes forget what lies
underneath, and pops nondeterministically "emerge" any symbol ever
written under a push (the candidate set ``E``), or nothing.  The
asynchronous product of these finite systems is explored exhaustively;
its reachable set ``Z`` overapproximates the reachable visible states
``T(R)`` (Lemma 12) and is used to bound the reachable generators
``G ∩ T(R) ⊆ G ∩ Z``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass

from repro.cpds.cpds import CPDS
from repro.cpds.state import VisibleState
from repro.pds.action import ActionKind
from repro.pds.pds import PDS
from repro.pds.state import EMPTY
from repro.util.meter import METER

Shared = Hashable
Symbol = Hashable

#: A state of the finite abstraction ``Mi``: (shared, top ∈ Σ≤1).
MState = tuple


@dataclass(frozen=True)
class FiniteAbstraction:
    """The finite-state system ``M = (Q×Σ≤1, T)`` produced by Alg. 2."""

    transitions: dict[MState, frozenset[MState]]
    emerging: frozenset[Symbol]

    def successors(self, state: MState) -> frozenset[MState]:
        return self.transitions.get(state, frozenset())

    def n_transitions(self) -> int:
        return sum(len(targets) for targets in self.transitions.values())


def build_abstraction(pds: PDS) -> FiniteAbstraction:
    """Alg. 2: cut the stack off at size 1.

    Every action contributes ``(q,w) ↦ (q', T(w'))``; actions that leave
    the stack empty additionally contribute ``(q,w) ↦ (q', ρ)`` for every
    emerging candidate ``ρ ∈ E`` (we follow the paper and apply this to
    every action with ``w' = ε``, pops and empty-stack overwrites alike —
    a context-insensitive overapproximation either way).
    """
    emerging: set[Symbol] = set()
    for action in pds.actions:
        if action.kind is ActionKind.PUSH:
            emerging.add(action.write[1])

    transitions: dict[MState, set[MState]] = {}

    def add(src: MState, dst: MState) -> None:
        transitions.setdefault(src, set()).add(dst)

    for action in pds.actions:
        read_top = action.read[0] if action.read else EMPTY
        write_top = action.write[0] if action.write else EMPTY
        source = (action.from_shared, read_top)
        add(source, (action.to_shared, write_top))
        if not action.write:  # stack left empty: emerging candidates
            for candidate in emerging:
                add(source, (action.to_shared, candidate))

    return FiniteAbstraction(
        {src: frozenset(dsts) for src, dsts in transitions.items()},
        frozenset(emerging),
    )


def abstract_visible_levels(cpds: CPDS, max_levels: int = 64) -> list[frozenset[VisibleState]]:
    """The *stratified* abstract sequence ``(A_k)`` with ``T(Rk) ⊆ A_k``.

    The paper's conclusion asks whether ``T(Rk)`` can be computed by
    abstract transfer functions instead of projections from ``Rk``.
    This is the context-insensitive answer: ``A_0`` is the initial
    visible state and ``A_{k+1}`` closes ``A_k``'s frontier under one
    abstract context per thread (a BFS over the Alg. 2 system ``Mi``).
    By the Lemma 12 argument applied per context, ``T(Rk) ⊆ A_k`` for
    every ``k``; the limit of the sequence is exactly ``Z``.

    Returns cumulative levels; the sequence is monotone over a finite
    domain and collapses within ``|Q×Σ≤1×...×Σ≤1|`` steps (``max_levels``
    is a safety rail only).
    """
    abstractions = [build_abstraction(pds) for pds in cpds.threads]

    def context_closure(state: VisibleState, index: int) -> set[VisibleState]:
        abstraction = abstractions[index]
        closed = {state}
        work = deque([state])
        while work:
            current = work.popleft()
            METER.bump("overapprox.abstract_steps")
            local = (current.shared, current.tops[index])
            for shared, top in abstraction.successors(local):
                tops = list(current.tops)
                tops[index] = top
                successor = VisibleState(shared, tuple(tops))
                if successor not in closed:
                    closed.add(successor)
                    work.append(successor)
        return closed

    initial = cpds.initial_state().visible()
    levels = [frozenset([initial])]
    seen: set[VisibleState] = {initial}
    frontier: set[VisibleState] = {initial}
    while frontier and len(levels) <= max_levels:
        fresh: set[VisibleState] = set()
        for state in frontier:
            for index in range(cpds.n_threads):
                fresh |= context_closure(state, index)
        fresh -= seen
        if not fresh:
            break
        seen |= fresh
        levels.append(frozenset(seen))
        frontier = fresh
    return levels


def abstract_bug_lower_bound(cpds: CPDS, prop) -> int | None:
    """Sound lower bound on the context bound of any violation.

    If the first abstract level containing a violating visible state is
    ``k0``, then no execution with fewer than ``k0`` contexts violates
    the property (``T(Rk) ⊆ A_k``).  Returns ``None`` when even the
    abstract limit (= ``Z``) is violation-free — i.e. the program is
    safe outright (the :func:`~repro.cuba.quickcheck.quick_check` case).
    """
    for k, level in enumerate(abstract_visible_levels(cpds)):
        if prop.find_violation(level) is not None:
            return k
    return None


def compute_z(cpds: CPDS) -> frozenset[VisibleState]:
    """Reachable set ``Z`` of the asynchronous product ``Mn``.

    Starts from the projection of the CPDS initial state (the paper
    starts ``M2`` in ``⟨0|1,4⟩`` for Fig. 1) and explores exhaustively —
    the state space is contained in ``Q × Σ≤1_1 × ... × Σ≤1_n``.
    """
    abstractions = [build_abstraction(pds) for pds in cpds.threads]
    initial = cpds.initial_state().visible()
    seen: set[VisibleState] = {initial}
    work: deque[VisibleState] = deque([initial])
    while work:
        current = work.popleft()
        METER.bump("overapprox.abstract_steps")
        for index, abstraction in enumerate(abstractions):
            local = (current.shared, current.tops[index])
            for shared, top in abstraction.successors(local):
                tops = list(current.tops)
                tops[index] = top
                successor = VisibleState(shared, tuple(tops))
                if successor not in seen:
                    seen.add(successor)
                    work.append(successor)
    return frozenset(seen)
