"""Generic lane driver: run any registered lane to a verdict.

This is the dispatch half of the lane-plugin API
(:mod:`repro.reach.registry`): given a lane name (or a prepared engine
instance), :func:`run_lane` resolves the engine class through the
registry, checks its :meth:`~repro.reach.base.ReachabilityEngine.applicable`
precondition, and drives it with whichever generic algorithm the lane
declared sound for its observation sequence:

* ``preferred_algorithm = "scheme1"`` — the plain plateau test
  (:func:`scheme1_lane` below), sound when a plateau of the lane's
  underlying sequence is a collapse (stutter-freeness for ``(Rk)``,
  Lemma 7; a genuine fixpoint for ``(Wk)``).
* ``preferred_algorithm = "algorithm3"`` — plateau + generator test
  (:func:`repro.cuba.algorithm3.algorithm3`, Thm. 11), required when
  the underlying sequence can stutter (``(Sk)``: stack languages may
  keep growing through a visible plateau).

Adding a lane never touches this module: the registry supplies the
class, the class supplies the driver choice and capabilities
(``supports_witness`` gates trace materialization).
"""

from __future__ import annotations

from repro.core.property import Property
from repro.core.result import Verdict, VerificationResult
from repro.cpds.cpds import CPDS
from repro.errors import ContextExplosionError, CubaError
from repro.obs import trace
from repro.reach import registry
from repro.reach.base import ReachabilityEngine
from repro.reach.config import EngineConfig
from repro.util.meter import METER

__all__ = ["ensure_applicable", "run_lane", "scheme1_lane"]


def ensure_applicable(
    cls: type[ReachabilityEngine], cpds: CPDS, prop: Property | None = None
) -> None:
    """Raise :class:`~repro.errors.CubaError` unless lane ``cls`` may run
    on this model.  Callers that construct engines themselves must call
    this *before* construction — building an engine whose precondition
    fails (e.g. a wuba engine on a non-WCR model) can diverge into the
    state-limit guard instead of failing fast."""
    if not cls.applicable(cpds, prop):
        raise CubaError(
            f"lane {cls.lane!r} is not applicable to this model "
            "(its precondition failed); applicable lanes: "
            f"{', '.join(registry.applicable_lanes(cpds, prop)) or 'none'}"
        )


def _lane_stats(engine: ReachabilityEngine, meter_before: dict) -> dict:
    return {
        **engine.stats(),
        "visible_states": len(engine.visible_up_to()),
        "meter": METER.delta(meter_before),
    }


def scheme1_lane(
    cpds: CPDS,
    prop: Property,
    *,
    engine: ReachabilityEngine,
    max_rounds: int = 50,
) -> VerificationResult:
    """Scheme 1 over any lane whose plateau is a collapse.

    Mirrors the paper's Scheme 1: advance the sequence level by level,
    report UNSAFE on the first violating level (with a witness trace
    when the lane supports one), SAFE on a plateau of the *underlying*
    sequence, UNKNOWN past the budget or on a divergence guard.

    ``max_rounds`` is the total level budget; a prepared engine's
    existing levels are replayed through the checks first and count
    toward it, so a run resumed from a snapshot reports exactly what an
    uninterrupted run would.
    """
    meter_before = METER.snapshot()
    method = f"scheme1({engine.sequence_name})"

    def check(bound: int) -> VerificationResult | None:
        witness = prop.find_violation(engine.visible_new_at(bound))
        if witness is None:
            return None
        trace = None
        if engine.supports_witness:
            state = engine.find_visible(witness)
            trace = engine.trace(state) if state is not None else None
        return VerificationResult(
            Verdict.UNSAFE,
            bound=bound,
            method=method,
            message=f"violation of '{prop.describe()}'",
            witness=witness,
            trace=trace,
            stats=_lane_stats(engine, meter_before),
        )

    def safe(bound: int) -> VerificationResult:
        return VerificationResult(
            Verdict.SAFE,
            bound=bound,
            method=method,
            message=f"({engine.sequence_name}) collapsed (plateau is a collapse "
            "for this lane)",
            stats=_lane_stats(engine, meter_before),
        )

    # Replay the checks over any levels the engine already holds (a
    # fresh engine has only level 0), capped at the budget so a
    # deeper-than-requested restore cannot leak verdicts from beyond it.
    for bound in range(min(engine.k, max_rounds) + 1):
        result = check(bound)
        if result is not None:
            return result
        if engine.plateaued_at(bound):
            return safe(bound)
    try:
        while engine.k < max_rounds:
            engine.advance()
            k = engine.k
            result = check(k)
            if result is not None:
                return result
            if engine.plateaued_at(k):
                return safe(k)
    except ContextExplosionError as explosion:
        return VerificationResult(
            Verdict.UNKNOWN,
            bound=engine.k,
            method=method,
            message=f"{engine.lane} engine diverged: {explosion}",
            stats=_lane_stats(engine, meter_before),
        )
    return VerificationResult(
        Verdict.UNKNOWN,
        bound=min(engine.k, max_rounds),
        method=method,
        message=f"no conclusion within {max_rounds} rounds",
        stats=_lane_stats(engine, meter_before),
    )


def run_lane(
    lane: str | ReachabilityEngine,
    cpds: CPDS,
    prop: Property,
    *,
    max_rounds: int = 50,
    max_states_per_context: int | None = None,
    config: EngineConfig | None = None,
    engine: ReachabilityEngine | None = None,
) -> VerificationResult:
    """Run one named lane (or a prepared engine) to a verdict.

    ``lane`` may be a canonical lane name, an alias
    (:data:`repro.reach.registry.LANE_ALIASES`), or an engine instance.
    Raises :class:`~repro.errors.CubaError` for unknown lanes and for
    lanes whose :meth:`applicable` precondition fails on this model.
    """
    if isinstance(lane, ReachabilityEngine):
        engine = lane
    if engine is not None:
        cls = type(engine)
    else:
        cls = registry.engine_class(lane)
        ensure_applicable(cls, cpds, prop)
        engine = cls.create(
            cpds, max_states_per_context=max_states_per_context, config=config
        )
    # One driver-level span over the whole run: the verify/serve trace
    # nests request → lane.run → <lane>.level → saturation/replay/
    # canonicalization (the levels come from the base-class template).
    with trace.span(
        "lane.run", lane=cls.lane, algorithm=cls.preferred_algorithm
    ):
        if cls.preferred_algorithm == "algorithm3":
            from repro.cuba.algorithm3 import algorithm3

            return algorithm3(cpds, prop, engine=engine, max_rounds=max_rounds)
        return scheme1_lane(cpds, prop, engine=engine, max_rounds=max_rounds)
