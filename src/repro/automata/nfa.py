"""Nondeterministic finite automata with ε-transitions.

States and symbols are arbitrary hashable Python objects; ε is the
module-level sentinel :data:`EPSILON`.  The class is deliberately mutable:
the ``post*`` saturation procedure (paper App. C) grows an automaton
in-place until a fixpoint is reached.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator
from typing import Any


class _Epsilon:
    """Singleton sentinel for the empty-word transition label."""

    _instance: "_Epsilon | None" = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ε"

    def __reduce__(self):  # keep singleton identity across pickling
        return (_Epsilon, ())


EPSILON = _Epsilon()

State = Hashable
Symbol = Hashable


class NFA:
    """A nondeterministic finite automaton with ε-transitions.

    Transitions are stored as ``state -> label -> set of states``.  All
    query methods tolerate states that were never explicitly added.

    The class is slotted: reachability engines hold thousands of small
    automata alive at once (one per symbolic-state thread slot, plus the
    saturation snapshots), and the per-instance ``__dict__`` was pure
    overhead.  Subclasses must declare ``__slots__`` themselves to stay
    dict-free (:class:`repro.automata.canonical.CanonicalNFA` does).
    """

    __slots__ = (
        "_states",
        "_initial",
        "_accepting",
        "_delta",
        "_eps_version",
        "_eps_memo",
    )

    def __init__(
        self,
        states: Iterable[State] = (),
        initial: Iterable[State] = (),
        accepting: Iterable[State] = (),
    ) -> None:
        self._states: set[State] = set(states)
        self._initial: set[State] = set(initial)
        self._accepting: set[State] = set(accepting)
        self._states |= self._initial | self._accepting
        self._delta: dict[State, dict[Symbol, set[State]]] = {}
        # ε-closure cache: state -> (version, closure).  Entries are valid
        # while no new ε-edge has been added since they were computed;
        # non-ε additions never invalidate (they cannot change a closure).
        self._eps_version: int = 0
        self._eps_memo: dict[State, tuple[int, frozenset[State]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_state(self, state: State) -> State:
        self._states.add(state)
        return state

    def add_initial(self, state: State) -> None:
        self._states.add(state)
        self._initial.add(state)

    def add_accepting(self, state: State) -> None:
        self._states.add(state)
        self._accepting.add(state)

    def add_transition(self, src: State, label: Symbol, dst: State) -> bool:
        """Add ``src --label--> dst``; return True iff it is new."""
        self._states.add(src)
        self._states.add(dst)
        targets = self._delta.setdefault(src, {}).setdefault(label, set())
        if dst in targets:
            return False
        targets.add(dst)
        if label is EPSILON:
            self._eps_version += 1
        return True

    def add_transitions(self, edges: Iterable[tuple[State, Symbol, State]]) -> None:
        """Bulk-add ``(src, label, dst)`` edges.

        Equivalent to calling :meth:`add_transition` per edge but with
        one ε-version bump and no per-edge call overhead — the fast path
        for snapshotting saturation results.
        """
        states = self._states
        delta = self._delta
        saw_epsilon = False
        for src, label, dst in edges:
            states.add(src)
            states.add(dst)
            delta.setdefault(src, {}).setdefault(label, set()).add(dst)
            if label is EPSILON:
                saw_epsilon = True
        if saw_epsilon:
            self._eps_version += 1

    def copy(self) -> "NFA":
        clone = NFA(self._states, self._initial, self._accepting)
        clone.add_transitions(self.transitions())
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def states(self) -> frozenset[State]:
        return frozenset(self._states)

    @property
    def initial(self) -> frozenset[State]:
        return frozenset(self._initial)

    @property
    def accepting(self) -> frozenset[State]:
        return frozenset(self._accepting)

    def has_transition(self, src: State, label: Symbol, dst: State) -> bool:
        return dst in self._delta.get(src, {}).get(label, ())

    def targets(self, src: State, label: Symbol) -> frozenset[State]:
        """Direct (non-closed) successors of ``src`` under ``label``."""
        return frozenset(self._delta.get(src, {}).get(label, ()))

    def labels_from(self, src: State) -> frozenset[Symbol]:
        return frozenset(self._delta.get(src, {}))

    def alphabet(self) -> frozenset[Symbol]:
        """All non-ε labels that appear on some transition."""
        symbols: set[Symbol] = set()
        for by_label in self._delta.values():
            symbols.update(label for label in by_label if label is not EPSILON)
        return frozenset(symbols)

    def transitions(self) -> Iterator[tuple[State, Symbol, State]]:
        for src, by_label in self._delta.items():
            for label, targets in by_label.items():
                for dst in targets:
                    yield (src, label, dst)

    def num_transitions(self) -> int:
        return sum(
            len(targets)
            for by_label in self._delta.values()
            for targets in by_label.values()
        )

    # ------------------------------------------------------------------
    # Core queries
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """All states reachable from ``states`` via ε-transitions only.

        Closures are memoized per state and invalidated whenever a new
        ε-edge appears; the closure of a set is the union of the member
        closures, so repeated queries (saturation, ``tops``, word runs)
        cost one dict lookup per state after the first computation.
        """
        states = list(states)
        if len(states) == 1:
            return self._closure_of(states[0])
        closure: set[State] = set()
        for state in states:
            closure |= self._closure_of(state)
        return frozenset(closure)

    def _closure_of(self, state: State) -> frozenset[State]:
        version = self._eps_version
        cached = self._eps_memo.get(state)
        if cached is not None and cached[0] == version:
            return cached[1]
        closure: set[State] = {state}
        work = deque([state])
        while work:
            current = work.popleft()
            for nxt in self._delta.get(current, {}).get(EPSILON, ()):
                if nxt in closure:
                    continue
                hit = self._eps_memo.get(nxt)
                if hit is not None and hit[0] == version:
                    closure |= hit[1]
                else:
                    closure.add(nxt)
                    work.append(nxt)
        result = frozenset(closure)
        self._eps_memo[state] = (version, result)
        return result

    def step(self, states: Iterable[State], symbol: Symbol) -> frozenset[State]:
        """ε-closed move: close ``states``, read ``symbol``, close again."""
        if symbol is EPSILON:
            raise ValueError("step() reads a real symbol; use epsilon_closure for ε")
        closed = self.epsilon_closure(states)
        after: set[State] = set()
        for state in closed:
            after.update(self._delta.get(state, {}).get(symbol, ()))
        return self.epsilon_closure(after)

    def reads(self, src: State, symbol: Symbol) -> frozenset[State]:
        """States reachable from ``src`` by ε* · symbol · ε*.

        This is the relation written ``p --γ--> q`` in the saturation
        rules of the ``post*`` construction.
        """
        return self.step([src], symbol)

    def run(self, word: Iterable[Symbol], start: Iterable[State] | None = None) -> frozenset[State]:
        current = self.epsilon_closure(self._initial if start is None else start)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                break
        return current

    def accepts(self, word: Iterable[Symbol], start: Iterable[State] | None = None) -> bool:
        return bool(self.run(word, start) & self._accepting)

    def accepts_from(self, state: State, word: Iterable[Symbol]) -> bool:
        """Acceptance reading ``word`` from a designated start state.

        Pushdown store automata accept a PDS state ``⟨q|w⟩`` by reading
        the stack word ``w`` starting at automaton state ``q`` (App. C).
        """
        return self.accepts(word, start=[state])

    # ------------------------------------------------------------------
    # Graph utilities
    # ------------------------------------------------------------------
    def reachable_states(self, start: Iterable[State] | None = None) -> frozenset[State]:
        """States reachable from ``start`` (default: initial) via any edge."""
        seen: set[State] = set(self._initial if start is None else start)
        work = deque(seen)
        while work:
            state = work.popleft()
            for by_label in (self._delta.get(state, {}),):
                for targets in by_label.values():
                    for nxt in targets:
                        if nxt not in seen:
                            seen.add(nxt)
                            work.append(nxt)
        return frozenset(seen)

    def coreachable_states(self) -> frozenset[State]:
        """States from which some accepting state is reachable."""
        reverse: dict[State, set[State]] = {}
        for src, label, dst in self.transitions():
            reverse.setdefault(dst, set()).add(src)
        seen: set[State] = set(self._accepting)
        work = deque(seen)
        while work:
            state = work.popleft()
            for prv in reverse.get(state, ()):
                if prv not in seen:
                    seen.add(prv)
                    work.append(prv)
        return frozenset(seen)

    def useful_states(self) -> frozenset[State]:
        """States on some path from an initial to an accepting state."""
        return self.reachable_states() & self.coreachable_states()

    def trim(self) -> "NFA":
        """Return a copy restricted to useful states."""
        keep = self.useful_states()
        trimmed = NFA(keep, self._initial & keep, self._accepting & keep)
        for src, label, dst in self.transitions():
            if src in keep and dst in keep:
                trimmed.add_transition(src, label, dst)
        return trimmed

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __contains__(self, state: Any) -> bool:
        return state in self._states

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NFA(states={len(self._states)}, "
            f"transitions={self.num_transitions()}, "
            f"initial={len(self._initial)}, accepting={len(self._accepting)})"
        )
