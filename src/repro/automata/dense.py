"""Fused determinize → complete → minimize over dense integer tables.

The seed canonicalization pipeline materialized three intermediate
automata per call: the subset construction built a frozenset-state NFA,
``minimize`` re-indexed it into an integer table and ran Moore partition
refinement (O(n²·m) per pass, a fresh key tuple per state per pass), and
the canonical renumbering rebuilt the result once more.  This module
fuses the pipeline: the subset construction writes *directly* into a
contiguous ``rows[state][symbol] -> state`` int table (completing with a
dead sink on the fly), Hopcroft's O(n log n) partition refinement runs on
that table, and the canonical breadth-first renumbering is emitted as
plain tuples — the only :class:`~repro.automata.nfa.NFA` ever built is
the final canonical DFA, constructed by the caller
(:mod:`repro.automata.canonical`) from the returned table.

Moore refinement survives in :func:`repro.automata.ops.minimize` as the
differential oracle; ``tests/automata/test_hopcroft.py`` checks the two
produce identical canonical forms on randomized NFAs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable, Sequence

from repro.automata.nfa import NFA
from repro.util.meter import METER

Symbol = Hashable

_NO_EDGES: dict = {}

#: Bound on the memoized inverse-edge lists (LRU eviction).
PRE_CACHE_SIZE = 512

#: Tables at or below this cell count (states × symbols) bypass the
#: cache: building their preimage lists costs less than constructing
#: the cache key, so caching them is pure overhead.  The
#: Stefan-1-class models live entirely below this line; the
#: canonicalization-heavy rows (FileCrawler, BST, Bluetooth) put ~90%
#: of their Hopcroft calls — and ~90% repeat rates — above it.
PRE_CACHE_MIN_CELLS = 64

#: Inverse-transition-list cache, keyed by the dense row table — the
#: structural signature of the complete DFA.  Distinct NFAs routinely
#: subset-construct to the *same* table (language-equal saturation
#: results with different state names), and the canonicalization LRU in
#: :mod:`repro.automata.canonical` only dedups structurally identical
#: inputs, so Hopcroft used to rebuild identical preimage lists per
#: canonicalization.  Entries are treated as immutable (Hopcroft only
#: reads them); the cache is value-keyed and deterministic, so it is
#: never invalidated, only evicted (and cleared by
#: :func:`pre_cache_clear` for test isolation / benchmark cold runs).
_pre_cache: OrderedDict[tuple, list] = OrderedDict()
#: The analysis service's thread executor (PR 5) mutates the cache
#: concurrently; ``get`` → ``move_to_end`` must not race a clear or an
#: eviction.  The list build runs outside the lock.
_pre_lock = threading.Lock()


def pre_cache_clear() -> None:
    """Drop the memoized Hopcroft inverse-edge lists (test isolation;
    the shared runtime-cache cleanup)."""
    with _pre_lock:
        _pre_cache.clear()


def _build_inverse(rows: list[list[int]], n: int, m: int) -> list[list[list[int]]]:
    pre: list[list[list[int]]] = [[[] for _ in range(n)] for _ in range(m)]
    for src in range(n):
        row = rows[src]
        for a in range(m):
            pre[a][row[a]].append(src)
    return pre


def _inverse_lists(rows: list[list[int]]) -> list:
    """``pre[a][q]`` = states reaching ``q`` under symbol ``a``, cached
    per dense table above :data:`PRE_CACHE_MIN_CELLS` (METER:
    ``canonical.hopcroft_pre_builds`` / ``canonical.hopcroft_pre_hits``
    record the rebuild savings).  Callers must not mutate the result."""
    n = len(rows)
    m = len(rows[0]) if rows else 0
    if n * m <= PRE_CACHE_MIN_CELLS:
        return _build_inverse(rows, n, m)
    key = tuple(map(tuple, rows))
    with _pre_lock:
        cached = _pre_cache.get(key)
        if cached is not None:
            _pre_cache.move_to_end(key)
            METER.bump("canonical.hopcroft_pre_hits")
            return cached
    METER.bump("canonical.hopcroft_pre_builds")
    pre = _build_inverse(rows, n, m)
    with _pre_lock:
        _pre_cache[key] = pre
        while len(_pre_cache) > PRE_CACHE_SIZE:
            _pre_cache.popitem(last=False)
    return pre


def subset_tables(
    nfa: NFA, symbols: Sequence[Symbol], initial=None
) -> tuple[list[list[int]], list[bool]]:
    """Subset-construct a *complete* DFA as dense int tables.

    Returns ``(rows, accepting)`` where ``rows[q][a]`` is the successor
    of state ``q`` under ``symbols[a]`` and ``accepting[q]`` its
    acceptance.  State 0 is the start (the ε-closure of ``initial`` /
    the automaton's initial states); a dead sink is appended only when
    some transition was missing.
    """
    delta = nfa._delta
    closure_of = nfa._closure_of
    accepting = nfa._accepting
    start = nfa.epsilon_closure(nfa.initial if initial is None else initial)
    index: dict[frozenset, int] = {start: 0}
    subsets: list[frozenset] = [start]
    rows: list[list[int]] = []
    acc: list[bool] = [not accepting.isdisjoint(start)]
    need_dead = False
    i = 0
    while i < len(subsets):
        current = subsets[i]
        i += 1
        row: list[int] = []
        for symbol in symbols:
            raw: set = set()
            for state in current:
                targets = delta.get(state, _NO_EDGES).get(symbol)
                if targets:
                    raw.update(targets)
            if not raw:
                row.append(-1)
                need_dead = True
                continue
            closed: set = set()
            for state in raw:
                closed |= closure_of(state)
            key = frozenset(closed)
            j = index.get(key)
            if j is None:
                j = len(subsets)
                index[key] = j
                subsets.append(key)
                acc.append(not accepting.isdisjoint(key))
            row.append(j)
        rows.append(row)
    if need_dead:
        dead = len(rows)
        for row in rows:
            for a, target in enumerate(row):
                if target < 0:
                    row[a] = dead
        rows.append([dead] * len(symbols))
        acc.append(False)
    return rows, acc


def hopcroft(rows: list[list[int]], accepting: list[bool]) -> list[int]:
    """Hopcroft partition refinement on a complete int-table DFA.

    Returns ``block_of[state] -> block id`` for the coarsest partition
    that separates accepting from rejecting states and is stable under
    every symbol.  Worklist discipline: when a block splits, the carved
    part is queued for every symbol if the old block was queued, else the
    smaller half is — the "smaller half" rule that bounds total splitter
    work by O(n log n) preimage visits.
    """
    n = len(rows)
    if n == 0:
        return []
    m = len(rows[0])
    # Inverse transition lists: pre[a][q] = states reaching q under a
    # (cached per table; see _inverse_lists).
    pre = _inverse_lists(rows)

    blocks: list[set[int]] = []
    block_of = [0] * n
    acc_states = [q for q in range(n) if accepting[q]]
    rej_states = [q for q in range(n) if not accepting[q]]
    for group in (acc_states, rej_states):
        if group:
            bid = len(blocks)
            blocks.append(set(group))
            for q in group:
                block_of[q] = bid

    pending: list[tuple[int, int]] = []
    pending_set: set[tuple[int, int]] = set()
    if len(blocks) == 2:
        seed = 0 if len(blocks[0]) <= len(blocks[1]) else 1
        for a in range(m):
            item = (seed, a)
            pending.append(item)
            pending_set.add(item)

    while pending:
        item = pending.pop()
        pending_set.discard(item)
        bid, a = item
        preimage_of = pre[a]
        preimage: set[int] = set()
        for q in blocks[bid]:
            preimage.update(preimage_of[q])
        if not preimage:
            continue
        touched: dict[int, list[int]] = {}
        for p in preimage:
            touched.setdefault(block_of[p], []).append(p)
        for cid, members in touched.items():
            old = blocks[cid]
            if len(members) == len(old):
                continue  # the whole block maps into the splitter
            nid = len(blocks)
            carved = set(members)
            blocks.append(carved)
            old -= carved
            for p in carved:
                block_of[p] = nid
            smaller = nid if len(carved) <= len(old) else cid
            for b in range(m):
                if (cid, b) in pending_set:
                    grown = (nid, b)
                else:
                    grown = (smaller, b)
                if grown not in pending_set:
                    pending.append(grown)
                    pending_set.add(grown)
    return block_of


def canonical_form(
    nfa: NFA, symbols: Sequence[Symbol], initial=None
) -> tuple[tuple[bool, ...], tuple[tuple[int, ...], ...]]:
    """Canonical minimal complete DFA as ``(accepting bits, table)``.

    States are numbered by breadth-first traversal from the start state
    visiting ``symbols`` in the given order — the numbering is unique, so
    two automata yield identical tuples exactly if they accept the same
    language over ``symbols``.  Produces the same form as the Moore path
    through :func:`repro.automata.ops.minimize` (the differential oracle).
    """
    rows, acc = subset_tables(nfa, symbols, initial=initial)
    block_of = hopcroft(rows, acc)
    n_blocks = max(block_of) + 1 if block_of else 0
    brows: list[list[int] | None] = [None] * n_blocks
    bacc = [False] * n_blocks
    for q, row in enumerate(rows):
        b = block_of[q]
        if brows[b] is None:
            brows[b] = [block_of[t] for t in row]
            bacc[b] = acc[q]
    if not brows:  # unreachable in practice: subsets always has a start
        return (), ()
    start = block_of[0]
    number = {start: 0}
    order = [start]
    for b in order:  # grows during iteration: breadth-first
        for t in brows[b]:
            if t not in number:
                number[t] = len(number)
                order.append(t)
    table = tuple(tuple(number[t] for t in brows[b]) for b in order)
    bits = tuple(bacc[b] for b in order)
    return bits, table
