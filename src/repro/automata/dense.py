"""Fused determinize → complete → minimize over dense integer tables.

The seed canonicalization pipeline materialized three intermediate
automata per call: the subset construction built a frozenset-state NFA,
``minimize`` re-indexed it into an integer table and ran Moore partition
refinement (O(n²·m) per pass, a fresh key tuple per state per pass), and
the canonical renumbering rebuilt the result once more.  This module
fuses the pipeline: the subset construction writes *directly* into a
contiguous ``rows[state][symbol] -> state`` int table (completing with a
dead sink on the fly), Hopcroft's O(n log n) partition refinement runs on
that table, and the canonical breadth-first renumbering is emitted as
plain tuples — the only :class:`~repro.automata.nfa.NFA` ever built is
the final canonical DFA, constructed by the caller
(:mod:`repro.automata.canonical`) from the returned table.

Moore refinement survives in :func:`repro.automata.ops.minimize` as the
differential oracle; ``tests/automata/test_hopcroft.py`` checks the two
produce identical canonical forms on randomized NFAs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable, Sequence

from repro.automata.nfa import NFA
from repro.obs import trace
from repro.util.meter import METER

Symbol = Hashable

_NO_EDGES: dict = {}

#: Bound on the memoized inverse-edge lists (LRU eviction).
PRE_CACHE_SIZE = 512

#: Tables at or below this cell count (states × symbols) bypass the
#: cache: building their preimage lists costs less than constructing
#: the cache key, so caching them is pure overhead.  The
#: Stefan-1-class models live entirely below this line; the
#: canonicalization-heavy rows (FileCrawler, BST, Bluetooth) put ~90%
#: of their Hopcroft calls — and ~90% repeat rates — above it.
PRE_CACHE_MIN_CELLS = 64

#: Inverse-transition-list cache, keyed by the dense row table — the
#: structural signature of the complete DFA.  Distinct NFAs routinely
#: subset-construct to the *same* table (language-equal saturation
#: results with different state names), and the canonicalization LRU in
#: :mod:`repro.automata.canonical` only dedups structurally identical
#: inputs, so Hopcroft used to rebuild identical preimage lists per
#: canonicalization.  Entries are treated as immutable (Hopcroft only
#: reads them); the cache is value-keyed and deterministic, so it is
#: never invalidated, only evicted (and cleared by
#: :func:`pre_cache_clear` for test isolation / benchmark cold runs).
_pre_cache: OrderedDict[tuple, list] = OrderedDict()
#: The analysis service's thread executor (PR 5) mutates the cache
#: concurrently; ``get`` → ``move_to_end`` must not race a clear or an
#: eviction.  The list build runs outside the lock.
_pre_lock = threading.Lock()


#: Bound on the incremental-minimization partition cache (LRU).
INC_CACHE_SIZE = 256

#: How many recent cached tables are scanned for a near-identical
#: predecessor before giving up and minimizing from scratch.  Frontier
#: levels canonicalize bursts of near-duplicates, so the match is
#: almost always among the newest entries; scanning the whole LRU
#: would make every *miss* pay O(cache · n).
INC_MAX_CANDIDATES = 8

#: Final minimal partitions of recently minimized tables, keyed by the
#: dense row table: ``rows -> (accepting bits, block_of, n_blocks)``.
#: Seeds :func:`hopcroft_incremental`; cleared with the pre-cache.
_inc_cache: OrderedDict[tuple, tuple] = OrderedDict()


def pre_cache_clear() -> None:
    """Drop the memoized Hopcroft inverse-edge lists and the incremental
    partition cache (test isolation; the shared runtime-cache cleanup)."""
    with _pre_lock:
        _pre_cache.clear()
        _inc_cache.clear()


def _build_inverse(rows: list[list[int]], n: int, m: int) -> list[list[list[int]]]:
    pre: list[list[list[int]]] = [[[] for _ in range(n)] for _ in range(m)]
    for src in range(n):
        row = rows[src]
        for a in range(m):
            pre[a][row[a]].append(src)
    return pre


def _inverse_lists(rows: list[list[int]]) -> list:
    """``pre[a][q]`` = states reaching ``q`` under symbol ``a``, cached
    per dense table above :data:`PRE_CACHE_MIN_CELLS` (METER:
    ``canonical.hopcroft_pre_builds`` / ``canonical.hopcroft_pre_hits``
    record the rebuild savings).  Callers must not mutate the result."""
    n = len(rows)
    m = len(rows[0]) if rows else 0
    if n * m <= PRE_CACHE_MIN_CELLS:
        # Counted so BENCH hit-rate denominators are exact: calls below
        # the caching threshold are neither builds nor hits.
        METER.bump("canonical.hopcroft_pre_bypass")
        return _build_inverse(rows, n, m)
    key = tuple(map(tuple, rows))
    with _pre_lock:
        cached = _pre_cache.get(key)
        if cached is not None:
            _pre_cache.move_to_end(key)
            METER.bump("canonical.hopcroft_pre_hits")
            return cached
    METER.bump("canonical.hopcroft_pre_builds")
    pre = _build_inverse(rows, n, m)
    with _pre_lock:
        _pre_cache[key] = pre
        while len(_pre_cache) > PRE_CACHE_SIZE:
            _pre_cache.popitem(last=False)
    return pre


def subset_tables(
    nfa: NFA, symbols: Sequence[Symbol], initial=None
) -> tuple[list[list[int]], list[bool]]:
    """Subset-construct a *complete* DFA as dense int tables.

    Returns ``(rows, accepting)`` where ``rows[q][a]`` is the successor
    of state ``q`` under ``symbols[a]`` and ``accepting[q]`` its
    acceptance.  State 0 is the start (the ε-closure of ``initial`` /
    the automaton's initial states); a dead sink is appended only when
    some transition was missing.
    """
    delta = nfa._delta
    closure_of = nfa._closure_of
    accepting = nfa._accepting
    start = nfa.epsilon_closure(nfa.initial if initial is None else initial)
    index: dict[frozenset, int] = {start: 0}
    subsets: list[frozenset] = [start]
    rows: list[list[int]] = []
    acc: list[bool] = [not accepting.isdisjoint(start)]
    need_dead = False
    i = 0
    while i < len(subsets):
        current = subsets[i]
        i += 1
        row: list[int] = []
        for symbol in symbols:
            raw: set = set()
            for state in current:
                targets = delta.get(state, _NO_EDGES).get(symbol)
                if targets:
                    raw.update(targets)
            if not raw:
                row.append(-1)
                need_dead = True
                continue
            closed: set = set()
            for state in raw:
                closed |= closure_of(state)
            key = frozenset(closed)
            j = index.get(key)
            if j is None:
                j = len(subsets)
                index[key] = j
                subsets.append(key)
                acc.append(not accepting.isdisjoint(key))
            row.append(j)
        rows.append(row)
    if need_dead:
        dead = len(rows)
        for row in rows:
            for a, target in enumerate(row):
                if target < 0:
                    row[a] = dead
        rows.append([dead] * len(symbols))
        acc.append(False)
    return rows, acc


def _refine(
    rows: list[list[int]],
    pre: list,
    blocks: list[set[int]],
    block_of: list[int],
    pending: list[tuple[int, int]],
    pending_set: set[tuple[int, int]],
) -> int:
    """Run the Hopcroft worklist to stability from an arbitrary seed
    partition; mutates ``blocks``/``block_of`` in place and returns the
    number of splits performed.

    Worklist discipline: when a block splits, the carved part is queued
    for every symbol if the old block was queued, else the smaller half
    is — the "smaller half" rule that bounds total splitter work by
    O(n log n) preimage visits.  Soundness for non-classic seeds
    requires the caller to enqueue, per symbol, every seed block except
    at most one: a complete deterministic table partitions each state
    into exactly one preimage, so stability against all-but-one block
    implies stability against the last.
    """
    m = len(rows[0]) if rows else 0
    splits = 0
    while pending:
        item = pending.pop()
        pending_set.discard(item)
        bid, a = item
        preimage_of = pre[a]
        preimage: set[int] = set()
        for q in blocks[bid]:
            preimage.update(preimage_of[q])
        if not preimage:
            continue
        touched: dict[int, list[int]] = {}
        for p in preimage:
            touched.setdefault(block_of[p], []).append(p)
        for cid, members in touched.items():
            old = blocks[cid]
            if len(members) == len(old):
                continue  # the whole block maps into the splitter
            nid = len(blocks)
            carved = set(members)
            blocks.append(carved)
            old -= carved
            for p in carved:
                block_of[p] = nid
            splits += 1
            smaller = nid if len(carved) <= len(old) else cid
            for b in range(m):
                if (cid, b) in pending_set:
                    grown = (nid, b)
                else:
                    grown = (smaller, b)
                if grown not in pending_set:
                    pending.append(grown)
                    pending_set.add(grown)
    return splits


def _full_refine(
    rows: list[list[int]], accepting: list[bool], pre: list
) -> list[int]:
    """Classic Hopcroft: seed with the accepting/rejecting split and the
    smaller half queued for every symbol, refine to stability."""
    n = len(rows)
    m = len(rows[0])
    blocks: list[set[int]] = []
    block_of = [0] * n
    acc_states = [q for q in range(n) if accepting[q]]
    rej_states = [q for q in range(n) if not accepting[q]]
    for group in (acc_states, rej_states):
        if group:
            bid = len(blocks)
            blocks.append(set(group))
            for q in group:
                block_of[q] = bid

    pending: list[tuple[int, int]] = []
    pending_set: set[tuple[int, int]] = set()
    if len(blocks) == 2:
        seed = 0 if len(blocks[0]) <= len(blocks[1]) else 1
        for a in range(m):
            item = (seed, a)
            pending.append(item)
            pending_set.add(item)
    _refine(rows, pre, blocks, block_of, pending, pending_set)
    return block_of


def hopcroft(rows: list[list[int]], accepting: list[bool]) -> list[int]:
    """Hopcroft partition refinement on a complete int-table DFA.

    Returns ``block_of[state] -> block id`` for the coarsest partition
    that separates accepting from rejecting states and is stable under
    every symbol.  This is the from-scratch correctness baseline;
    :func:`hopcroft_incremental` layers predecessor-seeded reuse on top
    and must always agree with it.
    """
    n = len(rows)
    if n == 0:
        return []
    # Inverse transition lists: pre[a][q] = states reaching q under a
    # (cached per table; see _inverse_lists).
    return _full_refine(rows, accepting, _inverse_lists(rows))


def _inc_candidates() -> list[tuple[tuple, tuple]]:
    """Snapshot the newest cached ``(rows, (acc, partition, n_blocks))``
    entries for the predecessor scan, newest first.  Values are
    immutable tuples, so reading them outside the lock is safe.  Walks
    ``reversed(_inc_cache)`` instead of materializing all
    ``INC_CACHE_SIZE`` items — this runs on every cache miss, and the
    full copy dominated the miss path's cost."""
    out: list[tuple[tuple, tuple]] = []
    with _pre_lock:
        for key in reversed(_inc_cache):
            out.append((key, _inc_cache[key]))
            if len(out) == INC_MAX_CANDIDATES:
                break
    return out


def _inc_store(rows_t: tuple, acc_t: tuple, block_of: list[int]) -> None:
    n_blocks = max(block_of) + 1 if block_of else 0
    with _pre_lock:
        _inc_cache[rows_t] = (acc_t, tuple(block_of), n_blocks)
        _inc_cache.move_to_end(rows_t)
        while len(_inc_cache) > INC_CACHE_SIZE:
            _inc_cache.popitem(last=False)


def hopcroft_incremental(
    rows: list[list[int]], accepting: list[bool]
) -> list[int]:
    """Hopcroft with predecessor-seeded reuse (same contract as
    :func:`hopcroft`: the minimal stable partition, as ``block_of``).

    Frontier levels canonicalize near-identical automata: one expansion
    perturbs a few states of an otherwise-repeated dense table.  When a
    recently minimized table differs from this one by a bounded edit set,
    refinement is seeded from the predecessor's *final* partition
    intersected with this table's accepting split, instead of restarting
    from the two-block accepting/rejecting seed.

    Seeding invariants (why this is sound):

    * Refinement only ever splits, so a seed that over-separates states
      cannot be repaired by refinement alone — the stable result may be
      finer than minimal.  The seeded pass is therefore followed by a
      *quotient* pass: collapse the stable partition to a block-level
      DFA (well-defined exactly because the partition is stable) and run
      full Hopcroft on it, composing the two partitions.  Block-level
      equivalence is language equality of the underlying states, so the
      composition is the Myhill–Nerode partition — minimal by
      construction regardless of how good the seed was.
    * The seeded worklist enqueues every seed block except the largest,
      per symbol — the all-but-one cover :func:`_refine` needs to reach
      true stability from a non-classic seed.
    * The quotient table is at most minimal-DFA-sized, so the extra pass
      costs O(b·m) with b ≪ n on the cache-hit path.

    METER: ``canonical.hopcroft_incremental_hits`` counts seeded runs,
    ``_resplits`` the splits the seeded refinement still had to do (the
    reuse-rate proof: hits with few resplits mean the predecessor
    partition carried over), ``_misses`` the from-scratch runs on tables
    with no close-enough predecessor.
    """
    if trace.enabled():
        # The path label (hit/miss/bypass) is read back off the METER
        # counters the impl already bumps, so the span stays an
        # annotation and never forks the control flow.
        hits = METER.get("canonical.hopcroft_incremental_hits")
        misses = METER.get("canonical.hopcroft_incremental_misses")
        with trace.span(
            "canonical.hopcroft_incremental", states=len(rows)
        ) as timing:
            block_of = _hopcroft_incremental(rows, accepting)
            timing.set(
                path="hit"
                if METER.get("canonical.hopcroft_incremental_hits") > hits
                else "miss"
                if METER.get("canonical.hopcroft_incremental_misses") > misses
                else "bypass"
            )
            return block_of
    return _hopcroft_incremental(rows, accepting)


def _hopcroft_incremental(
    rows: list[list[int]], accepting: list[bool]
) -> list[int]:
    n = len(rows)
    if n == 0:
        return []
    m = len(rows[0])
    if n * m <= PRE_CACHE_MIN_CELLS:
        # Below the caching threshold the seed bookkeeping costs more
        # than the refinement it saves; stay on the plain path (and out
        # of the caches), like the pre-cache bypass.
        return hopcroft(rows, accepting)
    rows_t = tuple(map(tuple, rows))
    acc_t = tuple(bool(b) for b in accepting)

    # Exact repeats dominate on frontier workloads (the same dense table
    # is rebuilt object-fresh every level), and the cache is keyed by
    # rows — probe it directly before any candidate scanning.
    with _pre_lock:
        cached = _inc_cache.get(rows_t)
        if cached is not None and cached[0] == acc_t:
            _inc_cache.move_to_end(rows_t)
            METER.bump("canonical.hopcroft_incremental_hits")
            return list(cached[1])

    seed: tuple | None = None
    max_edits = max(4, n // 4)
    for cand_rows, (cand_acc, cand_blocks, _nb) in _inc_candidates():
        if len(cand_rows) != n or len(cand_rows[0]) != m:
            continue
        edits = 0
        for q in range(n):
            if rows_t[q] != cand_rows[q] or acc_t[q] != cand_acc[q]:
                edits += 1
                if edits > max_edits:
                    break
        if edits == 0:
            # Structurally identical table (probe missed on a differing
            # accepting vector): the cached final partition is the answer.
            METER.bump("canonical.hopcroft_incremental_hits")
            return list(cand_blocks)
        if edits <= max_edits:
            seed = cand_blocks
            break

    if seed is None:
        METER.bump("canonical.hopcroft_incremental_misses")
        block_of = _full_refine(rows, accepting, _inverse_lists(rows))
        _inc_store(rows_t, acc_t, block_of)
        return block_of

    METER.bump("canonical.hopcroft_incremental_hits")
    # Seed partition: predecessor's final partition ∧ accepting split.
    mapping: dict[int, int] = {}
    blocks: list[set[int]] = []
    block_of = [0] * n
    for q in range(n):
        key = (seed[q] << 1) | acc_t[q]
        bid = mapping.get(key)
        if bid is None:
            mapping[key] = bid = len(blocks)
            blocks.append(set())
        blocks[bid].add(q)
        block_of[q] = bid
    largest = max(range(len(blocks)), key=lambda b: len(blocks[b]))
    pending = [
        (bid, a)
        for bid in range(len(blocks))
        if bid != largest
        for a in range(m)
    ]
    pending_set = set(pending)
    resplits = _refine(
        rows, _inverse_lists(rows), blocks, block_of, pending, pending_set
    )
    if resplits:
        METER.bump("canonical.hopcroft_incremental_resplits", resplits)

    # Quotient pass: minimize the block-level DFA and compose, restoring
    # minimality an over-fine seed would otherwise leak through.
    nb = len(blocks)
    qrows: list[list[int] | None] = [None] * nb
    qacc = [False] * nb
    for q in range(n):
        b = block_of[q]
        if qrows[b] is None:
            qrows[b] = [block_of[t] for t in rows[q]]
            qacc[b] = acc_t[q]
    qblock_of = _full_refine(qrows, qacc, _build_inverse(qrows, nb, m))
    final = [qblock_of[b] for b in block_of]
    _inc_store(rows_t, acc_t, final)
    return final


def canonical_form(
    nfa: NFA, symbols: Sequence[Symbol], initial=None
) -> tuple[tuple[bool, ...], tuple[tuple[int, ...], ...]]:
    """Canonical minimal complete DFA as ``(accepting bits, table)``.

    States are numbered by breadth-first traversal from the start state
    visiting ``symbols`` in the given order — the numbering is unique, so
    two automata yield identical tuples exactly if they accept the same
    language over ``symbols``.  Produces the same form as the Moore path
    through :func:`repro.automata.ops.minimize` (the differential oracle).
    """
    if not trace.enabled():
        return _canonical_form(nfa, symbols, initial)
    with trace.span("canonical.form") as timing:
        bits, table = _canonical_form(nfa, symbols, initial)
        timing.set(states=len(table))
        return bits, table


def _canonical_form(
    nfa: NFA, symbols: Sequence[Symbol], initial=None
) -> tuple[tuple[bool, ...], tuple[tuple[int, ...], ...]]:
    rows, acc = subset_tables(nfa, symbols, initial=initial)
    block_of = hopcroft_incremental(rows, acc)
    n_blocks = max(block_of) + 1 if block_of else 0
    brows: list[list[int] | None] = [None] * n_blocks
    bacc = [False] * n_blocks
    for q, row in enumerate(rows):
        b = block_of[q]
        if brows[b] is None:
            brows[b] = [block_of[t] for t in row]
            bacc[b] = acc[q]
    if not brows:  # unreachable in practice: subsets always has a start
        return (), ()
    start = block_of[0]
    number = {start: 0}
    order = [start]
    for b in order:  # grows during iteration: breadth-first
        for t in brows[b]:
            if t not in number:
                number[t] = len(number)
                order.append(t)
    table = tuple(tuple(number[t] for t in brows[b]) for b in order)
    bits = tuple(bacc[b] for b in order)
    return bits, table
