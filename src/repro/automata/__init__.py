"""Finite-automata substrate.

Pushdown store automata (paper App. C), the FCR loop analysis (Sec. 5) and
the symbolic engine's state dedup are all built on top of the plain
nondeterministic finite automata implemented here.

Public surface:

* :class:`~repro.automata.nfa.NFA` — mutable NFA with ε-transitions over
  arbitrary hashable symbols.
* :data:`~repro.automata.nfa.EPSILON` — the ε label.
* :mod:`~repro.automata.ops` — determinize, minimize, product, complement,
  union, emptiness, containment, equivalence.
* :mod:`~repro.automata.finiteness` — language finiteness via useful-SCC
  analysis (drives the FCR check).
* :mod:`~repro.automata.canonical` — canonical minimal-DFA signatures used
  to deduplicate language-equal automata.
"""

from repro.automata.nfa import EPSILON, NFA
from repro.automata.ops import (
    complement,
    determinize,
    intersect,
    is_empty,
    language_contains,
    language_equal,
    minimize,
    union,
)
from repro.automata.finiteness import enumerate_words, has_graph_cycle, language_is_finite
from repro.automata.canonical import canonical_signature

__all__ = [
    "EPSILON",
    "NFA",
    "canonical_signature",
    "complement",
    "determinize",
    "enumerate_words",
    "has_graph_cycle",
    "intersect",
    "is_empty",
    "language_contains",
    "language_equal",
    "language_is_finite",
    "minimize",
    "union",
]
