"""Symbol interning: a process-global total order and dense per-alphabet ids.

Canonicalization (:mod:`repro.automata.canonical`) and every construction
in :mod:`repro.automata.ops` need a *stable total order* on stack symbols
so that two equal-language automata are traversed identically and receive
identical signatures.  The seed ordered symbols by ``(qualname, repr)``,
which calls ``repr()`` on every symbol on every sort — measurable on the
symbolic engine's hot path, where the same few alphabets are re-sorted
thousands of times.

This module replaces that with interning: every symbol is assigned a
small integer *order id* exactly once, and all sorts compare those ints.
Ordering within a batch of not-yet-interned symbols falls back to the old
``(qualname, repr)`` key, so the first sort of any alphabet produces the
same sequence the seed did (reproducible signatures) and ``repr()`` runs
at most once per symbol per process.  Ad-hoc automata whose symbols were
never interned through a :class:`SymbolTable` take the same fallback path
— order ids are handed out on demand.

:class:`SymbolTable` is the per-alphabet (in practice per-PDS / per-CPDS
thread) view: a frozen tuple of the alphabet in global order plus a dense
``symbol -> 0..n-1`` index used by the dense canonical pipeline
(:mod:`repro.automata.dense`).
"""

from __future__ import annotations

import threading
from collections.abc import Hashable, Iterable

Symbol = Hashable

#: Global symbol order: symbol -> order id, assigned at first intern.
_ORDER: dict[Symbol, int] = {}
#: Guards order-id assignment.  The analysis service (PR 5) interns
#: from executor threads; two racing first-interns must not hand the
#: same rank to two symbols (equal ranks would make the canonical sort
#: unstable and split signatures for equal languages).  Reads of
#: already-assigned ids stay lock-free.
_order_lock = threading.Lock()


def _fallback_key(symbol: Symbol) -> tuple[str, str]:
    """Seed ordering for symbols not interned yet (qualname then repr)."""
    return (type(symbol).__qualname__, repr(symbol))


def order_of(symbol: Symbol) -> int:
    """The symbol's global order id, interning it if it is new."""
    rank = _ORDER.get(symbol)
    if rank is None:
        with _order_lock:
            rank = _ORDER.get(symbol)
            if rank is None:
                rank = len(_ORDER)
                _ORDER[symbol] = rank
    return rank


def intern_symbols(symbols: Iterable[Symbol]) -> None:
    """Intern a batch of symbols, assigning fresh order ids in fallback
    order so the batch sorts exactly as the seed's repr-keyed sort did."""
    with _order_lock:
        fresh = {s for s in symbols if s not in _ORDER}
        for symbol in sorted(fresh, key=_fallback_key):
            _ORDER[symbol] = len(_ORDER)


def sort_symbols(symbols: Iterable[Symbol]) -> list[Symbol]:
    """Sort symbols by the global interned order (interning new ones).

    Deduplicates.  For a batch interned together this coincides with the
    seed's ``(qualname, repr)`` order; afterwards every sort is pure int
    comparisons.
    """
    unique = set(symbols)
    fresh = unique - _ORDER.keys()
    if fresh:
        intern_symbols(fresh)
    return sorted(unique, key=_ORDER.__getitem__)


def interned_count() -> int:
    """Number of symbols interned so far (diagnostics / tests)."""
    return len(_ORDER)


class SymbolTable:
    """A frozen, densely indexed alphabet.

    ``symbols`` is the alphabet as a tuple in global interned order;
    ``index`` maps each symbol to its position ``0..n-1``.  Tables are
    cheap views over the global order — building one for an alphabet that
    was already interned performs no ``repr()`` calls.  Iterating or
    indexing a table is the fast path handed to
    :func:`repro.automata.canonical.canonical_nfa` by the reachability
    engines (it skips re-sorting).
    """

    __slots__ = ("symbols", "index")

    def __init__(self, symbols: Iterable[Symbol]) -> None:
        self.symbols: tuple[Symbol, ...] = tuple(sort_symbols(symbols))
        self.index: dict[Symbol, int] = {
            symbol: i for i, symbol in enumerate(self.symbols)
        }

    def id_of(self, symbol: Symbol) -> int:
        """Dense id of ``symbol`` within this table (KeyError if absent)."""
        return self.index[symbol]

    def __len__(self) -> int:
        return len(self.symbols)

    def __iter__(self):
        return iter(self.symbols)

    def __contains__(self, symbol: object) -> bool:
        return symbol in self.index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SymbolTable({list(self.symbols)!r})"
