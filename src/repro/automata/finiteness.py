"""Language finiteness and loop analysis.

The FCR check of the paper (Sec. 5, Fig. 4) decides whether the language
of a pushdown store automaton is finite: "every path from an initial state
to an accepting state is simple".  Equivalently, the language is infinite
exactly if some *useful* state (reachable from an initial state and
co-reachable to an accepting state) lies on a cycle that can pump at least
one real symbol.  ε-only cycles do not lengthen accepted words, so they
are ignored by :func:`language_is_finite` (but reported by
:func:`has_graph_cycle`, which mirrors the paper's cruder "no loops"
statement on trimmed automata).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from repro.automata.nfa import EPSILON, NFA

Symbol = Hashable


def _strongly_connected_components(nfa: NFA, restrict: frozenset) -> list[set]:
    """Iterative Tarjan over the transition graph restricted to ``restrict``."""
    index_of: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list[set] = []
    counter = 0

    adjacency: dict = {state: set() for state in restrict}
    for src, _label, dst in nfa.transitions():
        if src in restrict and dst in restrict:
            adjacency[src].add(dst)

    for root in restrict:
        if root in index_of:
            continue
        work = [(root, iter(adjacency[root]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: set = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def language_is_finite(nfa: NFA) -> bool:
    """True iff the automaton accepts finitely many words.

    Infinite exactly if a useful SCC contains an internal edge labeled
    with a real (non-ε) symbol: that edge can be pumped on an accepting
    path arbitrarily often.
    """
    useful = nfa.useful_states()
    if not useful:
        return True
    for component in _strongly_connected_components(nfa, useful):
        for src, label, dst in nfa.transitions():
            # An edge with both endpoints in one SCC lies on a cycle
            # (singleton SCCs only qualify via self-loops, src == dst).
            if src in component and dst in component and label is not EPSILON:
                return False
    return True


def has_graph_cycle(nfa: NFA, useful_only: bool = True) -> bool:
    """True iff the transition graph contains a cycle (any labels).

    With ``useful_only`` (the default) only states on initial→accepting
    paths are considered, matching the paper's reading of PSA loops.
    """
    restrict = nfa.useful_states() if useful_only else nfa.states
    for component in _strongly_connected_components(nfa, restrict):
        if len(component) > 1:
            return True
        member = next(iter(component))
        for label in nfa.labels_from(member):
            if member in nfa.targets(member, label):
                return True
    return False


def enumerate_words(nfa: NFA, max_length: int) -> Iterator[tuple]:
    """Yield every accepted word of length ≤ ``max_length`` (as tuples).

    Used by tests to compare automata against explicitly enumerated
    languages; exponential, keep ``max_length`` small.
    """
    symbols = sorted(nfa.alphabet(), key=lambda s: (type(s).__qualname__, repr(s)))
    start = nfa.epsilon_closure(nfa.initial)
    frontier: list[tuple[tuple, frozenset]] = [((), start)]
    while frontier:
        word, states = frontier.pop(0)
        if states & nfa.accepting:
            yield word
        if len(word) == max_length:
            continue
        for symbol in symbols:
            nxt = nfa.step(states, symbol)
            if nxt:
                frontier.append((word + (symbol,), nxt))
