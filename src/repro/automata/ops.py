"""Classical constructions on NFAs.

All operations are purely functional: they build fresh automata and never
mutate their inputs.  Determinization uses the subset construction;
minimization uses Moore partition refinement on a completed DFA.  These
automata stay small in this library (stack alphabets of benchmark CPDS
have a handful of symbols), so clarity wins over asymptotic tuning.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.automata.intern import sort_symbols
from repro.automata.nfa import EPSILON, NFA

Symbol = Hashable

#: Canonical dead state added when completing a DFA.
DEAD = ("__dead__",)


def _sort_key(symbol: Symbol):
    """Repr-based ordering — the fallback used to order symbols that were
    never interned (see :mod:`repro.automata.intern`, which now provides
    the int-keyed hot-path order)."""
    return (type(symbol).__qualname__, repr(symbol))


def _sorted_alphabet(nfa: NFA, alphabet: Iterable[Symbol] | None) -> list[Symbol]:
    symbols = nfa.alphabet() if alphabet is None else alphabet
    return sort_symbols(symbols)


def determinize(
    nfa: NFA,
    alphabet: Iterable[Symbol] | None = None,
    initial: Iterable | None = None,
) -> NFA:
    """Subset construction.  The result has frozenset states, a single
    initial state, no ε-transitions, and is deterministic (but possibly
    incomplete: missing transitions mean rejection).

    ``initial`` overrides the automaton's initial states — used to read
    one automaton from several entry points without copying it."""
    symbols = _sorted_alphabet(nfa, alphabet)
    start = nfa.epsilon_closure(nfa.initial if initial is None else initial)
    dfa = NFA(initial=[start])
    if start & nfa.accepting:
        dfa.add_accepting(start)
    work = deque([start])
    seen = {start}
    while work:
        current = work.popleft()
        for symbol in symbols:
            nxt = nfa.step(current, symbol)
            if not nxt:
                continue
            dfa.add_transition(current, symbol, nxt)
            if nxt not in seen:
                seen.add(nxt)
                if nxt & nfa.accepting:
                    dfa.add_accepting(nxt)
                work.append(nxt)
    return dfa


def complete(dfa: NFA, alphabet: Iterable[Symbol]) -> NFA:
    """Return a total version of a deterministic automaton: every state
    has exactly one outgoing transition per alphabet symbol (a dead sink
    is added when needed)."""
    symbols = sort_symbols(alphabet)
    total = dfa.copy()
    need_dead = False
    for state in list(total.states):
        for symbol in symbols:
            if not total.targets(state, symbol):
                total.add_transition(state, symbol, DEAD)
                need_dead = True
    if need_dead:
        for symbol in symbols:
            total.add_transition(DEAD, symbol, DEAD)
    return total


def complement(nfa: NFA, alphabet: Iterable[Symbol]) -> NFA:
    """Complement with respect to ``alphabet*``."""
    total = complete(determinize(nfa, alphabet), alphabet)
    flipped = NFA(total.states, total.initial, total.states - total.accepting)
    for src, label, dst in total.transitions():
        flipped.add_transition(src, label, dst)
    return flipped


def intersect(left: NFA, right: NFA) -> NFA:
    """Product automaton for language intersection.

    ε-transitions are handled by letting either component move alone.
    """
    product = NFA()
    start_pairs = [(lhs, r) for lhs in left.initial for r in right.initial]
    work = deque(start_pairs)
    seen = set(start_pairs)
    for pair in start_pairs:
        product.add_initial(pair)
    while work:
        (lhs, r) = work.popleft()
        if lhs in left.accepting and r in right.accepting:
            product.add_accepting((lhs, r))
        moves: list[tuple[Symbol, tuple]] = []
        for dst in left.targets(lhs, EPSILON):
            moves.append((EPSILON, (dst, r)))
        for dst in right.targets(r, EPSILON):
            moves.append((EPSILON, (lhs, dst)))
        shared = (left.labels_from(lhs) - {EPSILON}) & (right.labels_from(r) - {EPSILON})
        for symbol in shared:
            for ldst in left.targets(lhs, symbol):
                for rdst in right.targets(r, symbol):
                    moves.append((symbol, (ldst, rdst)))
        for symbol, pair in moves:
            product.add_transition((lhs, r), symbol, pair)
            if pair not in seen:
                seen.add(pair)
                work.append(pair)
    return product


def union(left: NFA, right: NFA) -> NFA:
    """Disjoint union (language union); states are tagged to avoid clashes."""
    result = NFA()
    for tag, nfa in (("L", left), ("R", right)):
        for state in nfa.initial:
            result.add_initial((tag, state))
        for state in nfa.accepting:
            result.add_accepting((tag, state))
        for state in nfa.states:
            result.add_state((tag, state))
        for src, label, dst in nfa.transitions():
            result.add_transition((tag, src), label, (tag, dst))
    return result


def is_empty(nfa: NFA) -> bool:
    """True iff the automaton accepts no word."""
    return not (nfa.reachable_states() & nfa.accepting)


def language_contains(big: NFA, small: NFA, alphabet: Iterable[Symbol] | None = None) -> bool:
    """True iff L(small) ⊆ L(big)."""
    if alphabet is None:
        alphabet = set(big.alphabet()) | set(small.alphabet())
    return is_empty(intersect(small, complement(big, alphabet)))


def language_equal(left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None) -> bool:
    """True iff the two automata accept the same language."""
    if alphabet is None:
        alphabet = set(left.alphabet()) | set(right.alphabet())
    return language_contains(left, right, alphabet) and language_contains(
        right, left, alphabet
    )


def minimize(
    nfa: NFA,
    alphabet: Iterable[Symbol] | None = None,
    initial: Iterable | None = None,
) -> NFA:
    """Minimal complete DFA for the automaton's language.

    Moore partition refinement over an integer-indexed transition table
    of the subset automaton (completed with a virtual dead state only
    when the DFA is partial).  State names in the result are the block
    ids; use :func:`repro.automata.canonical.canonical_signature` for a
    renaming-independent form.  ``initial`` is forwarded to
    :func:`determinize`.
    """
    symbols = _sorted_alphabet(nfa, alphabet)
    dfa = determinize(nfa, symbols, initial=initial)

    states = list(dfa.states)
    index = {state: i for i, state in enumerate(states)}
    n = len(states)
    dead = n
    table: list[list[int]] = []
    need_dead = False
    for state in states:
        row = []
        for symbol in symbols:
            targets = dfa.targets(state, symbol)
            if targets:
                row.append(index[next(iter(targets))])
            else:
                row.append(dead)
                need_dead = True
        table.append(row)
    total = n + 1 if need_dead else n
    if need_dead:
        table.append([dead] * len(symbols))
    accepting_bits = [state in dfa.accepting for state in states]
    if need_dead:
        accepting_bits.append(False)

    block = [1 if bit else 0 for bit in accepting_bits]
    while True:
        mapping: dict = {}
        new_block = [0] * total
        for i in range(total):
            key = (block[i], tuple(block[t] for t in table[i]))
            if key not in mapping:
                mapping[key] = len(mapping)
            new_block[i] = mapping[key]
        if new_block == block:
            break
        block = new_block

    representative: dict[int, int] = {}
    for i in range(total):
        representative.setdefault(block[i], i)

    start_block = block[index[next(iter(dfa.initial))]]
    minimal = NFA(initial=[start_block])
    for block_id, rep in representative.items():
        minimal.add_state(block_id)
        if accepting_bits[rep]:
            minimal.add_accepting(block_id)
        for j, symbol in enumerate(symbols):
            minimal.add_transition(block_id, symbol, block[table[rep][j]])
    return minimal
