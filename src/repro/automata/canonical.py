"""Canonical, hashable signatures for automata languages.

The symbolic engine (paper Sec. 6, approach 3) must decide whether a
freshly computed symbolic state ``⟨q|A1..An⟩`` was already seen.  Automata
are only meaningful up to language equality, so we canonicalize: minimize
to the unique minimal complete DFA and number its states by a breadth-first
traversal that visits alphabet symbols in a fixed order.  Two automata get
the same signature exactly if they accept the same language over the given
alphabet.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.automata.nfa import NFA
from repro.automata.ops import _sort_key, minimize

Symbol = Hashable

#: Signature type: (accepting-bitmap, transition table) over BFS-numbered
#: states.  ``None`` entries mark transitions into unreachable territory
#: (cannot occur for complete DFAs but kept for robustness).
Signature = tuple


def _bfs_numbering(dfa: NFA, symbols: list) -> tuple[dict, list]:
    """Canonical state numbering by BFS in fixed symbol order."""
    start = next(iter(dfa.initial))
    numbering = {start: 0}
    order = [start]
    work = deque([start])
    while work:
        state = work.popleft()
        for symbol in symbols:
            targets = dfa.targets(state, symbol)
            if not targets:
                continue
            target = next(iter(targets))
            if target not in numbering:
                numbering[target] = len(numbering)
                order.append(target)
                work.append(target)
    return numbering, order


def canonical_signature(
    nfa: NFA, alphabet: Iterable[Symbol], initial: Iterable | None = None
) -> Signature:
    """Return a hashable value identifying ``L(nfa)`` over ``alphabet``.

    ``initial`` overrides the automaton's entry states (forwarded to
    :func:`~repro.automata.ops.minimize`)."""
    symbols = sorted(set(alphabet), key=_sort_key)
    dfa = minimize(nfa, symbols, initial=initial)
    numbering, order = _bfs_numbering(dfa, symbols)
    accepting = tuple(state in dfa.accepting for state in order)
    table = tuple(
        tuple(
            numbering[next(iter(dfa.targets(state, symbol)))]
            if dfa.targets(state, symbol)
            else None
            for symbol in symbols
        )
        for state in order
    )
    return (tuple(symbols), accepting, table)


def canonical_nfa(
    nfa: NFA, alphabet: Iterable[Symbol], initial: Iterable | None = None
) -> tuple[NFA, Signature]:
    """Minimal complete DFA with integer states in canonical BFS order.

    Returns the rebuilt automaton together with its signature.  Two
    automata with equal languages yield structurally identical results,
    which keeps long-running symbolic exploration from accumulating
    ever-deeper nested state names.
    """
    symbols = sorted(set(alphabet), key=_sort_key)
    dfa = minimize(nfa, symbols, initial=initial)
    numbering, order = _bfs_numbering(dfa, symbols)
    rebuilt = NFA(initial=[0])
    accepting_bits = []
    table = []
    for state in order:
        number = numbering[state]
        accepting_bits.append(state in dfa.accepting)
        if state in dfa.accepting:
            rebuilt.add_accepting(number)
        row = []
        for symbol in symbols:
            targets = dfa.targets(state, symbol)
            if targets:
                target_number = numbering[next(iter(targets))]
                rebuilt.add_transition(number, symbol, target_number)
                row.append(target_number)
            else:
                row.append(None)
        table.append(tuple(row))
    signature = (tuple(symbols), tuple(accepting_bits), tuple(table))
    return rebuilt, signature
