"""Canonical, hashable signatures for automata languages — hash-consed.

The symbolic engine (paper Sec. 6, approach 3) must decide whether a
freshly computed symbolic state ``⟨q|A1..An⟩`` was already seen.  Automata
are only meaningful up to language equality, so we canonicalize: minimize
to the unique minimal complete DFA and number its states by a breadth-first
traversal that visits alphabet symbols in a fixed order.  Two automata get
the same signature exactly if they accept the same language over the given
alphabet.

Performance notes
-----------------
Canonicalization dominates the symbolic engine's per-expansion cost, and
the same languages recur constantly across context expansions, so three
layers keep it cheap:

1. **Structural memo (LRU).**  Calls are keyed by a *structural hash* —
   the exact edge set reachable from the entry states, the reachable
   accepting states, and the target alphabet — in a bounded LRU
   (:data:`CANONICAL_CACHE_SIZE`).  A hit skips canonicalization
   entirely.  Mutating an *input* automaton is safe: its structural key
   changes, so stale entries can never be served.
2. **Dense fused pipeline.**  Misses run the fused subset-construction →
   completion → Hopcroft O(n log n) minimization of
   :mod:`repro.automata.dense` over contiguous int tables; the seed's
   determinize → complete → Moore path (kept as the ``"moore"`` backend,
   see :func:`set_backend`) built three intermediate automata per call
   and re-sorted symbols by ``repr()``.  Symbol order now comes from the
   intern tables of :mod:`repro.automata.intern`.
3. **Hash-consing.**  Every canonical result is interned by its canonical
   table: language-equal automata — even ones with *different* structural
   keys — share one immutable :class:`CanonicalNFA` and one
   :class:`Signature` object.  Signature hashes are precomputed and
   equality short-circuits on identity, so symbolic-state dedup degrades
   to pointer/int comparisons.  The interned DFA also memoizes the
   per-language analyses (``coreachable_states``, the engines'
   ``nfa_tops``) that App. E's ``T(Ai)`` projection needs: they are
   computed once per *language*, not once per call.

Callers must treat returned automata as immutable (every in-library
caller does; copy first if you need to mutate).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from collections.abc import Hashable, Iterable
from contextlib import contextmanager
from itertools import count

from repro.automata import dense
from repro.automata.intern import SymbolTable, sort_symbols
from repro.automata.nfa import NFA
from repro.automata.ops import minimize
from repro.util.meter import METER

Symbol = Hashable

#: Bound on the number of memoized canonicalizations (LRU eviction).  The
#: hash-cons table is *not* bounded: it holds one small DFA per distinct
#: language ever seen, and stable identity is the point.
CANONICAL_CACHE_SIZE = 4096

_NO_EDGES: dict = {}

_cache: OrderedDict[tuple, tuple["CanonicalNFA", "Signature"]] = OrderedDict()
#: Hash-cons table: canonical (symbols, bits, table) -> interned pair.
_interned: dict[tuple, tuple["CanonicalNFA", "Signature"]] = {}
#: Guards the memo/hash-cons tables and their counters.  The analysis
#: service (PR 5) runs engines on a thread executor, which made these
#: previously single-threaded globals concurrently mutated for the
#: first time (``get`` → ``move_to_end`` must not race a clear or an
#: eviction, and two threads must not intern two pairs for one
#: language).  The heavy work — the dense pipeline itself — runs
#: outside the lock; at worst two threads canonicalize the same miss
#: and the second's result is discarded at intern time.
_lock = threading.Lock()
_token = count()
# Per-cache hit/miss totals: kept here (not read back from METER) so the
# info dict stays consistent with the cache even if METER is reset.
_hits = 0
_misses = 0

#: Active minimization backend: "dense" (Hopcroft, default) or "moore"
#: (the seed pipeline, kept for differential tests and benchmarking).
_backend = "dense"


class Signature:
    """Hash-consed identity of a language over a fixed alphabet.

    ``key`` is the canonical ``(symbols, accepting bits, transition
    table)`` tuple; ``token`` a small per-process serial.  The hash is
    precomputed at intern time and equality short-circuits on identity,
    so container operations on signatures cost O(1) after interning.
    Signatures with equal keys compare equal even across
    :func:`canonical_cache_clear` (tokens then differ — compare
    signatures, never tokens, across clears).
    """

    __slots__ = ("key", "token", "_hash")

    def __init__(self, key: tuple, token: int) -> None:
        self.key = key
        self.token = token
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, Signature):
            return self.key == other.key
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signature(token={self.token}, states={len(self.key[2])})"


class CanonicalNFA(NFA):
    """An interned canonical minimal complete DFA.

    Immutable by convention; carries its :class:`Signature` and lazily
    caches the per-language analyses the reachability engines keep
    asking for (``coreachable_states``; the tops cache is filled by
    :func:`repro.reach.symbolic.nfa_tops`)."""

    __slots__ = ("signature", "_tops", "_coreach", "_useful_edges")

    def __init__(self) -> None:
        super().__init__(initial=[0])
        self.signature: Signature | None = None
        self._tops = None
        self._coreach = None
        self._useful_edges = None

    def coreachable_states(self) -> frozenset:
        if self._coreach is None:
            self._coreach = super().coreachable_states()
        return self._coreach

    def useful_edges(self) -> tuple[tuple, ...]:
        """Transitions between coreachable states, cached.

        A canonical DFA is complete, so it carries a dead sink and every
        transition into it; consumers embedding the automaton for
        language-preserving constructions (the symbolic engine's context
        expansion) only need the useful part.  All states are reachable
        by construction, so useful == coreachable here.
        """
        if self._useful_edges is None:
            keep = self.coreachable_states()
            self._useful_edges = tuple(
                edge
                for edge in self.transitions()
                if edge[0] in keep and edge[2] in keep
            )
        return self._useful_edges


#: Legacy alias for the signature payload type.
SignatureKey = tuple


def set_backend(name: str) -> str:
    """Select the minimization backend (``"dense"`` or ``"moore"``);
    returns the previous one.  Both produce identical canonical forms
    (property-tested) and share the memo and hash-cons tables."""
    global _backend
    if name not in ("dense", "moore"):
        raise ValueError(f"unknown canonicalization backend {name!r}")
    previous = _backend
    _backend = name
    return previous


def get_backend() -> str:
    return _backend


@contextmanager
def backend(name: str):
    """Temporarily switch the minimization backend (benchmark harness)."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def canonical_cache_clear() -> None:
    """Drop every memoized canonicalization, the hash-cons table, and the
    hit/miss totals (test isolation; the shared runtime-cache cleanup)."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _interned.clear()
        _hits = 0
        _misses = 0


def canonical_cache_info() -> dict[str, int]:
    """Current size and hit/miss totals (since the last clear) of the
    memo cache, plus the number of hash-consed distinct languages."""
    with _lock:
        return {
            "size": len(_cache),
            "maxsize": CANONICAL_CACHE_SIZE,
            "hits": _hits,
            "misses": _misses,
            "interned": len(_interned),
        }


def _structural_key(nfa: NFA, symbols: tuple, entry: frozenset) -> tuple:
    """Exact fingerprint of the part of ``nfa`` a canonicalization sees:
    every edge reachable from ``entry`` (ε included), the reachable
    accepting states, and the target alphabet.  The traversal emits each
    edge exactly once (deduplicated by construction); the key uses a
    frozenset so automata built with different insertion orders — hence
    different traversal orders — still share one cache entry."""
    seen = set(entry)
    work = deque(entry)
    edges: list[tuple] = []
    while work:
        state = work.popleft()
        for label, targets in nfa._delta.get(state, _NO_EDGES).items():
            for target in targets:
                edges.append((state, label, target))
                if target not in seen:
                    seen.add(target)
                    work.append(target)
    return (
        entry,
        symbols,
        frozenset(edges),
        frozenset(nfa.accepting & seen),
    )


def _canonical_form_moore(nfa: NFA, symbols: list, initial):
    """The seed pipeline (determinize → complete → Moore → BFS renumber)
    emitting the same ``(bits, table)`` form as the dense path."""
    dfa = minimize(nfa, symbols, initial=initial)
    start = next(iter(dfa.initial))
    numbering = {start: 0}
    order = [start]
    work = deque([start])
    while work:
        state = work.popleft()
        for symbol in symbols:
            targets = dfa.targets(state, symbol)
            if not targets:
                continue
            target = next(iter(targets))
            if target not in numbering:
                numbering[target] = len(numbering)
                order.append(target)
                work.append(target)
    bits = tuple(state in dfa.accepting for state in order)
    table = tuple(
        tuple(numbering[next(iter(dfa.targets(state, symbol)))] for symbol in symbols)
        for state in order
    )
    return bits, table


def _intern(symbols: tuple, bits: tuple, table: tuple):
    """Hash-cons a canonical form into its unique (DFA, signature) pair."""
    key = (symbols, bits, table)
    pair = _interned.get(key)
    if pair is not None:
        METER.bump("canonical.intern_hits")
        return pair
    dfa = CanonicalNFA()
    for state, (accepting, row) in enumerate(zip(bits, table)):
        dfa.add_state(state)
        if accepting:
            dfa.add_accepting(state)
        for symbol, target in zip(symbols, row):
            dfa.add_transition(state, symbol, target)
    signature = Signature(key, next(_token))
    dfa.signature = signature
    pair = (dfa, signature)
    _interned[key] = pair
    return pair


def intern_canonical_form(
    symbols: tuple, bits: tuple, table: tuple
) -> tuple[CanonicalNFA, Signature]:
    """Hash-cons an already-canonical ``(symbols, bits, table)`` form —
    the payload of a :class:`Signature` key — into its unique interned
    ``(DFA, signature)`` pair.

    This is the restore path of engine snapshots
    (:mod:`repro.service.snapshot`): a persisted symbolic frontier
    stores signature keys only, and rebuilding through the hash-cons
    table guarantees the restored automata share identity (and the
    per-language analysis caches) with anything the process
    canonicalizes afterwards.  The caller vouches that the form really
    is canonical (snapshots only ever persist keys that came out of
    :func:`canonical_nfa`).
    """
    with _lock:
        return _intern(symbols, bits, table)


def canonical_nfa(
    nfa: NFA, alphabet: Iterable[Symbol], initial: Iterable | None = None
) -> tuple[CanonicalNFA, Signature]:
    """Minimal complete DFA with integer states in canonical BFS order.

    Returns the interned automaton together with its signature: automata
    with equal languages over ``alphabet`` yield the *identical* pair of
    objects (see the module's Performance notes), which keeps
    long-running symbolic exploration from accumulating ever-deeper
    nested state names and makes symbolic-state dedup cheap.  Treat the
    returned automaton as read-only.

    Passing the alphabet as a :class:`~repro.automata.intern.SymbolTable`
    skips the sort entirely (the table is already in canonical order).
    """
    if isinstance(alphabet, SymbolTable):
        symbols = alphabet.symbols
    else:
        symbols = tuple(sort_symbols(alphabet))
    if initial is not None:
        initial = list(initial)
    entry = frozenset(nfa.initial if initial is None else initial)
    key = _structural_key(nfa, symbols, entry)
    global _hits, _misses
    with _lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            _hits += 1
            METER.bump("canonical.cache_hits")
            return cached
        _misses += 1
    METER.bump("canonical.cache_misses")
    if _backend == "dense":
        bits, table = dense.canonical_form(nfa, symbols, initial=initial)
    else:
        bits, table = _canonical_form_moore(nfa, list(symbols), initial)
    with _lock:
        result = _intern(symbols, bits, table)
        _cache[key] = result
        while len(_cache) > CANONICAL_CACHE_SIZE:
            _cache.popitem(last=False)
    return result


def canonical_signature(
    nfa: NFA, alphabet: Iterable[Symbol], initial: Iterable | None = None
) -> Signature:
    """Return a hashable value identifying ``L(nfa)`` over ``alphabet``.

    ``initial`` overrides the automaton's entry states (forwarded to the
    subset construction).  Shares the memo and hash-cons tables with
    :func:`canonical_nfa`.
    """
    return canonical_nfa(nfa, alphabet, initial=initial)[1]
