"""Canonical, hashable signatures for automata languages — memoized.

The symbolic engine (paper Sec. 6, approach 3) must decide whether a
freshly computed symbolic state ``⟨q|A1..An⟩`` was already seen.  Automata
are only meaningful up to language equality, so we canonicalize: minimize
to the unique minimal complete DFA and number its states by a breadth-first
traversal that visits alphabet symbols in a fixed order.  Two automata get
the same signature exactly if they accept the same language over the given
alphabet.

Canonicalization (determinize → complete → minimize → renumber) dominates
the symbolic engine's per-expansion cost, and the same automaton structure
recurs constantly across context expansions, so results are memoized in a
bounded LRU cache keyed by a *structural hash*: the exact set of
transitions reachable from the entry states, the reachable accepting
states, and the target alphabet.  A cache hit returns the previously built
``(dfa, signature)`` pair — the *identical* objects, so callers must treat
the returned automaton as immutable (every in-library caller does; copy
first if you need to mutate).  Mutating an *input* automaton is safe: its
structural key changes, so stale entries can never be served.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from collections.abc import Hashable, Iterable

from repro.automata.nfa import NFA
from repro.automata.ops import _sort_key, minimize
from repro.util.meter import METER

Symbol = Hashable

#: Signature type: (alphabet, accepting-bitmap, transition table) over
#: BFS-numbered states.  ``None`` entries mark transitions into
#: unreachable territory (cannot occur for complete DFAs but kept for
#: robustness).
Signature = tuple

#: Bound on the number of memoized canonicalizations (LRU eviction).
CANONICAL_CACHE_SIZE = 4096

_cache: OrderedDict[tuple, tuple[NFA, Signature]] = OrderedDict()
# Per-cache hit/miss totals: kept here (not read back from METER) so the
# info dict stays consistent with the cache even if METER is reset.
_hits = 0
_misses = 0


def canonical_cache_clear() -> None:
    """Drop every memoized canonicalization and its hit/miss totals
    (test isolation)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0


def canonical_cache_info() -> dict[str, int]:
    """Current size and hit/miss totals (since the last clear) of the
    memo cache."""
    return {
        "size": len(_cache),
        "maxsize": CANONICAL_CACHE_SIZE,
        "hits": _hits,
        "misses": _misses,
    }


def _structural_key(nfa: NFA, symbols: tuple, entry: frozenset) -> tuple:
    """Exact fingerprint of the part of ``nfa`` a canonicalization sees:
    every edge reachable from ``entry`` (ε included), the reachable
    accepting states, and the target alphabet."""
    seen = set(entry)
    work = deque(entry)
    edges: list[tuple] = []
    while work:
        state = work.popleft()
        for label in nfa.labels_from(state):
            for target in nfa.targets(state, label):
                edges.append((state, label, target))
                if target not in seen:
                    seen.add(target)
                    work.append(target)
    return (
        entry,
        symbols,
        frozenset(edges),
        frozenset(nfa.accepting & seen),
    )


def _bfs_numbering(dfa: NFA, symbols: list) -> tuple[dict, list]:
    """Canonical state numbering by BFS in fixed symbol order."""
    start = next(iter(dfa.initial))
    numbering = {start: 0}
    order = [start]
    work = deque([start])
    while work:
        state = work.popleft()
        for symbol in symbols:
            targets = dfa.targets(state, symbol)
            if not targets:
                continue
            target = next(iter(targets))
            if target not in numbering:
                numbering[target] = len(numbering)
                order.append(target)
                work.append(target)
    return numbering, order


def _canonicalize(
    nfa: NFA, symbols: list, initial: Iterable | None
) -> tuple[NFA, Signature]:
    dfa = minimize(nfa, symbols, initial=initial)
    numbering, order = _bfs_numbering(dfa, symbols)
    rebuilt = NFA(initial=[0])
    accepting_bits = []
    table = []
    for state in order:
        number = numbering[state]
        accepting_bits.append(state in dfa.accepting)
        if state in dfa.accepting:
            rebuilt.add_accepting(number)
        row = []
        for symbol in symbols:
            targets = dfa.targets(state, symbol)
            if targets:
                target_number = numbering[next(iter(targets))]
                rebuilt.add_transition(number, symbol, target_number)
                row.append(target_number)
            else:
                row.append(None)
        table.append(tuple(row))
    signature = (tuple(symbols), tuple(accepting_bits), tuple(table))
    return rebuilt, signature


def canonical_nfa(
    nfa: NFA, alphabet: Iterable[Symbol], initial: Iterable | None = None
) -> tuple[NFA, Signature]:
    """Minimal complete DFA with integer states in canonical BFS order.

    Returns the rebuilt automaton together with its signature.  Two
    automata with equal languages yield structurally identical results,
    which keeps long-running symbolic exploration from accumulating
    ever-deeper nested state names.

    Results are memoized by structural hash (see the module docstring):
    a repeated call with the same reachable structure returns the cached
    ``(dfa, signature)`` pair itself.  Treat the returned automaton as
    read-only.
    """
    symbols = tuple(sorted(set(alphabet), key=_sort_key))
    if initial is not None:
        initial = list(initial)
    entry = frozenset(nfa.initial if initial is None else initial)
    key = _structural_key(nfa, symbols, entry)
    global _hits, _misses
    cached = _cache.get(key)
    if cached is not None:
        _cache.move_to_end(key)
        _hits += 1
        METER.bump("canonical.cache_hits")
        return cached
    _misses += 1
    METER.bump("canonical.cache_misses")
    result = _canonicalize(nfa, list(symbols), initial)
    _cache[key] = result
    while len(_cache) > CANONICAL_CACHE_SIZE:
        _cache.popitem(last=False)
    return result


def canonical_signature(
    nfa: NFA, alphabet: Iterable[Symbol], initial: Iterable | None = None
) -> Signature:
    """Return a hashable value identifying ``L(nfa)`` over ``alphabet``.

    ``initial`` overrides the automaton's entry states (forwarded to
    :func:`~repro.automata.ops.minimize`).  Shares the memo cache with
    :func:`canonical_nfa`.
    """
    return canonical_nfa(nfa, alphabet, initial=initial)[1]
