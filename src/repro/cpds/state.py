"""Global and visible states of a CPDS, and the projection ``T``.

A global state is ``⟨q|w1,...,wn⟩``; its visible projection keeps only
the top of each stack (Sec. 2.2, Eq. 1):
``T(s) = ⟨q|T(w1),...,T(wn)⟩`` with ``T(w) = σ1`` for ``w = σ1..σz`` and
``ε`` (here :data:`~repro.pds.state.EMPTY`) for the empty stack.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.pds.state import EMPTY, PDSState, format_stack, format_top

Shared = Hashable
Symbol = Hashable


@dataclass(frozen=True, slots=True)
class GlobalState:
    """A CPDS state ``⟨q|w1,...,wn⟩`` (stacks top-first).

    The hash is precomputed at construction: global states are hashed
    far more often than they are created (seen-set membership, parent
    maps, context-tree caches), and re-hashing the nested stack tuples
    on every lookup was a measurable product-space cost.
    """

    shared: Shared
    stacks: tuple[tuple[Symbol, ...], ...]
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.stacks, tuple) or not all(
            isinstance(stack, tuple) for stack in self.stacks
        ):
            object.__setattr__(
                self, "stacks", tuple(tuple(stack) for stack in self.stacks)
            )
        object.__setattr__(self, "_hash", hash((self.shared, self.stacks)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def n_threads(self) -> int:
        return len(self.stacks)

    def thread(self, index: int) -> PDSState:
        """Thread ``index``'s thread state ``(q, w_index)``."""
        return PDSState(self.shared, self.stacks[index])

    def visible(self) -> "VisibleState":
        """The projection ``T(s)`` (Eq. 1 extended to global states)."""
        return VisibleState(
            self.shared,
            tuple(stack[0] if stack else EMPTY for stack in self.stacks),
        )

    def max_stack_size(self) -> int:
        return max((len(stack) for stack in self.stacks), default=0)

    def __str__(self) -> str:
        stacks = ",".join(format_stack(stack) for stack in self.stacks)
        return f"⟨{self.shared}|{stacks}⟩"


@dataclass(frozen=True, slots=True)
class VisibleState:
    """A visible state ``⟨q|σ1,...,σn⟩``; ``σi`` is a top symbol or ε.

    Hash precomputed for the same reason as :class:`GlobalState`: the
    visible products of the symbolic engine and the cumulative ``T(Rk)``
    sets hash each visible state many times per construction.
    """

    shared: Shared
    tops: tuple[Symbol, ...]
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.tops, tuple):
            object.__setattr__(self, "tops", tuple(self.tops))
        object.__setattr__(self, "_hash", hash((self.shared, self.tops)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def n_threads(self) -> int:
        return len(self.tops)

    def thread_visible(self, index: int) -> tuple[Shared, Symbol]:
        """Thread ``index``'s visible state ``(q, σ_index)``."""
        return (self.shared, self.tops[index])

    def __str__(self) -> str:
        tops = ",".join(format_top(top) for top in self.tops)
        return f"⟨{self.shared}|{tops}⟩"


def project(states) -> frozenset[VisibleState]:
    """``T(S)`` for a collection of global states: the set of projections."""
    return frozenset(state.visible() for state in states)
