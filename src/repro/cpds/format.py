"""Textual exchange format for CPDS.

The CUBA tool consumes CPDS descriptions; this module defines a small,
line-based, round-trippable format::

    # Fig. 1 of the paper
    cpds fig1
    shared: 0 1 2 3
    init: 0
    thread P1
      stack: 1
      rule f1: (0, 1) -> (1, 2)
      rule f2: (3, 2) -> (0, 1)
    thread P2
      stack: 4
      rule b1: (0, 4) -> (0, -)
      rule b2: (1, 4) -> (2, 5)
      rule b3: (2, 5) -> (3, 4 6)

Grammar notes:

* ``-`` denotes the empty word ε (empty read = empty-stack action,
  empty write = pop).
* a rule writes at most two symbols, whitespace-separated: ``4 6``
  pushes ``4`` above ``6`` (paper order: new stack reads ``46...``).
* tokens that look like integers are parsed as ``int``; anything else
  stays a string.  Comments run from ``#`` to end of line.
"""

from __future__ import annotations

import re
from collections.abc import Hashable

from repro.errors import FormatError
from repro.cpds.cpds import CPDS
from repro.pds.pds import PDS

Symbol = Hashable

#: Token charset: anything without whitespace or structural characters.
_TOKEN = r"[^\s(),:#<>]+"

_RULE_RE = re.compile(
    rf"rule\s+(?:(?P<label>{_TOKEN})\s*:\s*)?"
    rf"\(\s*(?P<q>{_TOKEN})\s*,\s*(?P<read>{_TOKEN})\s*\)"
    rf"\s*->\s*"
    rf"\(\s*(?P<q2>{_TOKEN})\s*,\s*(?P<write>{_TOKEN}(?:\s+{_TOKEN})?)\s*\)\s*$"
)


def _atom(token: str):
    """Parse one token: integer-looking tokens become ints."""
    try:
        return int(token)
    except ValueError:
        return token


def _atoms(tokens: str) -> list:
    return [_atom(token) for token in tokens.split()]


def parse_cpds(text: str) -> CPDS:
    """Parse the textual format into a :class:`CPDS`."""
    name = ""
    shared: list = []
    init = None
    threads: list[PDS] = []
    stacks: list[tuple] = []
    current: PDS | None = None

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        if line.startswith("cpds"):
            name = line[len("cpds"):].strip()
        elif line.startswith("shared:"):
            shared = _atoms(line[len("shared:"):])
        elif line.startswith("init:"):
            tokens = _atoms(line[len("init:"):])
            if len(tokens) != 1:
                raise FormatError("init expects exactly one shared state", line=line_number)
            init = tokens[0]
        elif line.startswith("thread"):
            if init is None:
                raise FormatError("thread before init", line=line_number)
            thread_name = line[len("thread"):].strip()
            current = PDS(
                initial_shared=init, shared_states=shared, name=thread_name
            )
            threads.append(current)
            stacks.append(())
        elif line.startswith("stack:"):
            if current is None:
                raise FormatError("stack outside a thread", line=line_number)
            tokens = line[len("stack:"):].split()
            stacks[-1] = tuple(
                _atom(token) for token in tokens if token != "-"
            )
            for symbol in stacks[-1]:
                current.declare_symbol(symbol)
        elif line.startswith("rule"):
            if current is None:
                raise FormatError("rule outside a thread", line=line_number)
            match = _RULE_RE.match(line)
            if match is None:
                raise FormatError(f"bad rule syntax: {line!r}", line=line_number)
            read_token = match.group("read")
            read = None if read_token == "-" else _atom(read_token)
            write_tokens = match.group("write").split()
            write = tuple(
                _atom(token) for token in write_tokens if token != "-"
            )
            if write_tokens == ["-"]:
                write = ()
            current.rule(
                _atom(match.group("q")),
                read,
                _atom(match.group("q2")),
                write,
                label=match.group("label") or "",
            )
        else:
            raise FormatError(f"unrecognized line: {line!r}", line=line_number)

    if init is None:
        raise FormatError("missing init declaration")
    if not threads:
        raise FormatError("no threads declared")
    return CPDS(threads, initial_stacks=stacks, name=name)


def _token(value) -> str:
    text = str(value)
    if text == "-" or not re.fullmatch(_TOKEN, text):
        raise FormatError(f"value {value!r} is not expressible in the textual format")
    return text


def format_cpds(cpds: CPDS) -> str:
    """Serialize a CPDS to the textual format (inverse of parse)."""
    sort_key = lambda value: (type(value).__qualname__, repr(value))  # noqa: E731
    lines: list[str] = []
    if cpds.name:
        lines.append(f"cpds {cpds.name}")
    else:
        lines.append("cpds")
    shared = " ".join(_token(s) for s in sorted(cpds.shared_states, key=sort_key))
    lines.append(f"shared: {shared}")
    lines.append(f"init: {_token(cpds.initial_shared)}")
    for index, pds in enumerate(cpds.threads):
        lines.append(f"thread {pds.name or f'P{index + 1}'}")
        stack = cpds.initial_stacks[index]
        if stack:
            lines.append("  stack: " + " ".join(_token(s) for s in stack))
        for action in pds.actions:
            label = f"{_token(action.label)}: " if action.label else ""
            read = _token(action.read[0]) if action.read else "-"
            write = " ".join(_token(s) for s in action.write) if action.write else "-"
            lines.append(
                f"  rule {label}({_token(action.from_shared)}, {read})"
                f" -> ({_token(action.to_shared)}, {write})"
            )
    return "\n".join(lines) + "\n"
