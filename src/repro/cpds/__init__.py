"""Concurrent pushdown systems (paper Sec. 2.2).

A CPDS is a fixed-thread asynchronous combination of sequential PDSs that
share the set ``Q`` of shared states and the initial shared state.  This
package provides the data model, global/visible states and the projection
``T``, the asynchronous step semantics (including the interned,
id-encoded context trees behind the sharded explicit engine), and a
textual exchange format.
"""

from repro.cpds.state import GlobalState, VisibleState, project
from repro.cpds.cpds import CPDS
from repro.cpds.interning import StateTable
from repro.cpds.semantics import (
    ContextTree,
    context_post,
    global_successors,
    thread_context_post,
    thread_state,
    thread_view_post,
    with_thread_state,
)
from repro.cpds.format import format_cpds, parse_cpds

__all__ = [
    "CPDS",
    "ContextTree",
    "GlobalState",
    "StateTable",
    "VisibleState",
    "context_post",
    "format_cpds",
    "global_successors",
    "parse_cpds",
    "project",
    "thread_context_post",
    "thread_state",
    "thread_view_post",
    "with_thread_state",
]
