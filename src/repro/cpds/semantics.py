"""Asynchronous step semantics of CPDS (Sec. 2.2) and context closure.

A CPDS step nondeterministically picks a thread and fires one of its
enabled actions on the shared state and that thread's stack.  A *context*
(Sec. 2.3) is a maximal run of steps by one thread; the context-bounded
sets ``Rk`` are built by closing states under single-thread runs.

A context only reads and writes ``(shared, stack_i)`` — the other
threads' stacks are frozen — so the single-thread BFS tree depends on the
moving thread's local view alone.  This module exposes that closure at
two granularities:

* :func:`thread_context_post` — the *per-global-state* form: run thread
  ``i`` from one concrete :class:`GlobalState` and return the reached
  global states.  A ``cache`` dict memoizes the underlying local BFS
  trees per ``(thread, local view)``; this is the seed formulation, kept
  as the differential oracle behind ``ExplicitReach(batched=False)``.
* :func:`thread_view_post` — the *per-view* form used by the sharded
  explicit engine: saturate one context from an interned
  ``(thread, shared_id, stack_id)`` local view and return a reusable,
  **id-encoded** :class:`ContextTree` whose entries are
  ``(shared_id, stack_id, parent_pos, action)`` tuples over a
  :class:`~repro.cpds.interning.StateTable`.  The tree is computed once
  per unique view and *replayed* across every global state sharing that
  view by pure id substitution (swap the moving thread's ``stack_id``,
  keep the frozen threads' ids) — no per-state re-walk, no
  ``GlobalState`` construction on the replay path.

Both builders terminate exactly when the per-context reachable set is
finite — the FCR situation (Sec. 5) — and otherwise trip the
``max_states`` divergence guard with :class:`ContextExplosionError`.
METER records each actual tree saturation as ``explicit.expansions``;
the reachability engines pair it with ``explicit.level_unique_views`` to
prove one saturation per unique view per level."""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.errors import ContextExplosionError
from repro.cpds.cpds import CPDS
from repro.cpds.interning import StateTable
from repro.cpds.state import GlobalState
from repro.pds.action import Action
from repro.pds.semantics import DEFAULT_STATE_LIMIT, step as pds_step, successors as pds_successors
from repro.pds.state import PDSState
from repro.util.meter import METER

#: One node of a memoized local context tree: the reached local state,
#: its BFS predecessor (None for the root), and the action taken.
ContextTreeEntry = tuple[PDSState, PDSState | None, Action | None]


class ContextTree:
    """Id-encoded BFS tree of one thread context from one local view.

    ``entries[0]`` is the root ``(shared_id, stack_id, -1, None)`` — the
    view itself; every later entry is
    ``(shared_id, stack_id, parent_pos, action)`` with ``parent_pos``
    indexing an earlier entry (BFS discovery order, so parents always
    precede children).  All ids refer to the
    :class:`~repro.cpds.interning.StateTable` the tree was built
    against; a tree is exact for *every* global state whose moving
    thread shows this view, because a context never reads the frozen
    threads' stacks.
    """

    __slots__ = ("thread", "entries")

    def __init__(self, thread: int, entries: tuple) -> None:
        self.thread = thread
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ContextTree(thread={self.thread}, nodes={len(self.entries)})"


def thread_state(state: GlobalState, index: int) -> PDSState:
    """Thread ``index``'s view ``(q, w_index)`` of a global state."""
    return PDSState(state.shared, state.stacks[index])


def with_thread_state(state: GlobalState, index: int, new: PDSState) -> GlobalState:
    """Rebuild a global state after thread ``index`` moved to ``new``."""
    stacks = list(state.stacks)
    stacks[index] = new.stack
    return GlobalState(new.shared, tuple(stacks))


def global_successors(
    cpds: CPDS, state: GlobalState
) -> Iterator[tuple[int, Action, GlobalState]]:
    """All one-step successors ``(thread, action, state')`` of ``state``."""
    for index, pds in enumerate(cpds.threads):
        local = thread_state(state, index)
        for action, local_next in pds_successors(pds, local):
            yield index, action, with_thread_state(state, index, local_next)


def _local_context_tree(
    pds, start: PDSState, max_states: int, index: int, origin: GlobalState
) -> tuple[ContextTreeEntry, ...]:
    """BFS tree of all local states thread ``index`` reaches in one
    context from local view ``start``, in discovery order."""
    METER.bump("explicit.expansions")
    entries: list[ContextTreeEntry] = [(start, None, None)]
    seen_local: set[PDSState] = {start}
    work: deque[PDSState] = deque([start])
    while work:
        local = work.popleft()
        for action, local_next in pds_successors(pds, local):
            if local_next in seen_local:
                continue
            seen_local.add(local_next)
            if len(seen_local) > max_states:
                raise ContextExplosionError(
                    f"context of thread {index} from {origin} exceeded "
                    f"{max_states} states; the program likely violates FCR",
                    states_seen=len(seen_local),
                )
            entries.append((local_next, local, action))
            work.append(local_next)
    return tuple(entries)


def thread_context_post(
    cpds: CPDS,
    state: GlobalState,
    index: int,
    max_states: int = DEFAULT_STATE_LIMIT,
    parents: dict | None = None,
    cache: dict | None = None,
) -> set[GlobalState]:
    """All global states reachable by letting thread ``index`` run any
    number of steps (≥ 0) from ``state`` — one scheduling context.

    When ``parents`` is given, newly discovered states are recorded there
    as ``state' -> (predecessor, thread index, action)`` for witness
    reconstruction (existing entries are never overwritten, preserving
    shortest-context discovery order across calls).

    When ``cache`` is given, the single-thread BFS tree is memoized per
    ``(index, local view)`` and replayed for later global states sharing
    that view — exact, because a context never looks at the other
    threads' stacks.  Only successful runs are cached; a divergence
    (below) is recomputed and re-raised.

    Raises :class:`ContextExplosionError` past ``max_states`` distinct
    states — the divergence guard for non-FCR programs.
    """
    pds = cpds.thread(index)
    start = thread_state(state, index)
    entries: tuple[ContextTreeEntry, ...] | None = None
    if cache is not None:
        entries = cache.get((index, start))
        if entries is not None:
            METER.bump("explicit.context_cache_hits")
    if entries is None:
        entries = _local_context_tree(pds, start, max_states, index, state)
        if cache is not None:
            METER.bump("explicit.context_cache_misses")
            cache[(index, start)] = entries
    result: set[GlobalState] = set()
    for local, parent_local, action in entries:
        global_next = with_thread_state(state, index, local)
        result.add(global_next)
        if (
            parents is not None
            and parent_local is not None
            and global_next not in parents
        ):
            parents[global_next] = (
                with_thread_state(state, index, parent_local),
                index,
                action,
            )
    return result


def thread_view_post(
    cpds: CPDS,
    table: StateTable,
    index: int,
    shared_id: int,
    stack_id: int,
    max_states: int = DEFAULT_STATE_LIMIT,
) -> ContextTree:
    """Saturate one context of thread ``index`` from the interned local
    view ``(shared_id, stack_id)`` and return the id-encoded tree.

    This is the view-granular counterpart of :func:`thread_context_post`
    used by the sharded explicit engine: the returned
    :class:`ContextTree` is replayed across all global states sharing
    the view by id substitution (see the module docstring).  Every
    reached local state's shared state and stack word are interned into
    ``table`` as a side effect.

    Raises :class:`ContextExplosionError` past ``max_states`` distinct
    local states — the divergence guard for non-FCR programs.
    """
    pds = cpds.thread(index)
    start = PDSState(table.shared(shared_id), table.stack(index, stack_id))
    METER.bump("explicit.expansions")
    entries: list[tuple] = [(shared_id, stack_id, -1, None)]
    seen_local: dict[PDSState, int] = {start: 0}
    work: deque[tuple[PDSState, int]] = deque([(start, 0)])
    shared_of = table.shared_id
    stack_of = table.stack_id
    while work:
        local, pos = work.popleft()
        for action, local_next in pds_successors(pds, local):
            if local_next in seen_local:
                continue
            next_pos = len(entries)
            seen_local[local_next] = next_pos
            if len(seen_local) > max_states:
                raise ContextExplosionError(
                    f"context of thread {index} from view {start} exceeded "
                    f"{max_states} states; the program likely violates FCR",
                    states_seen=len(seen_local),
                )
            entries.append(
                (
                    shared_of(local_next.shared),
                    stack_of(index, local_next.stack),
                    pos,
                    action,
                )
            )
            work.append((local_next, next_pos))
    return ContextTree(index, tuple(entries))


def context_post(
    cpds: CPDS,
    state: GlobalState,
    max_states: int = DEFAULT_STATE_LIMIT,
    parents: dict | None = None,
) -> set[GlobalState]:
    """Union of :func:`thread_context_post` over all threads."""
    result: set[GlobalState] = set()
    for index in range(cpds.n_threads):
        result |= thread_context_post(cpds, state, index, max_states, parents)
    return result
