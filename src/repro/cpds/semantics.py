"""Asynchronous step semantics of CPDS (Sec. 2.2) and context closure.

A CPDS step nondeterministically picks a thread and fires one of its
enabled actions on the shared state and that thread's stack.  A *context*
(Sec. 2.3) is a maximal run of steps by one thread; the context-bounded
sets ``Rk`` are built by closing states under single-thread runs, which
:func:`thread_context_post` computes explicitly (it terminates exactly
when the per-context reachable set is finite — the FCR situation)."""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.errors import ContextExplosionError
from repro.cpds.cpds import CPDS
from repro.cpds.state import GlobalState
from repro.pds.action import Action
from repro.pds.semantics import DEFAULT_STATE_LIMIT, step as pds_step, successors as pds_successors
from repro.pds.state import PDSState


def thread_state(state: GlobalState, index: int) -> PDSState:
    """Thread ``index``'s view ``(q, w_index)`` of a global state."""
    return PDSState(state.shared, state.stacks[index])


def with_thread_state(state: GlobalState, index: int, new: PDSState) -> GlobalState:
    """Rebuild a global state after thread ``index`` moved to ``new``."""
    stacks = list(state.stacks)
    stacks[index] = new.stack
    return GlobalState(new.shared, tuple(stacks))


def global_successors(
    cpds: CPDS, state: GlobalState
) -> Iterator[tuple[int, Action, GlobalState]]:
    """All one-step successors ``(thread, action, state')`` of ``state``."""
    for index, pds in enumerate(cpds.threads):
        local = thread_state(state, index)
        for action, local_next in pds_successors(pds, local):
            yield index, action, with_thread_state(state, index, local_next)


def thread_context_post(
    cpds: CPDS,
    state: GlobalState,
    index: int,
    max_states: int = DEFAULT_STATE_LIMIT,
    parents: dict | None = None,
) -> set[GlobalState]:
    """All global states reachable by letting thread ``index`` run any
    number of steps (≥ 0) from ``state`` — one scheduling context.

    When ``parents`` is given, newly discovered states are recorded there
    as ``state' -> (predecessor, thread index, action)`` for witness
    reconstruction (existing entries are never overwritten, preserving
    shortest-context discovery order across calls).

    Raises :class:`ContextExplosionError` past ``max_states`` distinct
    states — the divergence guard for non-FCR programs.
    """
    pds = cpds.thread(index)
    start = thread_state(state, index)
    seen_local: set[PDSState] = {start}
    work: deque[PDSState] = deque([start])
    result: set[GlobalState] = {state}
    while work:
        local = work.popleft()
        for action, local_next in pds_successors(pds, local):
            if local_next in seen_local:
                continue
            seen_local.add(local_next)
            if len(seen_local) > max_states:
                raise ContextExplosionError(
                    f"context of thread {index} from {state} exceeded "
                    f"{max_states} states; the program likely violates FCR",
                    states_seen=len(seen_local),
                )
            global_next = with_thread_state(state, index, local_next)
            result.add(global_next)
            if parents is not None and global_next not in parents:
                parents[global_next] = (
                    with_thread_state(state, index, local),
                    index,
                    action,
                )
            work.append(local_next)
    return result


def context_post(
    cpds: CPDS,
    state: GlobalState,
    max_states: int = DEFAULT_STATE_LIMIT,
    parents: dict | None = None,
) -> set[GlobalState]:
    """Union of :func:`thread_context_post` over all threads."""
    result: set[GlobalState] = set()
    for index in range(cpds.n_threads):
        result |= thread_context_post(cpds, state, index, max_states, parents)
    return result
