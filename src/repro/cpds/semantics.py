"""Asynchronous step semantics of CPDS (Sec. 2.2) and context closure.

A CPDS step nondeterministically picks a thread and fires one of its
enabled actions on the shared state and that thread's stack.  A *context*
(Sec. 2.3) is a maximal run of steps by one thread; the context-bounded
sets ``Rk`` are built by closing states under single-thread runs.

A context only reads and writes ``(shared, stack_i)`` — the other
threads' stacks are frozen — so the single-thread BFS tree depends on the
moving thread's local view alone.  This module exposes that closure at
two granularities:

* :func:`thread_context_post` — the *per-global-state* form: run thread
  ``i`` from one concrete :class:`GlobalState` and return the reached
  global states.  A ``cache`` dict memoizes the underlying local BFS
  trees per ``(thread, local view)``; this is the seed formulation, kept
  as the differential oracle behind ``ExplicitReach(batched=False)``.
* :func:`thread_view_post` — the *per-view* form used by the sharded
  explicit engine: saturate one context from an interned
  ``(thread, shared_id, stack_id)`` local view and return a reusable,
  **flat array-encoded** :class:`ContextTree`: contiguous ``array('q')``
  successor tables (CSR-style per-node edge offsets plus target
  shared/stack id columns) over a
  :class:`~repro.cpds.interning.StateTable`.  The tree is computed once
  per unique view and *replayed* across every global state sharing that
  view by pure integer arithmetic (mask out the moving thread's bit
  field, OR in the entry's packed delta) — no per-state re-walk, no
  tuple allocation, no ``GlobalState`` construction on the replay path.

Both builders terminate exactly when the per-context reachable set is
finite — the FCR situation (Sec. 5) — and otherwise trip the
``max_states`` divergence guard with :class:`ContextExplosionError`.
METER records each actual tree saturation as ``explicit.expansions``;
the reachability engines pair it with ``explicit.level_unique_views`` to
prove one saturation per unique view per level."""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Iterator

from repro.errors import ContextExplosionError
from repro.cpds.cpds import CPDS
from repro.obs import trace
from repro.cpds.interning import StateTable
from repro.cpds.state import GlobalState
from repro.pds.action import Action
from repro.pds.semantics import DEFAULT_STATE_LIMIT, successors as pds_successors
from repro.pds.state import PDSState
from repro.util.meter import METER

#: One node of a memoized local context tree: the reached local state,
#: its BFS predecessor (None for the root), and the action taken.
ContextTreeEntry = tuple[PDSState, PDSState | None, Action | None]


class ContextTree:
    """Flat array-encoded BFS tree of one thread context from one view.

    Nodes are numbered in BFS discovery order; node 0 is the root
    ``(root_qid, root_wid)`` — the view itself.  The tree is stored
    CSR-style in contiguous ``array('q')`` columns:

    * ``offsets`` (length ``n_nodes + 1``): node ``p``'s outgoing edges
      occupy positions ``offsets[p]..offsets[p+1]`` of the edge columns.
    * ``qids`` / ``wids`` (length ``n_edges``): the target node's
      interned shared-state and stack ids.  Edge ``e`` discovers node
      ``e + 1`` (BFS numbering), so the columns double as per-node id
      tables.
    * ``actions`` (length ``n_edges``): the :class:`Action` taken, for
      witness reconstruction.

    All ids refer to the :class:`~repro.cpds.interning.StateTable` the
    tree was built against; a tree is exact for *every* global state
    whose moving thread shows this view, because a context never reads
    the frozen threads' stacks.  :meth:`deltas` derives (and memoizes
    per table era) the per-edge packed-key deltas the replay loop ORs
    into a frozen global-state key.
    """

    __slots__ = (
        "thread",
        "root_qid",
        "root_wid",
        "offsets",
        "qids",
        "wids",
        "actions",
        "_deltas",
        "_parent_pos",
        "_rows",
    )

    def __init__(
        self,
        thread: int,
        root_qid: int,
        root_wid: int,
        offsets: array,
        qids: array,
        wids: array,
        actions: tuple,
    ) -> None:
        self.thread = thread
        self.root_qid = root_qid
        self.root_wid = root_wid
        self.offsets = offsets
        self.qids = qids
        self.wids = wids
        self.actions = actions
        self._deltas: tuple[int, list[int]] | None = None
        self._parent_pos: list[int] | None = None
        self._rows: tuple[int, tuple] | None = None

    def __len__(self) -> int:
        """Node count (root included)."""
        return len(self.qids) + 1

    def deltas(self, table: StateTable) -> list[int]:
        """Per-edge packed-key deltas ``(qid << qshift) | (wid << b*i)``
        under ``table``'s current geometry, memoized per era.  A plain
        list, not an ``array``: the replay loop iterates it once per
        shard member and list iteration avoids re-boxing each value."""
        cached = self._deltas
        era = table.era
        if cached is None or cached[0] != era:
            qshift = table._qshift
            shift = table._bits * self.thread
            cached = (
                era,
                [
                    (qid << qshift) | (wid << shift)
                    for qid, wid in zip(self.qids, self.wids)
                ],
            )
            self._deltas = cached
        return cached[1]

    def parent_positions(self) -> list[int]:
        """Per-edge source-node index, flattened from ``offsets``
        (memoized — geometry-independent).  Lets the witness-tracking
        replay run one flat ``zip`` over the edge columns instead of a
        nested node/edge walk."""
        cached = self._parent_pos
        if cached is None:
            offsets = self.offsets
            cached = []
            extend = cached.extend
            for node in range(len(offsets) - 1):
                extend([node] * (offsets[node + 1] - offsets[node]))
            self._parent_pos = cached
        return cached

    def edge_rows(self, table: StateTable) -> tuple:
        """``(packed delta, parent position, action)`` rows, one per
        edge — the witness-tracking replay loop's iteration unit,
        memoized per table era like the deltas they embed."""
        cached = self._rows
        era = table.era
        if cached is None or cached[0] != era:
            cached = (
                era,
                tuple(
                    zip(self.deltas(table), self.parent_positions(), self.actions)
                ),
            )
            self._rows = cached
        return cached[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ContextTree(thread={self.thread}, nodes={len(self)})"


def thread_state(state: GlobalState, index: int) -> PDSState:
    """Thread ``index``'s view ``(q, w_index)`` of a global state."""
    return PDSState(state.shared, state.stacks[index])


def with_thread_state(state: GlobalState, index: int, new: PDSState) -> GlobalState:
    """Rebuild a global state after thread ``index`` moved to ``new``."""
    stacks = list(state.stacks)
    stacks[index] = new.stack
    return GlobalState(new.shared, tuple(stacks))


def global_successors(
    cpds: CPDS, state: GlobalState
) -> Iterator[tuple[int, Action, GlobalState]]:
    """All one-step successors ``(thread, action, state')`` of ``state``."""
    for index, pds in enumerate(cpds.threads):
        local = thread_state(state, index)
        for action, local_next in pds_successors(pds, local):
            yield index, action, with_thread_state(state, index, local_next)


def _local_context_tree(
    pds, start: PDSState, max_states: int, index: int, origin: GlobalState
) -> tuple[ContextTreeEntry, ...]:
    """BFS tree of all local states thread ``index`` reaches in one
    context from local view ``start``, in discovery order."""
    METER.bump("explicit.expansions")
    entries: list[ContextTreeEntry] = [(start, None, None)]
    seen_local: set[PDSState] = {start}
    work: deque[PDSState] = deque([start])
    while work:
        local = work.popleft()
        for action, local_next in pds_successors(pds, local):
            if local_next in seen_local:
                continue
            seen_local.add(local_next)
            if len(seen_local) > max_states:
                raise ContextExplosionError(
                    f"context of thread {index} from {origin} exceeded "
                    f"{max_states} states; the program likely violates FCR",
                    states_seen=len(seen_local),
                )
            entries.append((local_next, local, action))
            work.append(local_next)
    return tuple(entries)


def thread_context_post(
    cpds: CPDS,
    state: GlobalState,
    index: int,
    max_states: int = DEFAULT_STATE_LIMIT,
    parents: dict | None = None,
    cache: dict | None = None,
) -> set[GlobalState]:
    """All global states reachable by letting thread ``index`` run any
    number of steps (≥ 0) from ``state`` — one scheduling context.

    When ``parents`` is given, newly discovered states are recorded there
    as ``state' -> (predecessor, thread index, action)`` for witness
    reconstruction (existing entries are never overwritten, preserving
    shortest-context discovery order across calls).

    When ``cache`` is given, the single-thread BFS tree is memoized per
    ``(index, local view)`` and replayed for later global states sharing
    that view — exact, because a context never looks at the other
    threads' stacks.  Only successful runs are cached; a divergence
    (below) is recomputed and re-raised.

    Raises :class:`ContextExplosionError` past ``max_states`` distinct
    states — the divergence guard for non-FCR programs.
    """
    pds = cpds.thread(index)
    start = thread_state(state, index)
    entries: tuple[ContextTreeEntry, ...] | None = None
    if cache is not None:
        entries = cache.get((index, start))
        if entries is not None:
            METER.bump("explicit.context_cache_hits")
    if entries is None:
        entries = _local_context_tree(pds, start, max_states, index, state)
        if cache is not None:
            METER.bump("explicit.context_cache_misses")
            cache[(index, start)] = entries
    result: set[GlobalState] = set()
    for local, parent_local, action in entries:
        global_next = with_thread_state(state, index, local)
        result.add(global_next)
        if (
            parents is not None
            and parent_local is not None
            and global_next not in parents
        ):
            parents[global_next] = (
                with_thread_state(state, index, parent_local),
                index,
                action,
            )
    return result


def thread_view_post(
    cpds: CPDS,
    table: StateTable,
    index: int,
    shared_id: int,
    stack_id: int,
    max_states: int = DEFAULT_STATE_LIMIT,
    succ_memo: dict | None = None,
    build_rows: bool = True,
    sem_memo: dict | None = None,
) -> ContextTree:
    """Saturate one context of thread ``index`` from the interned local
    view ``(shared_id, stack_id)`` and return the flat array-encoded
    tree.

    ``build_rows=False`` skips seeding the witness-replay row memo (one
    tuple per edge) — callers that never take the witness-tracking
    replay path (pool workers shipping raw columns, ``track_traces=False``
    engines) save the allocation; ``edge_rows`` rebuilds lazily if
    needed.

    This is the view-granular counterpart of :func:`thread_context_post`
    used by the sharded explicit engine: the returned
    :class:`ContextTree` is replayed across all global states sharing
    the view by packed-key substitution (see the module docstring).
    Every reached local state's shared state and stack word are interned
    into ``table`` as a side effect.

    ``succ_memo`` (one dict *per thread*, owned by the caller) memoizes
    ``local state -> ((action, successor, qid, wid), ...)`` across
    trees: the BFS territories of different views overlap heavily, and
    enabledness, the stack rewrite, and the component intern ids are all
    pure functions of the local state *and table*, so each distinct
    local state pays the action dispatch, successor construction, and
    intern lookups once per engine instead of once per tree.  Because
    the values embed intern ids, the memo is scoped to ``table`` — a
    caller that rotates tables (the pool worker, which builds a private
    table per slice) must pass a fresh ``succ_memo`` per table and may
    keep the table-free half in ``sem_memo``
    (``local state -> ((action, successor), ...)``), which only caches
    :func:`pds_successors` and therefore persists forever.  (Interning
    at memo-fill time assigns the same ids in the same order as
    interning per first visit: a successor already in this tree's
    ``seen_local`` was interned when it was first reached, so the extra
    calls are id-stable no-ops.)

    Raises :class:`ContextExplosionError` past ``max_states`` distinct
    local states — the divergence guard for non-FCR programs.
    """
    if trace.enabled():
        # The flag is re-checked (not hoisted into a decorator) so the
        # disabled path costs one module-attribute read and no frame.
        with trace.span("explicit.saturation", thread=index) as timing:
            tree = _thread_view_post(
                cpds, table, index, shared_id, stack_id, max_states,
                succ_memo, build_rows, sem_memo,
            )
            timing.set(states=len(tree.offsets) - 1)
            return tree
    return _thread_view_post(
        cpds, table, index, shared_id, stack_id, max_states,
        succ_memo, build_rows, sem_memo,
    )


def _thread_view_post(
    cpds: CPDS,
    table: StateTable,
    index: int,
    shared_id: int,
    stack_id: int,
    max_states: int = DEFAULT_STATE_LIMIT,
    succ_memo: dict | None = None,
    build_rows: bool = True,
    sem_memo: dict | None = None,
) -> ContextTree:
    pds = cpds.thread(index)
    start = PDSState(table.shared(shared_id), table.stack(index, stack_id))
    METER.bump("explicit.expansions")
    # Built as plain lists (cheap appends), converted to contiguous
    # ``array('q')`` columns in one shot at the end.  Iterating ``nodes``
    # while appending to it is the BFS-over-a-growing-list idiom: the
    # for loop's internal cursor picks up appended items.
    era = table.era
    qshift = table._qshift
    shift = table._bits * index
    offsets: list[int] = [0]
    qids: list[int] = []
    wids: list[int] = []
    actions: list[Action] = []
    rows: list[tuple] = []
    nodes: list[PDSState] = [start]
    seen_local: set[PDSState] = {start}
    seen_add = seen_local.add
    shared_of = table.shared_id
    stack_of = table.stack_id
    qids_append = qids.append
    wids_append = wids.append
    actions_append = actions.append
    rows_append = rows.append
    nodes_append = nodes.append
    offsets_append = offsets.append
    pos = 0
    if succ_memo is None:
        succ_memo = {}
    memo_get = succ_memo.get
    for local in nodes:
        succs = memo_get(local)
        if succs is None:
            if sem_memo is None:
                pairs = pds_successors(pds, local)
            else:
                pairs = sem_memo.get(local)
                if pairs is None:
                    sem_memo[local] = pairs = tuple(pds_successors(pds, local))
            succ_memo[local] = succs = tuple(
                (action, nxt, shared_of(nxt.shared), stack_of(index, nxt.stack))
                for action, nxt in pairs
            )
        for action, local_next, qid, wid in succs:
            if local_next in seen_local:
                continue
            seen_add(local_next)
            if len(seen_local) > max_states:
                raise ContextExplosionError(
                    f"context of thread {index} from view {start} exceeded "
                    f"{max_states} states; the program likely violates FCR",
                    states_seen=len(seen_local),
                )
            qids_append(qid)
            wids_append(wid)
            actions_append(action)
            if build_rows:
                rows_append(((qid << qshift) | (wid << shift), pos, action))
            nodes_append(local_next)
        pos += 1
        offsets_append(len(qids))
    tree = ContextTree(
        index,
        shared_id,
        stack_id,
        array("q", offsets),
        array("q", qids),
        array("q", wids),
        tuple(actions),
    )
    # The replay rows fall out of the BFS for free; seed the memo unless
    # interning this very tree's components repacked the table (the
    # geometry captured above went stale — rare; the lazy rebuild in
    # ``edge_rows`` covers it).
    if build_rows and table.era == era:
        tree._rows = (era, tuple(rows))
    return tree


def context_post(
    cpds: CPDS,
    state: GlobalState,
    max_states: int = DEFAULT_STATE_LIMIT,
    parents: dict | None = None,
) -> set[GlobalState]:
    """Union of :func:`thread_context_post` over all threads."""
    result: set[GlobalState] = set()
    for index in range(cpds.n_threads):
        result |= thread_context_post(cpds, state, index, max_states, parents)
    return result


def thread_write_free_post(
    pds,
    shared,
    stack: tuple,
    max_states: int = DEFAULT_STATE_LIMIT,
    index: int = 0,
) -> frozenset[tuple]:
    """All stacks thread ``index`` can reach from ``(shared, stack)`` by
    *shared-preserving* ("write-free") moves alone — the local closure
    of the WUBA lane (:mod:`repro.reach.wuba`).

    Shared-preserving moves of different threads commute: the shared
    state is fixed and each thread touches only its own stack.  The
    write-free closure of a global state is therefore exactly the
    per-thread product of these local closures, which is what makes the
    write-bounded sets ``Wk`` computable without interleaving the
    write-free segments.

    Raises :class:`ContextExplosionError` past ``max_states`` distinct
    stacks — the divergence guard for programs violating WCR (finite
    write-free closures; implied by FCR, since a write-free segment is
    part of some context)."""
    METER.bump("wuba.expansions")
    start = PDSState(shared, stack)
    seen: set[PDSState] = {start}
    work: deque[PDSState] = deque([start])
    while work:
        local = work.popleft()
        for action, local_next in pds_successors(pds, local):
            if action.to_shared != shared or local_next in seen:
                continue
            seen.add(local_next)
            if len(seen) > max_states:
                raise ContextExplosionError(
                    f"write-free closure of thread {index} from "
                    f"{start} exceeded {max_states} states; the program "
                    "likely violates WCR",
                    states_seen=len(seen),
                )
            work.append(local_next)
    return frozenset(local.stack for local in seen)
