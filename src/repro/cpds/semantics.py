"""Asynchronous step semantics of CPDS (Sec. 2.2) and context closure.

A CPDS step nondeterministically picks a thread and fires one of its
enabled actions on the shared state and that thread's stack.  A *context*
(Sec. 2.3) is a maximal run of steps by one thread; the context-bounded
sets ``Rk`` are built by closing states under single-thread runs, which
:func:`thread_context_post` computes explicitly (it terminates exactly
when the per-context reachable set is finite — the FCR situation).

A context only reads and writes ``(shared, stack_i)`` — the other
threads' stacks are frozen — so the single-thread BFS tree depends on the
local view alone.  Passing a ``cache`` dict to
:func:`thread_context_post` memoizes these trees per
``(thread, local state)``; the explicit engine does this to reuse work
across context expansions, where the same local view recurs under many
different global states."""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.errors import ContextExplosionError
from repro.cpds.cpds import CPDS
from repro.cpds.state import GlobalState
from repro.pds.action import Action
from repro.pds.semantics import DEFAULT_STATE_LIMIT, step as pds_step, successors as pds_successors
from repro.pds.state import PDSState
from repro.util.meter import METER

#: One node of a memoized local context tree: the reached local state,
#: its BFS predecessor (None for the root), and the action taken.
ContextTreeEntry = tuple[PDSState, PDSState | None, Action | None]


def thread_state(state: GlobalState, index: int) -> PDSState:
    """Thread ``index``'s view ``(q, w_index)`` of a global state."""
    return PDSState(state.shared, state.stacks[index])


def with_thread_state(state: GlobalState, index: int, new: PDSState) -> GlobalState:
    """Rebuild a global state after thread ``index`` moved to ``new``."""
    stacks = list(state.stacks)
    stacks[index] = new.stack
    return GlobalState(new.shared, tuple(stacks))


def global_successors(
    cpds: CPDS, state: GlobalState
) -> Iterator[tuple[int, Action, GlobalState]]:
    """All one-step successors ``(thread, action, state')`` of ``state``."""
    for index, pds in enumerate(cpds.threads):
        local = thread_state(state, index)
        for action, local_next in pds_successors(pds, local):
            yield index, action, with_thread_state(state, index, local_next)


def _local_context_tree(
    pds, start: PDSState, max_states: int, index: int, origin: GlobalState
) -> tuple[ContextTreeEntry, ...]:
    """BFS tree of all local states thread ``index`` reaches in one
    context from local view ``start``, in discovery order."""
    entries: list[ContextTreeEntry] = [(start, None, None)]
    seen_local: set[PDSState] = {start}
    work: deque[PDSState] = deque([start])
    while work:
        local = work.popleft()
        for action, local_next in pds_successors(pds, local):
            if local_next in seen_local:
                continue
            seen_local.add(local_next)
            if len(seen_local) > max_states:
                raise ContextExplosionError(
                    f"context of thread {index} from {origin} exceeded "
                    f"{max_states} states; the program likely violates FCR",
                    states_seen=len(seen_local),
                )
            entries.append((local_next, local, action))
            work.append(local_next)
    return tuple(entries)


def thread_context_post(
    cpds: CPDS,
    state: GlobalState,
    index: int,
    max_states: int = DEFAULT_STATE_LIMIT,
    parents: dict | None = None,
    cache: dict | None = None,
) -> set[GlobalState]:
    """All global states reachable by letting thread ``index`` run any
    number of steps (≥ 0) from ``state`` — one scheduling context.

    When ``parents`` is given, newly discovered states are recorded there
    as ``state' -> (predecessor, thread index, action)`` for witness
    reconstruction (existing entries are never overwritten, preserving
    shortest-context discovery order across calls).

    When ``cache`` is given, the single-thread BFS tree is memoized per
    ``(index, local view)`` and replayed for later global states sharing
    that view — exact, because a context never looks at the other
    threads' stacks.  Only successful runs are cached; a divergence
    (below) is recomputed and re-raised.

    Raises :class:`ContextExplosionError` past ``max_states`` distinct
    states — the divergence guard for non-FCR programs.
    """
    pds = cpds.thread(index)
    start = thread_state(state, index)
    entries: tuple[ContextTreeEntry, ...] | None = None
    if cache is not None:
        entries = cache.get((index, start))
        if entries is not None:
            METER.bump("explicit.context_cache_hits")
    if entries is None:
        entries = _local_context_tree(pds, start, max_states, index, state)
        if cache is not None:
            METER.bump("explicit.context_cache_misses")
            cache[(index, start)] = entries
    result: set[GlobalState] = set()
    for local, parent_local, action in entries:
        global_next = with_thread_state(state, index, local)
        result.add(global_next)
        if (
            parents is not None
            and parent_local is not None
            and global_next not in parents
        ):
            parents[global_next] = (
                with_thread_state(state, index, parent_local),
                index,
                action,
            )
    return result


def context_post(
    cpds: CPDS,
    state: GlobalState,
    max_states: int = DEFAULT_STATE_LIMIT,
    parents: dict | None = None,
) -> set[GlobalState]:
    """Union of :func:`thread_context_post` over all threads."""
    result: set[GlobalState] = set()
    for index in range(cpds.n_threads):
        result |= thread_context_post(cpds, state, index, max_states, parents)
    return result
