"""The concurrent pushdown system ``Pn = (P1, ..., Pn)``."""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.automata.intern import SymbolTable
from repro.errors import ModelError
from repro.cpds.state import GlobalState
from repro.pds.pds import PDS

Shared = Hashable
Symbol = Hashable


class CPDS:
    """A fixed-thread concurrent pushdown system (paper Sec. 2.2).

    All member PDSs share the set ``Q`` of shared states (taken as the
    union of the members' sets) and the initial shared state; each thread
    has its own stack alphabet and pushdown program.

    The paper starts all stacks empty but routinely "omits the main
    thread" by seeding each stack with one symbol (Fig. 1, Fig. 2);
    ``initial_stacks`` supports both conventions.
    """

    def __init__(
        self,
        threads: Sequence[PDS],
        initial_stacks: Sequence[Sequence[Symbol]] | None = None,
        name: str = "",
    ) -> None:
        if not threads:
            raise ModelError("a CPDS needs at least one thread")
        self.name = name
        self.threads: tuple[PDS, ...] = tuple(threads)
        initials = {pds.initial_shared for pds in self.threads}
        if len(initials) != 1:
            raise ModelError(f"threads disagree on the initial shared state: {initials}")
        self.initial_shared: Shared = next(iter(initials))
        if initial_stacks is None:
            initial_stacks = [()] * len(self.threads)
        if len(initial_stacks) != len(self.threads):
            raise ModelError(
                f"{len(initial_stacks)} initial stacks for {len(self.threads)} threads"
            )
        self.initial_stacks: tuple[tuple[Symbol, ...], ...] = tuple(
            tuple(stack) for stack in initial_stacks
        )
        for pds, stack in zip(self.threads, self.initial_stacks):
            for symbol in stack:
                if symbol not in pds.alphabet:
                    raise ModelError(
                        f"initial stack symbol {symbol!r} not in thread alphabet"
                    )

        self._shared_cache: tuple[tuple[int, ...], frozenset] | None = None

    # ------------------------------------------------------------------
    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def shared_states(self) -> frozenset[Shared]:
        versions = tuple(pds.version for pds in self.threads)
        cached = self._shared_cache
        if cached is None or cached[0] != versions:
            states: set[Shared] = set()
            for pds in self.threads:
                states |= pds.shared_states
            cached = (versions, frozenset(states))
            self._shared_cache = cached
        return cached[1]

    def thread(self, index: int) -> PDS:
        return self.threads[index]

    def alphabet(self, index: int) -> frozenset[Symbol]:
        return self.threads[index].alphabet

    def symbol_table(self, index: int) -> SymbolTable:
        """Thread ``index``'s interned stack alphabet (see
        :meth:`repro.pds.pds.PDS.symbol_table`)."""
        return self.threads[index].symbol_table()

    def initial_state(self) -> GlobalState:
        return GlobalState(self.initial_shared, self.initial_stacks)

    def validate(self) -> None:
        for pds in self.threads:
            pds.validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = f" {self.name!r}" if self.name else ""
        return f"CPDS{name}(n={self.n_threads}, |Q|={len(self.shared_states)})"
