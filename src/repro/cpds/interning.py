"""Interned global-state core: dense integer ids for ``GlobalState``s.

The explicit engine's product space is dominated by hash-heavy tuple
work: every replayed context step used to construct a fresh
:class:`~repro.cpds.state.GlobalState` (nested ``(shared, stacks)``
tuples) just to test membership in ``first_seen``.  A :class:`StateTable`
interns each *component* once — shared states to ``shared_id``s, each
thread's stack words to per-thread ``stack_id``s — and then interns whole
global states as ``(shared_id, stack_ids)`` integer keys mapped to dense
``state_id``s.  Downstream structures (``first_seen``, levels, parents,
visible projections) become int-keyed lists and dicts, and the sharded
frontier expansion of :class:`~repro.reach.explicit.ExplicitReach`
replays one id-encoded context tree
(:class:`~repro.cpds.semantics.ContextTree`) across all global states
sharing the moving thread's local view by pure id substitution — no
``GlobalState`` is ever materialized on the hot path.

Ids are assigned densely in first-intern order, so ``state_id ==
len(table) - 1`` exactly when the interned state is new — the table
doubles as the engine's seen-set.  Decoding (``state``, ``visible``) is
lazy and memoized; states interned from an existing ``GlobalState``
object keep that object for free decode.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.cpds.state import GlobalState, VisibleState
from repro.pds.state import EMPTY

Shared = Hashable
Symbol = Hashable


class StateTable:
    """Interns the global states of one CPDS run to dense integer ids.

    One table belongs to one engine over one CPDS (thread count and
    alphabets fixed); ids are meaningless across tables.  All three id
    spaces — shared states, per-thread stacks, global states — are
    dense and append-only.
    """

    __slots__ = (
        "n_threads",
        "_shared_ids",
        "_shareds",
        "_stack_ids",
        "_stacks",
        "_tops",
        "_ids",
        "_keys",
        "_states",
        "_visibles",
    )

    def __init__(self, n_threads: int) -> None:
        self.n_threads = n_threads
        #: shared -> shared_id and its inverse.
        self._shared_ids: dict[Shared, int] = {}
        self._shareds: list[Shared] = []
        #: per-thread stack word -> stack_id and its inverse.
        self._stack_ids: list[dict[tuple, int]] = [{} for _ in range(n_threads)]
        self._stacks: list[list[tuple]] = [[] for _ in range(n_threads)]
        #: per-thread stack_id -> visible top symbol (:data:`EMPTY` for ε).
        self._tops: list[list[Symbol]] = [[] for _ in range(n_threads)]
        #: (shared_id, stack_ids) -> state_id and the dense inverses.
        self._ids: dict[tuple[int, tuple[int, ...]], int] = {}
        self._keys: list[tuple[int, tuple[int, ...]]] = []
        self._states: list[GlobalState | None] = []
        self._visibles: list[VisibleState | None] = []

    # ------------------------------------------------------------------
    # Component interning
    # ------------------------------------------------------------------
    def shared_id(self, shared: Shared) -> int:
        qid = self._shared_ids.get(shared)
        if qid is None:
            qid = len(self._shareds)
            self._shared_ids[shared] = qid
            self._shareds.append(shared)
        return qid

    def shared(self, qid: int) -> Shared:
        return self._shareds[qid]

    def stack_id(self, index: int, stack: tuple) -> int:
        table = self._stack_ids[index]
        wid = table.get(stack)
        if wid is None:
            wid = len(self._stacks[index])
            table[stack] = wid
            self._stacks[index].append(stack)
            self._tops[index].append(stack[0] if stack else EMPTY)
        return wid

    def stack(self, index: int, wid: int) -> tuple:
        return self._stacks[index][wid]

    def top(self, index: int, wid: int) -> Symbol:
        """Visible top symbol of an interned stack (``T(w)``, Eq. 1)."""
        return self._tops[index][wid]

    # ------------------------------------------------------------------
    # Global-state interning
    # ------------------------------------------------------------------
    def intern(self, state: GlobalState) -> int:
        """Dense id of ``state``, assigning one on first sight."""
        qid = self.shared_id(state.shared)
        wids = tuple(
            self.stack_id(index, stack) for index, stack in enumerate(state.stacks)
        )
        sid = self.intern_key(qid, wids)
        if self._states[sid] is None:
            self._states[sid] = state
        return sid

    def intern_key(self, qid: int, wids: tuple[int, ...]) -> int:
        """Dense id for an already-component-interned ``(qid, wids)``.

        NOTE: the sharded replay loop in
        :meth:`repro.reach.explicit.ExplicitReach._advance_batched`
        inlines this append protocol (``_ids``/``_keys``/``_states``/
        ``_visibles`` grow in lock-step, id == old ``len(_keys)``) —
        keep the two in sync when changing the table layout.
        """
        key = (qid, wids)
        sid = self._ids.get(key)
        if sid is None:
            sid = len(self._keys)
            self._ids[key] = sid
            self._keys.append(key)
            self._states.append(None)
            self._visibles.append(None)
        return sid

    def truncate(self, base: int) -> None:
        """Discard every global-state id at ``base`` or later — the
        inverse of the append protocol, used by the explicit engine to
        roll back a half-committed frontier level after a divergence
        guard trips.  Component ids (shared states, stacks) are kept:
        they stay valid and are referenced by cached context trees.
        """
        keys = self._keys
        ids = self._ids
        for key in keys[base:]:
            del ids[key]
        del keys[base:]
        del self._states[base:]
        del self._visibles[base:]

    def id_of(self, state: GlobalState) -> int | None:
        """The id of ``state`` if it was ever interned, else None."""
        shared_id = self._shared_ids.get(state.shared)
        if shared_id is None:
            return None
        wids = []
        for index, stack in enumerate(state.stacks):
            wid = self._stack_ids[index].get(
                stack if isinstance(stack, tuple) else tuple(stack)
            )
            if wid is None:
                return None
            wids.append(wid)
        return self._ids.get((shared_id, tuple(wids)))

    def key(self, sid: int) -> tuple[int, tuple[int, ...]]:
        """The ``(shared_id, stack_ids)`` key of a state id."""
        return self._keys[sid]

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def state(self, sid: int) -> GlobalState:
        """Decode a state id back to its :class:`GlobalState` (memoized)."""
        state = self._states[sid]
        if state is None:
            qid, wids = self._keys[sid]
            stacks = self._stacks
            state = GlobalState(
                self._shareds[qid],
                tuple(stacks[index][wid] for index, wid in enumerate(wids)),
            )
            self._states[sid] = state
        return state

    def visible(self, sid: int) -> VisibleState:
        """The projection ``T(s)`` of a state id (memoized per id)."""
        vis = self._visibles[sid]
        if vis is None:
            qid, wids = self._keys[sid]
            tops = self._tops
            vis = VisibleState(
                self._shareds[qid],
                tuple(tops[index][wid] for index, wid in enumerate(wids)),
            )
            self._visibles[sid] = vis
        return vis

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StateTable(states={len(self._keys)}, "
            f"shared={len(self._shareds)}, "
            f"stacks={[len(s) for s in self._stacks]})"
        )
