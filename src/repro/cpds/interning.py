"""Interned global-state core: dense integer ids for ``GlobalState``s,
packed into flat single-integer keys.

The explicit engine's product space is dominated by hash-heavy tuple
work: every replayed context step used to construct a fresh
:class:`~repro.cpds.state.GlobalState` (nested ``(shared, stacks)``
tuples) just to test membership in ``first_seen``.  A :class:`StateTable`
interns each *component* once — shared states to ``shared_id``s, each
thread's stack words to per-thread ``stack_id``s — and then interns whole
global states as **packed integers**: the component ids are laid out in
fixed-width bit fields (``wid_0 | wid_1 << b | ... | qid << n*b`` for
field width ``b``), so a global state is one machine-word-sized int and
the seen-set is a plain ``dict[int, int]`` whose key hash is the cheapest
hash Python has.  Downstream structures (``first_seen``, levels, parents,
visible projections) are int-keyed lists and dicts, and the sharded
frontier expansion of :class:`~repro.reach.explicit.ExplicitReach`
replays one flat array-encoded context tree
(:class:`~repro.cpds.semantics.ContextTree`) across all global states
sharing the moving thread's local view by pure integer arithmetic —
mask out the moving thread's field, OR in the tree's precomputed
per-entry delta — with no tuple allocation and no nested re-hashing on
the hot path.

All three id spaces — shared states, per-thread stacks, global states —
are dense and append-only.  The bit-field width adapts: when any
component pool outgrows the current field (``2**bits`` entries), every
stored packed key is rewritten under a doubled width and the table's
``era`` counter is bumped, which invalidates the per-tree delta caches
derived from the old geometry.  Growth is geometric, so repacking
amortizes to O(1) per interned state.

Ids are assigned densely in first-intern order, so ``state_id ==
len(table) - 1`` exactly when the interned state is new — the table
doubles as the engine's seen-set.  Decoding (``state``, ``visible``) is
lazy and memoized; states interned from an existing ``GlobalState``
object keep that object for free decode.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.cpds.state import GlobalState, VisibleState
from repro.pds.state import EMPTY

Shared = Hashable
Symbol = Hashable

#: Initial bit-field width per component.  16 bits cover 65k shared
#: states / stack words per pool before the first repack, while keeping
#: a 3-thread packed key within 64 bits (fast small-int hashing).
_INITIAL_BITS = 16


class StateTable:
    """Interns the global states of one CPDS run to dense integer ids.

    One table belongs to one engine over one CPDS (thread count and
    alphabets fixed); ids are meaningless across tables.
    """

    __slots__ = (
        "n_threads",
        "_shared_ids",
        "_shareds",
        "_stack_ids",
        "_stacks",
        "_tops",
        "_top_ids",
        "_wid_tops",
        "_visible_pool",
        "_ids",
        "_packed",
        "_states",
        "_visibles",
        "_bits",
        "_mask",
        "_qshift",
        "_limit",
        "_era",
    )

    def __init__(self, n_threads: int) -> None:
        self.n_threads = n_threads
        #: shared -> shared_id and its inverse.
        self._shared_ids: dict[Shared, int] = {}
        self._shareds: list[Shared] = []
        #: per-thread stack word -> stack_id and its inverse.
        self._stack_ids: list[dict[tuple, int]] = [{} for _ in range(n_threads)]
        self._stacks: list[list[tuple]] = [[] for _ in range(n_threads)]
        #: per-thread stack_id -> visible top symbol (:data:`EMPTY` for ε).
        self._tops: list[list[Symbol]] = [[] for _ in range(n_threads)]
        #: per-thread top symbol -> dense top id, and stack_id -> top id:
        #: many stacks share a top, so visible projections collapse onto
        #: few ``(qid, top ids...)`` combinations — pooled below.
        self._top_ids: list[dict[Symbol, int]] = [{} for _ in range(n_threads)]
        self._wid_tops: list[list[int]] = [[] for _ in range(n_threads)]
        #: packed visible key -> the one VisibleState object for it
        #: (fixed 32-bit fields — era-independent, survives repacks).
        self._visible_pool: dict[int, VisibleState] = {}
        #: packed key -> state_id, and the dense inverses.
        self._ids: dict[int, int] = {}
        self._packed: list[int] = []
        self._states: list[GlobalState | None] = []
        self._visibles: list[VisibleState | None] = []
        #: Bit-field geometry (see the module docstring).  ``_era`` is
        #: bumped on every repack so derived caches (per-tree packed
        #: deltas) can validate cheaply.
        self._bits = _INITIAL_BITS
        self._mask = (1 << _INITIAL_BITS) - 1
        self._qshift = _INITIAL_BITS * n_threads
        self._limit = 1 << _INITIAL_BITS
        self._era = 0

    # ------------------------------------------------------------------
    # Packing geometry
    # ------------------------------------------------------------------
    @property
    def era(self) -> int:
        """Repack generation; packed keys and derived delta caches from
        different eras are incomparable."""
        return self._era

    def pack(self, qid: int, wids: tuple[int, ...]) -> int:
        """The packed single-int key of component ids ``(qid, wids)``."""
        bits = self._bits
        key = qid << self._qshift
        for index, wid in enumerate(wids):
            key |= wid << (bits * index)
        return key

    def unpack(self, key: int) -> tuple[int, tuple[int, ...]]:
        """Inverse of :meth:`pack`."""
        bits = self._bits
        mask = self._mask
        return (
            key >> self._qshift,
            tuple((key >> (bits * index)) & mask for index in range(self.n_threads)),
        )

    def _grow(self) -> None:
        """Double the bit-field width until every component pool fits,
        rewriting all stored packed keys in place (dict and list
        identities are preserved — hot loops may hold direct references)."""
        old_bits = self._bits
        old_mask = self._mask
        old_qshift = self._qshift
        n = self.n_threads
        largest = max(len(self._shareds), *(len(pool) for pool in self._stacks))
        bits = old_bits
        while (1 << bits) < largest:
            bits *= 2
        if bits == old_bits:  # pragma: no cover - defensive
            return
        self._bits = bits
        self._mask = (1 << bits) - 1
        self._qshift = bits * n
        self._limit = 1 << bits
        self._era += 1
        packed = self._packed
        ids = self._ids
        ids.clear()
        for sid, key in enumerate(packed):
            new_key = (key >> old_qshift) << self._qshift
            for index in range(n):
                new_key |= ((key >> (old_bits * index)) & old_mask) << (bits * index)
            packed[sid] = new_key
            ids[new_key] = sid

    # ------------------------------------------------------------------
    # Component interning
    # ------------------------------------------------------------------
    def shared_id(self, shared: Shared) -> int:
        qid = self._shared_ids.get(shared)
        if qid is None:
            qid = len(self._shareds)
            self._shared_ids[shared] = qid
            self._shareds.append(shared)
            if qid >= self._limit:
                self._grow()
        return qid

    def shared(self, qid: int) -> Shared:
        return self._shareds[qid]

    def stack_id(self, index: int, stack: tuple) -> int:
        table = self._stack_ids[index]
        wid = table.get(stack)
        if wid is None:
            wid = len(self._stacks[index])
            table[stack] = wid
            self._stacks[index].append(stack)
            top = stack[0] if stack else EMPTY
            self._tops[index].append(top)
            top_ids = self._top_ids[index]
            tid = top_ids.get(top)
            if tid is None:
                top_ids[top] = tid = len(top_ids)
            self._wid_tops[index].append(tid)
            if wid >= self._limit:
                self._grow()
        return wid

    def stack(self, index: int, wid: int) -> tuple:
        return self._stacks[index][wid]

    def top(self, index: int, wid: int) -> Symbol:
        """Visible top symbol of an interned stack (``T(w)``, Eq. 1)."""
        return self._tops[index][wid]

    # ------------------------------------------------------------------
    # Global-state interning
    # ------------------------------------------------------------------
    def intern(self, state: GlobalState) -> int:
        """Dense id of ``state``, assigning one on first sight."""
        qid = self.shared_id(state.shared)
        wids = tuple(
            self.stack_id(index, stack) for index, stack in enumerate(state.stacks)
        )
        sid = self.intern_key(qid, wids)
        if self._states[sid] is None:
            self._states[sid] = state
        return sid

    def intern_key(self, qid: int, wids: tuple[int, ...]) -> int:
        """Dense id for an already-component-interned ``(qid, wids)``.

        NOTE: the sharded replay loop in
        :meth:`repro.reach.explicit.ExplicitReach._advance_batched`
        inlines this append protocol on packed keys (``_ids``/
        ``_packed``/``_states``/``_visibles`` grow in lock-step, id ==
        old ``len(_packed)``) — keep the two in sync when changing the
        table layout.
        """
        key = self.pack(qid, wids)
        sid = self._ids.get(key)
        if sid is None:
            sid = len(self._packed)
            self._ids[key] = sid
            self._packed.append(key)
            self._states.append(None)
            self._visibles.append(None)
        return sid

    def intern_packed(self, key: int) -> int:
        """Dense id for a current-era packed key, assigning one on
        first sight — :meth:`intern_key` minus the packing step.

        This is the shard-merge primitive: replay workers emit candidate
        packed keys computed against *this* table's geometry (all
        component interning happened before replay began, so no repack
        can invalidate them), and the parent merge pass dedupes them
        here.  The caller detects freshness by comparing the returned id
        with its own lock-step column length (``first_seen``), exactly
        like the inlined serial replay loop.
        """
        sid = self._ids.get(key)
        if sid is None:
            sid = len(self._packed)
            self._ids[key] = sid
            self._packed.append(key)
            self._states.append(None)
            self._visibles.append(None)
        return sid

    def truncate(self, base: int) -> None:
        """Discard every global-state id at ``base`` or later — the
        inverse of the append protocol, used by the explicit engine to
        roll back a half-committed frontier level after a divergence
        guard trips.  Component ids (shared states, stacks) are kept:
        they stay valid and are referenced by cached context trees.
        """
        packed = self._packed
        ids = self._ids
        for key in packed[base:]:
            del ids[key]
        del packed[base:]
        del self._states[base:]
        del self._visibles[base:]

    def id_of(self, state: GlobalState) -> int | None:
        """The id of ``state`` if it was ever interned, else None."""
        shared_id = self._shared_ids.get(state.shared)
        if shared_id is None:
            return None
        wids = []
        for index, stack in enumerate(state.stacks):
            wid = self._stack_ids[index].get(
                stack if isinstance(stack, tuple) else tuple(stack)
            )
            if wid is None:
                return None
            wids.append(wid)
        return self._ids.get(self.pack(shared_id, tuple(wids)))

    def key(self, sid: int) -> tuple[int, tuple[int, ...]]:
        """The ``(shared_id, stack_ids)`` component key of a state id."""
        return self.unpack(self._packed[sid])

    def packed_key(self, sid: int) -> int:
        """The packed single-int key of a state id (current era)."""
        return self._packed[sid]

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def state(self, sid: int) -> GlobalState:
        """Decode a state id back to its :class:`GlobalState` (memoized)."""
        state = self._states[sid]
        if state is None:
            qid, wids = self.unpack(self._packed[sid])
            stacks = self._stacks
            state = GlobalState(
                self._shareds[qid],
                tuple(stacks[index][wid] for index, wid in enumerate(wids)),
            )
            self._states[sid] = state
        return state

    def visible(self, sid: int) -> VisibleState:
        """The projection ``T(s)`` of a state id (memoized per id, and
        pooled per unique projection: distinct states overwhelmingly
        share their visible state, so the ``VisibleState`` construction
        — symbol tuple plus hash — happens once per *projection*, not
        once per state)."""
        vis = self._visibles[sid]
        if vis is None:
            key = self._packed[sid]
            bits = self._bits
            mask = self._mask
            qid = key >> self._qshift
            vkey = qid
            wid_tops = self._wid_tops
            for index in range(self.n_threads):
                vkey = (vkey << 32) | wid_tops[index][(key >> (bits * index)) & mask]
            vis = self._visible_pool.get(vkey)
            if vis is None:
                tops = self._tops
                vis = VisibleState(
                    self._shareds[qid],
                    tuple(
                        tops[index][(key >> (bits * index)) & mask]
                        for index in range(self.n_threads)
                    ),
                )
                self._visible_pool[vkey] = vis
            self._visibles[sid] = vis
        return vis

    # ------------------------------------------------------------------
    # Snapshot support (see :mod:`repro.service.snapshot`)
    # ------------------------------------------------------------------
    def component_pools(self) -> tuple[list, list[list[tuple]]]:
        """Copies of the component pools in dense-id order: the shared
        pool and the per-thread stack pools.  Pools can hold components
        no live global state references (cached context trees index
        them), so snapshots persist them in full."""
        return list(self._shareds), [list(pool) for pool in self._stacks]

    def export_rows(self):
        """The global states as one interleaved ``array('q')`` of
        ``(qid, wid_0, ..., wid_{n-1})`` rows in dense-id order.

        Component ids are persisted instead of packed keys: packed keys
        depend on the adaptive bit-field geometry (and can exceed 64
        bits at high thread counts), while component ids are small,
        era-independent, and re-pack losslessly on restore."""
        from array import array

        rows = array("q")
        extend = rows.extend
        unpack = self.unpack
        for key in self._packed:
            qid, wids = unpack(key)
            rows.append(qid)
            extend(wids)
        return rows

    @classmethod
    def from_snapshot(
        cls, n_threads: int, shareds: list, stacks: list, rows
    ) -> "StateTable":
        """Rebuild a table from :meth:`component_pools` +
        :meth:`export_rows` output.  Interning replays in pool order,
        so every component id, global-state id, and the adaptive
        geometry come out exactly as the engine that produced the
        snapshot assigned them."""
        table = cls(n_threads)
        for value in shareds:
            table.shared_id(value)
        for index, pool in enumerate(stacks):
            stack_id = table.stack_id
            for word in pool:
                stack_id(index, tuple(word))
        width = n_threads + 1
        intern_key = table.intern_key
        for base in range(0, len(rows), width):
            intern_key(rows[base], tuple(rows[base + 1 : base + width]))
        return table

    def __len__(self) -> int:
        return len(self._packed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StateTable(states={len(self._packed)}, "
            f"shared={len(self._shareds)}, "
            f"stacks={[len(s) for s in self._stacks]}, "
            f"bits={self._bits})"
        )
