"""The Windows NT Bluetooth driver benchmarks (Table 2, rows 1–3).

Re-modeled from the driver description in Qadeer/Wu (KISS) and Chaki et
al.: *stopper* threads halt the driver, *adder* threads perform I/O.  A
saturating two-bit reference counter ``(p1 p0)`` plays the role of
``pendingIo`` (it starts at 1 — the driver's own reference — and is
bounded by 1 + #adders ≤ 3); the adders' nested I/O is a *recursive*
procedure whose depth is capped by the counter's saturation guard, which
is what keeps finite context reachability intact (Table 2 reports FCR
for all Bluetooth rows) while exercising genuine recursion — the paper
likewise "uses a recursive procedure to model the counter".

The three versions differ in the adder's reference discipline
(substitution documented in DESIGN.md — the original driver sources are
not distributed with the paper):

* **version 1** — the classic KISS TOCTOU bug: the adder checks
  ``stopping_flag`` *before* taking its reference; the stopper can stop
  the driver in between.  Unsafe.
* **version 2** — checks after taking the reference (fixing v1) but
  releases the reference *before* performing the I/O; the driver can be
  stopped while the I/O is still in flight.  Unsafe.
* **version 3** — checks after taking the reference and releases after
  the I/O.  Safe; context-unbounded safety is exactly what CUBA proves
  and context-bounded tools cannot.

The safety property is the driver invariant ``assert (!stopped)`` at the
I/O point, compiled to "error state unreachable".
"""

from __future__ import annotations

from repro.bp.translate import CompiledProgram, compile_source

# Atomic two-bit counter steps (see module docstring for the encoding).
_TAKE_REF = "atomic { assume (!(p1 & p0)); p0, p1 := !p0, p1 ^ p0; }"
_DROP_REF = (
    "atomic { assume (p0 | p1); p0, p1 := !p0, p1 ^ !p0; "
    "ev := ev | !p0 & !p1; }"
)

_ADDER_V1 = f"""
void adder() {{
  if (sf) {{ return; }}
  {_TAKE_REF}
  if (*) {{ call adder(); }}
  assert (!st);
  {_DROP_REF}
}}
"""

_ADDER_V2 = f"""
void adder() {{
  {_TAKE_REF}
  if (sf) {{ {_DROP_REF} return; }}
  if (*) {{ call adder(); }}
  {_DROP_REF}
  assert (!st);
}}
"""

_ADDER_V3 = f"""
void adder() {{
  {_TAKE_REF}
  if (sf) {{ {_DROP_REF} return; }}
  if (*) {{ call adder(); }}
  assert (!st);
  {_DROP_REF}
}}
"""

_STOPPER = f"""
void stopper() {{
  decl mine;
  atomic {{ mine := !sf; sf := 1; }}
  if (mine) {{
    {_DROP_REF}
  }}
  while (!ev) {{ skip; }}
  st := 1;
}}
"""

_ADDERS = {1: _ADDER_V1, 2: _ADDER_V2, 3: _ADDER_V3}


def bluetooth_source(version: int, n_stoppers: int, n_adders: int) -> str:
    """Boolean-program source for one Bluetooth configuration."""
    if version not in _ADDERS:
        raise ValueError(f"unknown Bluetooth version {version}")
    creates = "\n  ".join(
        ["thread_create(&stopper);"] * n_stoppers
        + ["thread_create(&adder);"] * n_adders
    )
    return (
        "// Bluetooth driver, version %d (%d stoppers + %d adders)\n"
        "decl sf, st, ev, p0, p1;\n"
        "%s\n%s\n"
        "void main() {\n  %s\n}\n"
        % (version, n_stoppers, n_adders, _STOPPER, _ADDERS[version], creates)
    )


def bluetooth(version: int, n_stoppers: int = 1, n_adders: int = 1) -> CompiledProgram:
    """Compile a Bluetooth configuration; ``pendingIo`` starts at 1."""
    return compile_source(
        bluetooth_source(version, n_stoppers, n_adders),
        init={"p0": 1},
    )
