"""Benchmark CPDS models.

``figure1`` and ``figure2`` are verbatim transcriptions of the paper's
running examples; the remaining modules re-model the evaluation suite of
Table 2 (see DESIGN.md §4 for the substitution rationale).  The registry
maps Table 2 rows to model builders.
"""

from repro.models.figure1 import fig1_cpds
from repro.models.figure2 import fig2_cpds
from repro.models.bluetooth import bluetooth, bluetooth_source
from repro.models.bst import bst_insert, bst_source
from repro.models.filecrawler import filecrawler, filecrawler_source
from repro.models.kinduction import kinduction, kinduction_source
from repro.models.proc2 import proc2, proc2_source
from repro.models.stefan import stefan, stefan_thread
from repro.models.dekker import dekker, dekker_source
from repro.models.random_gen import RandomSpec, random_cpds, random_cpds_batch
from repro.models.registry import (
    TABLE2,
    Benchmark,
    fig5_benchmarks,
    runnable_benchmarks,
)

__all__ = [
    "TABLE2",
    "Benchmark",
    "bluetooth",
    "bluetooth_source",
    "bst_insert",
    "bst_source",
    "dekker",
    "dekker_source",
    "fig1_cpds",
    "fig2_cpds",
    "fig5_benchmarks",
    "filecrawler",
    "filecrawler_source",
    "kinduction",
    "kinduction_source",
    "proc2",
    "proc2_source",
    "random_cpds",
    "random_cpds_batch",
    "RandomSpec",
    "runnable_benchmarks",
    "stefan",
    "stefan_thread",
]
