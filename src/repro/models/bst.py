"""Concurrent binary search tree (Table 2, row 4 — BST-Insert).

Re-modeled after Kung/Lehman's lock-based concurrent BST: *inserter*
threads descend the tree recursively and splice a node in under the
global lock; *searcher* threads descend recursively and read under the
lock.  The Boolean abstraction tracks:

* ``inv`` — the tree's structural invariant (temporarily broken by an
  inserter while it rewires pointers, always under the lock);
* a saturating two-bit descent depth ``(d1 d0)`` standing in for the
  abstracted tree height, which bounds the recursion per context and
  keeps finite context reachability (Table 2: FCR holds for every BST
  row).

Searchers ``assert (inv)`` while holding the lock: safe, because
inserters only break the invariant inside their own lock section — the
property context-bounded tools can check but never prove for unbounded
contexts.
"""

from __future__ import annotations

from repro.bp.translate import CompiledProgram, compile_source

_SOURCE = """
// Kung/Lehman-style concurrent BST, Boolean abstraction.
decl inv, d0, d1;

void descend() {
  // One tree level: bounded by the saturating depth counter.
  atomic { assume (!(d1 & d0)); d0, d1 := !d0, d1 ^ d0; }
  if (*) { call descend(); }
  atomic { assume (d0 | d1); d0, d1 := !d0, d1 ^ !d0; }
}

void inserter() {
  call descend();
  lock;
  inv := 0;     // rewiring: invariant briefly broken
  inv := 1;
  unlock;
}

void searcher() {
  call descend();
  lock;
  assert (inv); // reads must see a consistent tree
  unlock;
}
"""


def bst_source(n_inserters: int, n_searchers: int) -> str:
    creates = "\n  ".join(
        ["thread_create(&inserter);"] * n_inserters
        + ["thread_create(&searcher);"] * n_searchers
    )
    return _SOURCE + "\nvoid main() {\n  %s\n}\n" % creates


def bst_insert(n_inserters: int = 1, n_searchers: int = 1) -> CompiledProgram:
    """Compile a BST-Insert configuration; the tree starts consistent."""
    return compile_source(bst_source(n_inserters, n_searchers), init={"inv": 1})
