"""The foo/bar CPDS of the paper's Fig. 2 (Ex. 8, from Prabhu et al.).

Two recursive procedures synchronize through a shared Boolean ``x``
initialized nondeterministically (shared state ``⊥``).  Both stacks can
grow without bound inside a single context (the recursion at lines 3/7),
so the program violates FCR (Fig. 4) — the symbolic engine is required.
Per Ex. 8, ``⟨1|4,9⟩ ∈ R2 \\ R1`` and ``R2 = R3``.

Encoding (as printed): ``Q = {⊥,0,1}``, ``Σ1 = {2,3,4,5}``,
``Σ2 = {6,7,8,9}``, initial state ``⟨⊥|2,6⟩``.  Rules written with a
metavariable ``x`` exist for ``x = 0`` and ``x = 1``.
"""

from __future__ import annotations

from repro.cpds.cpds import CPDS
from repro.pds.pds import PDS

#: The paper's ``⊥``: x not yet chosen.
BOTTOM = "⊥"


def fig2_cpds() -> CPDS:
    """Build the Fig. 2 CPDS exactly as printed."""
    shared = {BOTTOM, 0, 1}

    foo = PDS(initial_shared=BOTTOM, shared_states=shared, name="foo")
    for x in (0, 1):
        foo.rule(BOTTOM, 2, x, (2,), label="f0")
        foo.rule(x, 2, x, (3,), label="f2a")
        foo.rule(x, 2, x, (4,), label="f2b")
        foo.rule(x, 3, x, (2, 4), label="f3")
        foo.rule(x, 5, 1, (), label="f5")
    foo.rule(1, 4, 1, (4,), label="f4a")  # while (x) {} — spin
    foo.rule(0, 4, 0, (5,), label="f4b")

    bar = PDS(initial_shared=BOTTOM, shared_states=shared, name="bar")
    for x in (0, 1):
        bar.rule(BOTTOM, 6, x, (6,), label="b0")
        bar.rule(x, 6, x, (7,), label="b6a")
        bar.rule(x, 6, x, (8,), label="b6b")
        bar.rule(x, 7, x, (6, 8), label="b7")
        bar.rule(x, 9, 0, (), label="b9")
    bar.rule(0, 8, 0, (8,), label="b8a")  # while (!x) {} — spin
    bar.rule(1, 8, 1, (9,), label="b8b")

    return CPDS([foo, bar], initial_stacks=[(2,), (6,)], name="fig2")
