"""Dekker's mutual exclusion (Table 2, row 9 — 2•, non-recursive).

The only recursion-free benchmark in the suite (the paper remarks that
Scheme 1(Rk) is guaranteed to terminate on it, while Alg. 3 may still
fail to distinguish stuttering from convergence).  The classic algorithm
for two threads with intent flags and a turn variable; each thread
asserts the other is outside the critical section.
"""

from __future__ import annotations

from repro.bp.translate import CompiledProgram, compile_source

_SOURCE = """
// Dekker's algorithm, two symmetric threads.
decl flag0, flag1, turn, in0, in1;

void p0() {
  flag0 := 1;
  while (flag1) {
    if (turn) {
      flag0 := 0;
      while (turn) { skip; }
      flag0 := 1;
    }
  }
  in0 := 1;
  assert (!in1);    // critical section
  in0 := 0;
  turn := 1;
  flag0 := 0;
}

void p1() {
  flag1 := 1;
  while (!flag0) { } // note: inverted spin on the *other* flag below
  skip;
}
"""

# The real second thread is symmetric; the placeholder above is replaced
# in dekker_source() to keep the two bodies literally mirrored.
_P1 = """
void p1() {
  flag1 := 1;
  while (flag0) {
    if (!turn) {
      flag1 := 0;
      while (!turn) { skip; }
      flag1 := 1;
    }
  }
  in1 := 1;
  assert (!in0);    // critical section
  in1 := 0;
  turn := 0;
  flag1 := 0;
}
"""


def dekker_source() -> str:
    head, _sep, _rest = _SOURCE.partition("void p1()")
    return head + _P1 + "\nvoid main() {\n  thread_create(&p0);\n  thread_create(&p1);\n}\n"


def dekker() -> CompiledProgram:
    """Compile the two-thread Dekker instance (turn initially thread 0)."""
    return compile_source(dekker_source())
