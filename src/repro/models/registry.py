"""Registry of the Table 2 benchmark suite.

Every row of the paper's Table 2 maps to one :class:`Benchmark` with its
builder, the expected verdict/FCR status, and the paper's reported
numbers (kmax columns, bug-revealing bound, runtime, memory) for the
side-by-side comparison in EXPERIMENTS.md and the Table 2 harness.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.property import Property
from repro.cpds.cpds import CPDS


@dataclass(frozen=True)
class Benchmark:
    """One Table 2 row."""

    row: str               # e.g. "1/Bluetooth-1"
    config: str            # thread instantiation, e.g. "1+2"
    build: Callable[[], tuple[CPDS, Property]]
    safe: bool             # Table 2 "Safe?" column
    fcr: bool              # Table 2 "FCR?" column
    paper_k_rk: str        # Table 2 (Rk) kmax column
    paper_k_trk: str       # Table 2 (T(Rk)) kmax column
    paper_time: float | None  # seconds
    paper_mem: float | None   # MB
    max_rounds: int = 25
    skip_run: bool = False  # paper ran out of memory here; so do we

    @property
    def name(self) -> str:
        return f"{self.row} [{self.config}]"


def _bluetooth(version: int, stoppers: int, adders: int):
    def build():
        from repro.models.bluetooth import bluetooth

        compiled = bluetooth(version, stoppers, adders)
        return compiled.cpds, compiled.prop

    return build


def _bst(inserters: int, searchers: int):
    def build():
        from repro.models.bst import bst_insert

        compiled = bst_insert(inserters, searchers)
        return compiled.cpds, compiled.prop

    return build


def _filecrawler():
    from repro.models.filecrawler import filecrawler

    compiled = filecrawler(2)
    return compiled.cpds, compiled.prop


def _kinduction():
    from repro.models.kinduction import kinduction

    return kinduction()


def _proc2():
    from repro.models.proc2 import proc2

    compiled = proc2()
    return compiled.cpds, compiled.prop


def _stefan(n: int):
    def build():
        from repro.models.stefan import stefan

        return stefan(n)

    return build


def _dekker():
    from repro.models.dekker import dekker

    compiled = dekker()
    return compiled.cpds, compiled.prop


TABLE2: tuple[Benchmark, ...] = (
    Benchmark("1/Bluetooth-1", "1+1", _bluetooth(1, 1, 1), False, True, "≥7", "6 (4)", 0.26, 18.14),
    Benchmark("1/Bluetooth-1", "1+2", _bluetooth(1, 1, 2), False, True, "≥7", "6 (3)", 2.32, 136.26),
    Benchmark("1/Bluetooth-1", "2+1", _bluetooth(1, 2, 1), False, True, "≥8", "7 (4)", 12.76, 347.74),
    Benchmark("2/Bluetooth-2", "1+1", _bluetooth(2, 1, 1), False, True, "≥7", "6 (4)", 0.53, 23.43),
    Benchmark("2/Bluetooth-2", "1+2", _bluetooth(2, 1, 2), False, True, "≥7", "6 (3)", 4.39, 196.73),
    Benchmark("2/Bluetooth-2", "2+1", _bluetooth(2, 2, 1), False, True, "≥8", "7 (4)", 14.21, 387.23),
    Benchmark("3/Bluetooth-3", "1+1", _bluetooth(3, 1, 1), True, True, "≥7", "6", 0.47, 22.15),
    Benchmark("3/Bluetooth-3", "1+2", _bluetooth(3, 1, 2), True, True, "≥7", "6", 4.71, 180.11),
    Benchmark("3/Bluetooth-3", "2+1", _bluetooth(3, 2, 1), True, True, "≥8", "7", 14.46, 375.42),
    Benchmark("4/BST-Insert", "1+1", _bst(1, 1), True, True, "2", "2", 1.17, 24.53),
    Benchmark("4/BST-Insert", "2+1", _bst(2, 1), True, True, "3", "3", 15.84, 140.93),
    Benchmark("4/BST-Insert", "2+2", _bst(2, 2), True, True, "≥5", "4", 45.21, 355.74),
    Benchmark("5/FileCrawler", "1•+2", _filecrawler, True, True, "6", "6", 0.03, 5.35),
    Benchmark("6/K-Induction", "1+1", _kinduction, True, False, "≥4", "3", 0.23, 3.78),
    Benchmark("7/Proc-2", "2+2•", _proc2, True, False, "≥4", "3", 0.52, 18.04),
    Benchmark("8/Stefan-1", "2", _stefan(2), True, False, "≥3", "2", 1.01, 2.81),
    Benchmark("8/Stefan-1", "4", _stefan(4), True, False, "≥5", "4", 16.36, 1185.62),
    Benchmark("8/Stefan-1", "8", _stefan(8), True, False, "≥8", "≥8", None, None, skip_run=True),
    Benchmark("9/Dekker", "2•", _dekker, True, True, "6", "6", 0.21, 13.42),
)

#: Rows used for the Fig. 5 tool comparison (the paper compares only on
#: suites 1–5 and 9, as no other tool parses the remaining programs).
FIG5_ROWS: tuple[str, ...] = (
    "1/Bluetooth-1",
    "2/Bluetooth-2",
    "3/Bluetooth-3",
    "4/BST-Insert",
    "5/FileCrawler",
    "9/Dekker",
)


def fig5_benchmarks() -> tuple[Benchmark, ...]:
    return tuple(b for b in TABLE2 if b.row in FIG5_ROWS and not b.skip_run)


def runnable_benchmarks() -> tuple[Benchmark, ...]:
    return tuple(b for b in TABLE2 if not b.skip_run)


def smallest_per_row(predicate=None) -> tuple[Benchmark, ...]:
    """The first-listed (smallest) runnable configuration of each Table 2
    row, optionally filtered by ``predicate``.

    Shared by the test/benchmark harnesses that sweep the whole suite but
    must keep tier-1 runtimes bounded: larger configurations of a row
    change constants, not semantics (they instantiate the same thread
    programs)."""
    chosen: dict[str, Benchmark] = {}
    for bench in TABLE2:
        if bench.skip_run or bench.row in chosen:
            continue
        if predicate is not None and not predicate(bench):
            continue
        chosen[bench.row] = bench
    return tuple(chosen.values())
