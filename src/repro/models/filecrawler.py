"""Parallel file crawler (Table 2, row 5 — FileCrawler, 1• + 2).

Re-modeled from the paper's description: an artificial benchmark
converted from an online parallel file crawler "that allows multiple
users to recursively access files in a given directory".  One
*dispatcher* (non-recursive — the ``•`` in Table 2) opens the root
directory and hands work to *crawler* threads, which recurse into
subdirectories.  Recursion depth is bounded per context by a saturating
two-bit depth budget (the directory tree the crawler may enter), which
preserves finite context reachability.

Crawlers ``assert (go)`` before touching the tree — they must never run
before the dispatcher opened the root.  Safe.
"""

from __future__ import annotations

from repro.bp.translate import CompiledProgram, compile_source

_SOURCE = """
// Parallel file crawler: 1 dispatcher + N recursive crawlers.
decl go, closed, d0, d1;

void dispatcher() {
  go := 1;
  while (*) { skip; }   // serve other requests
  closed := *;          // the root may be closed for new crawls
}

void crawl() {
  assert (go);          // never crawl before dispatch
  atomic { assume (!(d1 & d0)); d0, d1 := !d0, d1 ^ d0; }
  if (*) { call crawl(); }        // enter a subdirectory
  atomic { assume (d0 | d1); d0, d1 := !d0, d1 ^ !d0; }
}

void crawler() {
  while (!go) { skip; }
  if (!closed) { call crawl(); }
}
"""


def filecrawler_source(n_crawlers: int) -> str:
    creates = "\n  ".join(
        ["thread_create(&dispatcher);"] + ["thread_create(&crawler);"] * n_crawlers
    )
    return _SOURCE + "\nvoid main() {\n  %s\n}\n" % creates


def filecrawler(n_crawlers: int = 2) -> CompiledProgram:
    """Compile the crawler benchmark (paper configuration: 1• + 2)."""
    return compile_source(filecrawler_source(n_crawlers))
