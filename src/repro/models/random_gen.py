"""Seeded random CPDS generation — the library's fuzzing substrate.

Verification tools live and die by differential testing; this module
provides reproducible random concurrent pushdown systems with tunable
shape (thread count, rule count, push bias) used by the property-based
test suites and available to downstream users for their own fuzzing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cpds.cpds import CPDS
from repro.pds.pds import PDS


@dataclass(frozen=True)
class RandomSpec:
    """Shape parameters for random CPDS generation."""

    n_threads: int = 2
    n_shared: int = 2
    n_symbols: int = 2
    rules_per_thread: int = 6
    #: Probability that a generated rule is a push (stack growth).
    push_bias: float = 0.3
    #: Probability that a generated rule reads the empty stack.
    empty_read_bias: float = 0.1
    #: Maximum initial stack depth per thread.
    max_initial_stack: int = 1

    def __post_init__(self) -> None:
        if self.n_threads < 1 or self.n_shared < 1 or self.n_symbols < 1:
            raise ValueError("threads, shared states and symbols must be ≥ 1")
        if not 0 <= self.push_bias <= 1 or not 0 <= self.empty_read_bias <= 1:
            raise ValueError("biases are probabilities")


def random_cpds(seed: int, spec: RandomSpec = RandomSpec()) -> CPDS:
    """Generate a reproducible random CPDS for ``seed``."""
    rng = random.Random(seed)
    shared = list(range(spec.n_shared))
    threads = []
    stacks = []
    for index in range(spec.n_threads):
        symbols = [f"t{index}_{j}" for j in range(spec.n_symbols)]
        pds = PDS(
            initial_shared=0,
            shared_states=shared,
            alphabet=symbols,
            name=f"rnd{index}",
        )
        for _ in range(spec.rules_per_thread):
            src = rng.choice(shared)
            dst = rng.choice(shared)
            if rng.random() < spec.empty_read_bias:
                read = None
                write = rng.choice([(), (rng.choice(symbols),)])
            else:
                read = rng.choice(symbols)
                roll = rng.random()
                if roll < spec.push_bias:
                    write = (rng.choice(symbols), rng.choice(symbols))
                elif roll < spec.push_bias + (1 - spec.push_bias) / 2:
                    write = (rng.choice(symbols),)
                else:
                    write = ()
            pds.rule(src, read, dst, write)
        threads.append(pds)
        depth = rng.randint(0, spec.max_initial_stack)
        stacks.append(tuple(rng.choice(symbols) for _ in range(depth)))
    return CPDS(threads, initial_stacks=stacks, name=f"random-{seed}")


def random_cpds_batch(
    n: int, start_seed: int = 0, spec: RandomSpec = RandomSpec()
) -> list[CPDS]:
    """A batch of distinct-seed random systems."""
    return [random_cpds(seed, spec) for seed in range(start_seed, start_seed + n)]
