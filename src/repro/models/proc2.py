"""Proc-2 (Table 2, row 7 — from Chaki et al., 2+2•).

Re-modeled: two *server* threads run a genuinely unboundedly recursive
procedure (recursion unguarded by any shared state, so a single context
can pump the stack — finite context reachability fails, matching the
open circle in Table 2), and two non-recursive *client* threads (the
``•`` template) perform a handshake with the servers over a shared bit.

Safety: a server acknowledges (``ack``) only after a client raised
``req`` — ``assert (req)`` at the acknowledgment point.  Safe, and
provable only by the symbolic engine since FCR fails.
"""

from __future__ import annotations

from repro.bp.translate import CompiledProgram, compile_source

_SOURCE = """
// Two recursive servers + two non-recursive clients.
decl req, ack;

void serve() {
  if (*) { call serve(); }    // unbounded work splitting: no FCR
  if (req) {
    assert (req);
    ack := 1;
  }
}

void server() {
  call serve();
}

void client() {
  req := 1;
  while (!ack) { skip; }
}
"""


def proc2_source(n_servers: int = 2, n_clients: int = 2) -> str:
    creates = "\n  ".join(
        ["thread_create(&server);"] * n_servers
        + ["thread_create(&client);"] * n_clients
    )
    return _SOURCE + "\nvoid main() {\n  %s\n}\n" % creates


def proc2(n_servers: int = 2, n_clients: int = 2) -> CompiledProgram:
    """Compile Proc-2 (paper configuration: 2 + 2•)."""
    return compile_source(proc2_source(n_servers, n_clients))
