"""The two-thread CPDS of the paper's Fig. 1 — the running example.

``Q = {0,1,2,3}``, ``Σ1 = {1,2}``, ``Σ2 = {4,5,6}``; initial state
``⟨0|1,4⟩``.  Its visible-state observation sequence plateaus at k = 2
(stuttering) and collapses at k = 5 (Ex. 5, 9, 14); it satisfies FCR
while its full reachable set is infinite (Ex. 15).
"""

from __future__ import annotations

from repro.cpds.cpds import CPDS
from repro.pds.pds import PDS


def fig1_cpds() -> CPDS:
    """Build the Fig. 1 CPDS exactly as printed."""
    shared = {0, 1, 2, 3}

    thread1 = PDS(initial_shared=0, shared_states=shared, name="P1")
    thread1.rule(0, 1, 1, (2,), label="f1")
    thread1.rule(3, 2, 0, (1,), label="f2")

    thread2 = PDS(initial_shared=0, shared_states=shared, name="P2")
    thread2.rule(0, 4, 0, (), label="b1")
    thread2.rule(1, 4, 2, (5,), label="b2")
    thread2.rule(2, 5, 3, (4, 6), label="b3")

    return CPDS([thread1, thread2], initial_stacks=[(1,), (4,)], name="fig1")
