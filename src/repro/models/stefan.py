"""Stefan-1 (Table 2, row 8 — from Schwoon's thesis).

``n`` extended copies of the pushdown system of the paper's Fig. 7
(App. C) running over a common shared-state cycle ``q0 → q1 → q2 → q0``;
thread ``i`` uses its own alphabet ``{s0_i, s1_i, s2_i}``.  A single
context already pumps the stack (``⟨q0|s0⟩ →* ⟨q0|s0 s0⟩``), so finite
context reachability fails and the pushdown-store-automata engine is
required — the paper's footnote 3 notes exactly this (and that the
8-thread instance exhausts its resources, as does ours).

Beyond Fig. 7's four rules, each thread can *abort* its cycle
(``(q2,s2) → (q0,s2)`` then pop) and *retire* its initial frame
(``(q0,s0) → (q0,ε)``).  These two escape hatches make every generator
``G ∩ Z`` reachable, so Alg. 3's convergence test fires — with the bare
Fig. 7 rules the overapproximation ``Z`` contains generators the program
never reaches and the algorithm provably cannot terminate (the paper's
own caveat about Alg. 3).  Measured collapse bounds: kmax = 2 for two
threads and kmax = 4 for four, matching Table 2 exactly.

The benchmark's role is the convergence proof itself, so the property is
the trivial safety property (Table 2 reports the row safe).
"""

from __future__ import annotations

from repro.core.property import AlwaysSafe
from repro.cpds.cpds import CPDS
from repro.pds.pds import PDS

SHARED = ("q0", "q1", "q2")


def stefan_thread(index: int) -> PDS:
    """One extended Fig. 7 PDS with thread-tagged stack alphabet."""
    s0, s1, s2 = (f"s0_{index}", f"s1_{index}", f"s2_{index}")
    pds = PDS(initial_shared="q0", shared_states=SHARED, name=f"stefan{index}")
    pds.rule("q0", s0, "q1", (s1, s0), label=f"push1_{index}")
    pds.rule("q1", s1, "q2", (s2, s0), label=f"push2_{index}")
    pds.rule("q2", s2, "q0", (s1,), label=f"back_{index}")
    pds.rule("q0", s1, "q0", (), label=f"pop_{index}")
    pds.rule("q2", s2, "q0", (s2,), label=f"abort_{index}")
    pds.rule("q0", s2, "q0", (), label=f"drop_{index}")
    pds.rule("q0", s0, "q0", (), label=f"retire_{index}")
    return pds


def stefan(n_threads: int = 2) -> tuple[CPDS, AlwaysSafe]:
    """Build the ``n``-thread Stefan-1 instance and its property."""
    threads = [stefan_thread(index) for index in range(n_threads)]
    stacks = [(f"s0_{index}",) for index in range(n_threads)]
    cpds = CPDS(threads, initial_stacks=stacks, name=f"stefan-{n_threads}")
    return cpds, AlwaysSafe()
