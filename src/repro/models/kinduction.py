"""K-Induction (Table 2, row 6 — the paper's Fig. 2 / Ex. 8 program).

This is the foo/bar example from Prabhu et al. on which their
CBA+k-induction procedure fails to terminate; the paper uses it as the
flagship non-FCR benchmark.  We use the verbatim Fig. 2 CPDS
(:mod:`repro.models.figure2`).

The safety property: ``foo`` poised to set ``x := 1`` (top symbol 5) and
``bar`` poised to set ``x := 0`` (top symbol 9) are never armed
simultaneously — the race the ``while`` handshakes prevent.  A Boolean
program equivalent is available via
:func:`repro.models.kinduction.kinduction_source`.
"""

from __future__ import annotations

from repro.core.property import MutualExclusion, Property
from repro.cpds.cpds import CPDS
from repro.models.figure2 import fig2_cpds

#: Boolean-program rendition of Fig. 2 (compiled form used in tests).
KINDUCTION_SOURCE = """
decl x;
void foo() {
  if (*) { call foo(); }
  while (x) { skip; }
  x := 1;
}
void bar() {
  if (*) { call bar(); }
  while (!x) { skip; }
  x := 0;
}
void main() {
  thread_create(&foo);
  thread_create(&bar);
}
"""


def kinduction() -> tuple[CPDS, Property]:
    """The Fig. 2 CPDS with its race-freedom property."""
    return fig2_cpds(), MutualExclusion({0: {5}, 1: {9}})


def kinduction_source() -> str:
    """Source text of the Boolean-program rendition."""
    return KINDUCTION_SOURCE
