"""Reduced ordered binary decision diagrams (ROBDDs).

The paper proposes representing the finite sets ``Rk`` / ``T(Rk)``
"using compact data structures for finite sets, such as BDDs or even
extensional lists or sets" (Secs. 1, 5) — JMoped, the comparison tool,
is BDD-based throughout.  This package provides a self-contained ROBDD
implementation and an encoder from visible states to Boolean vectors,
giving the library the paper's alternative set representation
(benchmarked against extensional sets in ``benchmarks/test_ablation``).
"""

from repro.bdd.bdd import FALSE, TRUE, BDDManager
from repro.bdd.encode import TupleEncoder, VisibleSetBDD

__all__ = ["BDDManager", "FALSE", "TRUE", "TupleEncoder", "VisibleSetBDD"]
