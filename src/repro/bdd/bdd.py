"""A reduced ordered binary decision diagram (ROBDD) manager.

Nodes are integers; 0 and 1 are the terminals.  Internal nodes live in a
unique table keyed by ``(var, low, high)``, so structural equality *is*
functional equality: two formulas are equivalent exactly if they share a
root.  All Boolean connectives are reduced to the classical Shannon
``ite`` (if-then-else) with memoization (Brace/Rudell/Bryant).

Variables are identified by their index in the fixed global order:
smaller index = closer to the root.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

FALSE = 0
TRUE = 1


class BDDManager:
    """Shared unique-table manager for one variable order."""

    def __init__(self) -> None:
        # node id -> (var, low, high); terminals handled separately.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low  # redundant test eliminated (reduction rule)
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """The BDD of the single variable ``index``."""
        if index < 0:
            raise ValueError("variable indices are non-negative")
        return self._mk(index, FALSE, TRUE)

    def node_count(self) -> int:
        return len(self._nodes)

    def _var_of(self, node: int) -> int:
        """Variable of a node; terminals sort after every variable."""
        if node <= TRUE:
            return 1 << 30
        return self._nodes[node][0]

    def _cofactors(self, node: int, var: int) -> tuple[int, int]:
        """(low, high) cofactors of ``node`` with respect to ``var``."""
        if node <= TRUE or self._nodes[node][0] != var:
            return (node, node)
        _v, low, high = self._nodes[node]
        return (low, high)

    # ------------------------------------------------------------------
    # Core operation
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """Shannon if-then-else: ``(f ∧ g) ∨ (¬f ∧ h)``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._var_of(f), self._var_of(g), self._var_of(h))
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        result = self._mk(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Connectives
    # ------------------------------------------------------------------
    def land(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def lor(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def lnot(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def lxor(self, f: int, g: int) -> int:
        return self.ite(f, self.lnot(g), g)

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def equiv(self, f: int, g: int) -> int:
        return self.ite(f, g, self.lnot(g))

    def conjoin(self, terms: Iterable[int]) -> int:
        result = TRUE
        for term in terms:
            result = self.land(result, term)
        return result

    def disjoin(self, terms: Iterable[int]) -> int:
        result = FALSE
        for term in terms:
            result = self.lor(result, term)
        return result

    def cube(self, assignment: dict[int, bool]) -> int:
        """Conjunction of literals: ``{var: polarity}``."""
        result = TRUE
        for index in sorted(assignment, reverse=True):
            literal = self.var(index)
            if not assignment[index]:
                literal = self.lnot(literal)
            result = self.land(literal, result)
        return result

    # ------------------------------------------------------------------
    # Queries and transformations
    # ------------------------------------------------------------------
    def restrict(self, node: int, var: int, value: bool) -> int:
        """Cofactor: fix ``var`` to ``value``."""
        if node <= TRUE:
            return node
        v, low, high = self._nodes[node]
        if v > var:
            return node
        if v == var:
            return high if value else low
        return self._mk(
            v, self.restrict(low, var, value), self.restrict(high, var, value)
        )

    def exists(self, node: int, var: int) -> int:
        """Existential quantification over one variable."""
        return self.lor(
            self.restrict(node, var, False), self.restrict(node, var, True)
        )

    def exists_many(self, node: int, variables: Iterable[int]) -> int:
        for var in sorted(variables, reverse=True):
            node = self.exists(node, var)
        return node

    def support(self, node: int) -> frozenset[int]:
        """Variables the function actually depends on."""
        seen: set[int] = set()
        found: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            var, low, high = self._nodes[current]
            found.add(var)
            stack.append(low)
            stack.append(high)
        return frozenset(found)

    def evaluate(self, node: int, assignment: dict[int, bool]) -> bool:
        """Evaluate under a (total enough) assignment."""
        while node > TRUE:
            var, low, high = self._nodes[node]
            node = high if assignment.get(var, False) else low
        return node == TRUE

    def satcount(self, node: int, n_vars: int) -> int:
        """Number of satisfying assignments over variables ``0..n_vars-1``.

        The function's support must lie within that range.  Skipped
        levels are weighted by powers of two (each skipped variable is a
        free choice).
        """
        if any(var >= n_vars for var in self.support(node)):
            raise ValueError(f"support exceeds the {n_vars}-variable range")
        if node == FALSE:
            return 0
        if node == TRUE:
            return 1 << n_vars

        cache: dict[int, int] = {}

        def level(current: int) -> int:
            return n_vars if current <= TRUE else self._nodes[current][0]

        def count(current: int) -> int:
            """Models over variables ``level(current)..n_vars-1``."""
            if current == FALSE:
                return 0
            if current == TRUE:
                return 1
            if current in cache:
                return cache[current]
            var, low, high = self._nodes[current]
            result = count(low) * (1 << (level(low) - var - 1)) + count(high) * (
                1 << (level(high) - var - 1)
            )
            cache[current] = result
            return result

        return count(node) * (1 << self._nodes[node][0])

    def iter_models(self, node: int, n_vars: int) -> Iterator[tuple[bool, ...]]:
        """Enumerate satisfying assignments as bit tuples (tests only)."""
        import itertools

        for bits in itertools.product((False, True), repeat=n_vars):
            if self.evaluate(node, dict(enumerate(bits))):
                yield bits