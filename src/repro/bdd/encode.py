"""Encoding finite tuples (visible states) as BDDs.

A :class:`TupleEncoder` maps fixed-arity tuples over finite component
domains to Boolean vectors: each component gets ``ceil(log2(|domain|))``
variables holding the binary code of the value's index.  Domains grow
on demand — adding a value that needs one more bit re-encodes nothing
because codes are assigned within a pre-reserved bit budget.

:class:`VisibleSetBDD` uses the encoder to store a *set* of tuples as a
single BDD: membership is evaluation, union is disjunction, and equality
is root-pointer comparison (the ROBDD canonicity argument) — the set
representation the paper suggests for the finite ``T(Rk)`` (Sec. 5).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.bdd.bdd import FALSE, BDDManager

#: Bits reserved per tuple component; domains up to 2^RESERVED values.
RESERVED_BITS = 10


class TupleEncoder:
    """Bijection between tuples of hashable values and variable cubes."""

    def __init__(self, arity: int, manager: BDDManager | None = None) -> None:
        if arity <= 0:
            raise ValueError("arity must be positive")
        self.arity = arity
        self.manager = manager if manager is not None else BDDManager()
        self._codes: list[dict[Hashable, int]] = [{} for _ in range(arity)]
        self._values: list[list[Hashable]] = [[] for _ in range(arity)]

    @property
    def n_vars(self) -> int:
        return self.arity * RESERVED_BITS

    def _code(self, position: int, value: Hashable, register: bool) -> int | None:
        codes = self._codes[position]
        code = codes.get(value)
        if code is None:
            if not register:
                return None
            code = len(codes)
            if code >= (1 << RESERVED_BITS):
                raise OverflowError(
                    f"component {position} exceeds {1 << RESERVED_BITS} values"
                )
            codes[value] = code
            self._values[position].append(value)
        return code

    def assignment(self, values: tuple, register: bool = True) -> dict[int, bool] | None:
        """Variable assignment encoding ``values`` (None if unknown and
        ``register`` is off)."""
        if len(values) != self.arity:
            raise ValueError(f"expected arity {self.arity}, got {len(values)}")
        assignment: dict[int, bool] = {}
        for position, value in enumerate(values):
            code = self._code(position, value, register)
            if code is None:
                return None
            base = position * RESERVED_BITS
            for bit in range(RESERVED_BITS):
                assignment[base + bit] = bool((code >> bit) & 1)
        return assignment

    def cube(self, values: tuple) -> int:
        """The BDD (a cube) of exactly one tuple."""
        return self.manager.cube(self.assignment(values))

    def decode(self, bits: tuple[bool, ...]) -> tuple | None:
        """Tuple encoded by a full model, or None for an unused code."""
        values = []
        for position in range(self.arity):
            base = position * RESERVED_BITS
            code = 0
            for bit in range(RESERVED_BITS):
                if bits[base + bit]:
                    code |= 1 << bit
            if code >= len(self._values[position]):
                return None
            values.append(self._values[position][code])
        return tuple(values)


class VisibleSetBDD:
    """A set of fixed-arity tuples stored as one BDD.

    Supports the operations the CUBA algorithms need from ``T(Rk)``:
    insertion, membership, size, subset and equality tests — the last
    two in O(1) by ROBDD canonicity.
    """

    def __init__(self, encoder: TupleEncoder) -> None:
        self.encoder = encoder
        self.root = FALSE
        self._size = 0

    @classmethod
    def for_arity(cls, arity: int) -> "VisibleSetBDD":
        return cls(TupleEncoder(arity))

    def add(self, values: tuple) -> bool:
        """Insert; True iff the tuple is new."""
        cube = self.encoder.cube(tuple(values))
        manager = self.encoder.manager
        new_root = manager.lor(self.root, cube)
        if new_root == self.root:
            return False
        self.root = new_root
        self._size += 1
        return True

    def update(self, tuples: Iterable[tuple]) -> int:
        added = 0
        for values in tuples:
            added += self.add(tuple(values))
        return added

    def __contains__(self, values) -> bool:
        assignment = self.encoder.assignment(tuple(values), register=False)
        if assignment is None:
            return False
        return self.encoder.manager.evaluate(self.root, assignment)

    def __len__(self) -> int:
        return self._size

    def satcount(self) -> int:
        """Size recomputed from the BDD itself (cross-check for tests)."""
        return self.encoder.manager.satcount(self.root, self.encoder.n_vars)

    def issubset(self, other: "VisibleSetBDD") -> bool:
        self._check_shared(other)
        manager = self.encoder.manager
        return manager.implies(self.root, other.root) == 1

    def equals(self, other: "VisibleSetBDD") -> bool:
        self._check_shared(other)
        return self.root == other.root  # canonicity

    def union(self, other: "VisibleSetBDD") -> "VisibleSetBDD":
        self._check_shared(other)
        result = VisibleSetBDD(self.encoder)
        result.root = self.encoder.manager.lor(self.root, other.root)
        result._size = result.satcount()
        return result

    def __iter__(self) -> Iterator[tuple]:
        # Enumerate the product of registered domains and filter by
        # membership; members can only use registered values.
        import itertools

        domains = self.encoder._values
        if any(not domain for domain in domains):
            return
        for values in itertools.product(*domains):
            if values in self:
                yield values

    def _check_shared(self, other: "VisibleSetBDD") -> None:
        if other.encoder is not self.encoder:
            raise ValueError("sets must share one encoder/manager")
