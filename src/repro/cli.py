"""Command-line interface: the ``cuba`` verifier.

Subcommands::

    cuba verify file.cpds [--property shared:ERR] [--lane auto|explicit|symbolic|wuba]
    cuba verify prog.bp --boolean [--init x=*,y=1] [--witness]
    cuba fcr file.cpds
    cuba table file.cpds [--levels 6]      # Fig. 1 style reachability table
    cuba bench [--rows 1,2,9]              # Table 2 reproduction
    cuba bench --json [--quick] [--compare BENCH_x.json]  # perf trajectory
    cuba serve [--port 8765] [--store cuba-store.sqlite]  # analysis service
    cuba submit file.cpds [--lane ...] [--port 8765]      # query the service
    cuba loadtest [--spawn 2] [--duration 10]  # replica throughput harness

``verify`` and ``submit`` exit 0 when the property is proved, 1 when
refuted, and 2 when no conclusion was reached within the round budget.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bp.translate import compile_source
from repro.core.property import Property, property_from_spec
from repro.core.result import Verdict
from repro.cpds.format import parse_cpds
from repro.cuba.fcr import check_fcr
from repro.cuba.lanes import run_lane
from repro.cuba.verifier import Cuba
from repro.errors import CubaError
from repro.reach import registry
from repro.reach.config import EngineConfig
from repro.reach.explicit import ExplicitReach
from repro.util.table import render_table


def _parse_property(spec: str | None) -> Property:
    try:
        return property_from_spec(spec)
    except ValueError as bad:
        raise SystemExit(str(bad)) from bad


def _parse_init(spec: str | None) -> dict:
    if not spec:
        return {}
    init: dict = {}
    for pair in spec.split(","):
        name, _sep, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"cannot parse init {pair!r}; use var=0|1|*")
        init[name] = value if value == "*" else int(value)
    return init


def _load(args) -> tuple:
    text = Path(args.file).read_text()
    if args.boolean or args.file.endswith(".bp"):
        compiled = compile_source(text, init=_parse_init(getattr(args, "init", None)))
        prop = compiled.prop
        if getattr(args, "prop", None) is not None:
            prop = _parse_property(args.prop)
        return compiled.cpds, prop
    cpds = parse_cpds(text)
    return cpds, _parse_property(getattr(args, "prop", None))


def cmd_verify(args) -> int:
    if not getattr(args, "trace", None):
        return _run_verify(args)
    # --trace: record spans for the whole run and write the Chrome
    # trace-event JSON (open in chrome://tracing or Perfetto).  The
    # request span roots the flame chart: request → lane.run →
    # <lane>.level → saturation/replay/canonicalization.
    from repro.obs import trace
    from repro.obs.trace import write_chrome_trace

    trace.clear()
    trace.enable()
    try:
        with trace.span("verify.request", lane=args.lane):
            status = _run_verify(args)
    finally:
        trace.disable()
    recorded = trace.events()
    path = write_chrome_trace(args.trace, recorded)
    print(f"wrote trace: {path} ({len(recorded)} span(s))")
    return status


def _run_verify(args) -> int:
    from repro.reach.vectorized import resolve_backend

    cpds, prop = _load(args)
    config = EngineConfig(
        jobs=args.jobs, backend=args.backend, batched=not args.per_state
    )
    if args.lane == "auto":
        report = Cuba(cpds, prop, config=config).verify(max_rounds=args.max_rounds)
        if args.report:
            from repro.report import render_report

            print(render_report(report, cpds, prop))
            if args.witness:
                _print_witness(cpds, report.result)
            return {
                Verdict.SAFE: 0, Verdict.UNSAFE: 1, Verdict.UNKNOWN: 2
            }[report.verdict]
        print(f"FCR: {'holds' if report.fcr.holds else 'fails'}")
        if report.fcr.holds:
            # The symbolic lane has no replay backend; only the
            # explicit engine resolves the knob.
            print(f"backend: {resolve_backend(args.backend)}")
        print(f"winner: {report.winner}")
        print(f"kmax(Rk) = {report.bound_text('rk')}, "
              f"kmax(T(Rk)) = {report.bound_text('trk')}")
        result = report.result
    else:
        # Any registered lane (aliases included) runs through the one
        # generic driver — no per-lane branches here.
        lane = registry.canonical_lane(args.lane)
        if lane == "explicit":
            print(f"backend: {resolve_backend(args.backend)}")
        result = run_lane(
            lane, cpds, prop, max_rounds=args.max_rounds, config=config
        )
    print(result)
    if result.trace is not None:
        print(f"witness trace ({result.trace.n_contexts} contexts):")
        print(f"  {result.trace}")
    if args.witness:
        _print_witness(cpds, result)
    return {Verdict.SAFE: 0, Verdict.UNSAFE: 1, Verdict.UNKNOWN: 2}[result.verdict]


def _print_witness(cpds, result) -> None:
    """The ``--witness`` rendering: replay the counterexample through
    :func:`repro.reach.witness.validate_trace` and print it step by
    step — the guarantee that the reported path is a real execution."""
    from repro.reach.witness import validate_trace

    if result.verdict is not Verdict.UNSAFE:
        print("no witness: the property was not refuted")
        return
    if result.trace is None:
        print(
            "no witness trace recorded (this lane proves reachability "
            "without paths; rerun with --lane auto or --lane explicit)"
        )
        return
    trace = result.trace
    validate_trace(cpds, trace)  # raises on any illegal step
    print(
        f"witness: {len(trace)} step(s) across {trace.n_contexts} "
        "context(s), validated against the CPDS step semantics"
    )
    print(f"  start  {trace.initial}")
    for step in trace.steps:
        label = step.action.label or step.action.kind.value
        print(f"  T{step.thread + 1} {label:<12} → {step.state}")


def cmd_fcr(args) -> int:
    cpds, _prop = _load(args)
    report = check_fcr(cpds)
    print(report)
    for index, (finite, loop) in enumerate(
        zip(report.thread_finite, report.thread_has_loop)
    ):
        print(
            f"  thread {index + 1}: shallow reach "
            f"{'finite' if finite else 'infinite'}"
            f" (PSA {'has loops' if loop else 'loop-free'})"
        )
    return 0 if report.holds else 1


def cmd_table(args) -> int:
    cpds, _prop = _load(args)
    engine = ExplicitReach(cpds, track_traces=False)
    engine.ensure_level(args.levels)
    rows = []
    for k in range(args.levels + 1):
        rows.append(
            [
                k,
                " ".join(sorted(str(s) for s in engine.states_new_at(k))) or "·",
                " ".join(sorted(str(v) for v in engine.visible_new_at(k))) or "·",
            ]
        )
    print(render_table(["k", "Rk \\ Rk-1", "T(Rk) \\ T(Rk-1)"], rows))
    return 0


def cmd_bench(args) -> int:
    if args.json:
        from repro.bench.runner import main as bench_main

        forward = []
        if args.quick:
            forward.append("--quick")
        if args.rows:
            forward.extend(["--rows", args.rows])
        if args.out:
            forward.extend(["--out", args.out])
        if args.compare:
            forward.extend(["--compare", args.compare])
            forward.extend(["--tolerance", str(args.tolerance)])
        if args.merge_before:
            forward.extend(["--merge-before", args.merge_before])
        if args.jobs != 1:
            forward.extend(["--jobs", str(args.jobs)])
        if args.shards:
            forward.extend(["--shards", str(args.shards)])
        if args.backend != "auto":
            forward.extend(["--backend", args.backend])
        if args.phases:
            forward.append("--phases")
        return bench_main(forward)

    from repro.models.registry import runnable_benchmarks
    from repro.util.meter import measure

    wanted = set(args.rows.split(",")) if args.rows else None
    rows = []
    for benchmark in runnable_benchmarks():
        if wanted and benchmark.row.split("/")[0] not in wanted:
            continue
        cpds, prop = benchmark.build()
        verifier = Cuba(cpds, prop)
        outcome = measure(lambda: verifier.verify(max_rounds=benchmark.max_rounds))
        report = outcome.value
        rows.append(
            [
                benchmark.name,
                "yes" if report.fcr.holds else "no",
                report.verdict.value,
                report.bound_text("rk"),
                report.bound_text("trk"),
                f"{outcome.seconds:.2f}",
                f"{outcome.peak_mb:.1f}",
            ]
        )
    print(
        render_table(
            ["benchmark", "FCR", "verdict", "k(Rk)", "k(T(Rk))", "time(s)", "mem(MB)"],
            rows,
        )
    )
    return 0


def cmd_serve(args) -> int:
    from repro.obs.logs import get_logger, setup_logging
    from repro.service import AnalysisService, ServiceServer
    from repro.service.store import open_store

    setup_logging(args.log_format)
    log = get_logger("serve")
    store = open_store(
        args.store,
        max_snapshot_bytes=int(args.store_mb * 1024 * 1024),
        lease_ttl=args.lease_ttl,
    )
    if store.degraded:
        # Log-and-continue: a read-only store directory must not stop
        # the service from serving (uncached) verdicts.  /health
        # reports store_degraded=true while this mode is active.
        log.warning(
            "store unusable; serving in degraded store-less mode",
            extra={
                "fields": {"store": str(args.store), "reason": store.reason}
            },
        )
    service = AnalysisService(
        store, workers=args.workers, jobs=args.jobs, executor=args.executor
    )
    server = ServiceServer(service, host=args.host, port=args.port)
    server.run()
    return 0


def cmd_submit(args) -> int:
    from repro.service import ServiceClient

    text = Path(args.file).read_text()
    client = ServiceClient(host=args.host, port=args.port)
    kwargs = dict(
        property_spec=args.prop,
        engine=args.lane,
        max_rounds=args.max_rounds,
        wait=not args.no_wait,
    )
    if args.boolean or args.file.endswith(".bp"):
        response = client.submit(
            bp_text=text, bp_init=_parse_init(args.init) or None, **kwargs
        )
    else:
        response = client.submit(cpds_text=text, **kwargs)
    if args.no_wait:
        print(f"submitted: id={response['id']} status={response['status']}")
        print(
            f"poll with: cuba-status via GET http://{args.host}:{args.port}"
            f"/result?id={response['id']}"
        )
        return 0
    source = (
        "store hit"
        if response.get("cached")
        else "joined running analysis"
        if response.get("deduplicated")
        else "resumed from snapshot"
        if response.get("resumed")
        else "fresh run"
    )
    print(
        f"[{response['method']}] {response['verdict']} at k={response['bound']} "
        f"({source}): {response['message']}"
    )
    if response.get("witness"):
        print(f"witness: {response['witness']}")
    if response.get("trace"):
        print(f"trace: {response['trace']}")
    print(f"fingerprint: {response['fingerprint']}")
    return {"safe": 0, "unsafe": 1, "unknown": 2}[response["verdict"]]


def cmd_loadtest(args) -> int:
    import json

    from repro.service.loadtest import (
        compare_loadtest,
        latest_comparable_loadtest,
        run_loadtest,
        write_loadtest_json,
    )

    payload = run_loadtest(
        replicas=args.replicas.split(",") if args.replicas else None,
        spawn=args.spawn,
        store=args.store,
        duration=args.duration,
        concurrency=args.concurrency,
        quick=args.quick,
        max_rounds=args.max_rounds,
        label=args.label or "",
        seed=args.seed,
        executor=args.executor,
        jobs=args.jobs,
    )
    path = write_loadtest_json(payload, args.out or ".")
    totals = payload["totals"]
    print(f"wrote {path}")
    print(
        f"{totals['requests']} requests in {payload['elapsed']}s over "
        f"{payload['replicas']} replica(s): {totals['throughput_rps']} rps, "
        f"p50 {totals['p50_ms']}ms, p99 {totals['p99_ms']}ms, "
        f"{totals['failures']} failure(s)"
    )
    print(
        f"dedup-hit-rate {totals['dedup_hit_rate']}, store-hit-rate "
        f"{totals['store_hit_rate']}, resumes {totals['resumes']}, "
        f"client retries {totals['client_retries']} "
        f"(failovers {totals['client_failovers']}), "
        f"busy retries {totals['busy_retries']}, "
        f"leases {totals['lease']}"
    )
    print(
        f"cross-replica probes {totals['cross_replica_probes']}, "
        f"store hits {totals['cross_replica_store_hits']}"
    )
    status = 0
    if args.require_zero_failures and totals["failures"]:
        print(f"FAIL: {totals['failures']} request(s) failed", file=sys.stderr)
        status = 1
    if args.require_cross_replica_hit and not totals["cross_replica_store_hits"]:
        print(
            "FAIL: no cross-replica store hit observed (replicas are not "
            "sharing the store)",
            file=sys.stderr,
        )
        status = 1
    baseline_path = args.compare
    if baseline_path is None and args.compare_latest:
        # Committed baselines live at the repo root (like BENCH files),
        # independent of where this run's JSON was just written.
        found = latest_comparable_loadtest(payload, ".")
        if found is None:
            print("no comparable committed LOADTEST baseline; gate skipped")
        elif found == path:  # pragma: no cover - same-second stamp
            print("baseline is the run just written; gate skipped")
        else:
            baseline_path = str(found)
    if baseline_path:
        baseline = json.loads(Path(baseline_path).read_text())
        ok, messages = compare_loadtest(
            payload, baseline, tolerance=args.tolerance
        )
        print(f"compare against {baseline_path}:")
        for message in messages:
            print(f"  {message}")
        if not ok:
            status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cuba",
        description="Context-unbounded analysis of concurrent pushdown systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help=".cpds description or .bp Boolean program")
        p.add_argument("--boolean", action="store_true", help="treat input as a Boolean program")
        p.add_argument("--init", help="Boolean program initial values, e.g. x=*,y=1")
        p.add_argument("--property", dest="prop", help="safety property, e.g. shared:ERR")

    verify = sub.add_parser("verify", help="run the CUBA verifier")
    add_common(verify)
    verify.add_argument(
        "--lane",
        "--engine",
        dest="lane",
        default="auto",
        help="analysis lane: 'auto' (the Sec. 6 front-end) or any "
        f"registered lane name {registry.lane_names()} (aliases like "
        "'wk' accepted; --engine is the pre-lane spelling)",
    )
    verify.add_argument("--max-rounds", type=int, default=30)
    verify.add_argument(
        "--per-state",
        action="store_true",
        help="with --engine explicit: use the seed per-state frontier "
        "expansion instead of the sharded view-batched default",
    )
    verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run the explicit engine's whole advance — unique-view "
        "saturation and sharded context-tree replay — across N worker "
        "processes (default 1 = in-process; the symbolic engine ignores it)",
    )
    verify.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default="auto",
        help="replay arithmetic for the explicit engine: 'numpy' "
        "vectorizes the context-tree replay, 'python' forces the "
        "pure-int loop, 'auto' (default) picks numpy when installed; "
        "a pure execution knob — results are backend-independent",
    )
    verify.add_argument(
        "--report", action="store_true", help="print the full multi-section report"
    )
    verify.add_argument(
        "--witness",
        action="store_true",
        help="on a refuted property, validate the counterexample against "
        "the CPDS step semantics and print it step by step",
    )
    verify.add_argument(
        "--trace",
        metavar="FILE",
        help="record spans for the whole run and write Chrome trace-event "
        "JSON to FILE (open in chrome://tracing or Perfetto)",
    )
    verify.set_defaults(handler=cmd_verify)

    fcr = sub.add_parser("fcr", help="check finite context reachability")
    add_common(fcr)
    fcr.set_defaults(handler=cmd_fcr)

    table = sub.add_parser("table", help="print the Fig. 1 style reachability table")
    add_common(table)
    table.add_argument("--levels", type=int, default=6)
    table.set_defaults(handler=cmd_table)

    bench = sub.add_parser("bench", help="run the Table 2 benchmark suite")
    bench.add_argument("--rows", help="comma-separated row numbers, e.g. 1,5,9")
    bench.add_argument(
        "--json",
        action="store_true",
        help="run the BENCH perf-trajectory runner and write BENCH_<stamp>.json",
    )
    bench.add_argument(
        "--quick", action="store_true", help="with --json: smallest config per row"
    )
    bench.add_argument("--out", help="with --json: output directory (default: cwd)")
    bench.add_argument(
        "--compare",
        metavar="FILE",
        help="with --json: baseline BENCH file; exit 1 on perf regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="with --compare: allowed wall-time regression fraction (default 0.25)",
    )
    bench.add_argument(
        "--merge-before",
        metavar="FILE",
        help="with --json: graft a pre-PR BENCH file in as the 'before' mode",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="with --json: run the explicit lane's optimized mode with N "
        "worker processes for the whole advance (recorded in the payload; "
        "baselines only compare against a matching value)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=0,
        help="with --json: worker count for the replay-sharding 'shard' "
        "sub-mode (0 = its default of 2; recorded in the payload so "
        "mismatched shard counts are never gated against each other)",
    )
    bench.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default="auto",
        help="with --json: replay backend for the explicit lane "
        "(recorded in the payload; baselines only compare against a "
        "matching backend)",
    )
    bench.add_argument(
        "--phases",
        action="store_true",
        help="with --json: run one extra traced repetition per workload "
        "and record per-phase span timings in the entry's 'phases' field "
        "(compare ignores it)",
    )
    bench.set_defaults(handler=cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the persistent analysis service (JSON over HTTP)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--store",
        default="cuba-store.sqlite",
        help="path of the persistent verdict/snapshot store (sqlite)",
    )
    serve.add_argument(
        "--store-mb",
        type=float,
        default=64.0,
        help="snapshot size budget in MB; least-recently-used snapshots "
        "are evicted beyond it (verdicts are kept; blobs a replica is "
        "resuming from are lease-pinned and skipped)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=300.0,
        help="seconds a resume lease pins a snapshot blob against "
        "eviction; a crashed replica's lease expires after this and is "
        "reaped instead of wedging eviction forever",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="bounded analysis executor threads (concurrent engine runs)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per explicit engine's parallel advance "
        "(see `cuba verify --jobs`)",
    )
    serve.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="process",
        help="engine-run execution: 'process' dispatches each run to a "
        "pool of worker processes over the snapshot codec (default); "
        "'thread' runs engines inline on the service threads",
    )
    serve.add_argument(
        "--log-format",
        choices=["text", "json"],
        default="text",
        help="structured log rendering: human 'text' (default) or one "
        "JSON object per line; the per-request audit line is valid JSON "
        "in both",
    )
    serve.set_defaults(handler=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a verification request to a running service"
    )
    add_common(submit)
    submit.add_argument(
        "--lane",
        "--engine",
        dest="lane",
        default="auto",
        help="analysis lane (see `cuba verify --lane`); the service "
        "canonicalizes aliases before fingerprinting",
    )
    submit.add_argument("--max-rounds", type=int, default=30)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8765)
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="return the request id immediately instead of blocking for "
        "the verdict",
    )
    submit.set_defaults(handler=cmd_submit)

    loadtest = sub.add_parser(
        "loadtest",
        help="drive mixed traffic at 1..N service replicas and write a "
        "cuba-loadtest/1 JSON (p50/p99, dedup/store hit rates, retry and "
        "lease counters)",
    )
    loadtest.add_argument(
        "--replicas",
        help="comma-separated host:port list of already-running replicas "
        "(default: spawn fresh ones — see --spawn)",
    )
    loadtest.add_argument(
        "--spawn",
        type=int,
        default=2,
        help="without --replicas: launch N `cuba serve` subprocesses on "
        "ephemeral ports sharing ONE store file (default 2)",
    )
    loadtest.add_argument(
        "--store",
        help="with --spawn: shared store path (default: a temp file "
        "removed after the run)",
    )
    loadtest.add_argument(
        "--duration", type=float, default=10.0, help="traffic seconds (default 10)"
    )
    loadtest.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="client worker threads driving traffic (default 8)",
    )
    loadtest.add_argument(
        "--quick",
        action="store_true",
        help="registry-derived fast mix only (the CI smoke profile)",
    )
    loadtest.add_argument("--max-rounds", type=int, default=6)
    loadtest.add_argument("--label", help="free-form label stored in the payload")
    loadtest.add_argument("--seed", type=int, default=7)
    loadtest.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="with --spawn: replica engine-run execution mode "
        "(default thread — cheap spawn for short runs)",
    )
    loadtest.add_argument("--jobs", type=int, default=1)
    loadtest.add_argument("--out", help="output directory (default: cwd)")
    loadtest.add_argument(
        "--compare",
        metavar="FILE",
        help="baseline LOADTEST file; exit 1 on a calibrated throughput "
        "regression or any failed request",
    )
    loadtest.add_argument(
        "--compare-latest",
        action="store_true",
        help="pick the newest committed LOADTEST_*.json with a matching "
        "configuration as the baseline (skips the gate when none exists)",
    )
    loadtest.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="with --compare: allowed normalized-throughput drop (default 0.25)",
    )
    loadtest.add_argument(
        "--require-zero-failures",
        action="store_true",
        help="exit 1 if any request failed after client retries",
    )
    loadtest.add_argument(
        "--require-cross-replica-hit",
        action="store_true",
        help="exit 1 unless at least one cross-replica probe was answered "
        "from the shared store (proves the replicas share it)",
    )
    loadtest.set_defaults(handler=cmd_loadtest)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (CubaError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
