"""Human-readable verification reports.

Renders a :class:`~repro.cuba.verifier.CubaReport` — FCR analysis,
method race outcome, collapse bounds, verdict and witness trace — as the
multi-section text the CLI prints with ``--report``.
"""

from __future__ import annotations

from repro.core.property import Property
from repro.core.result import Verdict
from repro.cpds.cpds import CPDS
from repro.cuba.verifier import CubaReport


def render_report(report: CubaReport, cpds: CPDS, prop: Property) -> str:
    """Render a full verification report as text."""
    lines: list[str] = []
    title = f"CUBA verification report — {cpds.name or 'unnamed CPDS'}"
    lines.append(title)
    lines.append("=" * len(title))

    lines.append("")
    lines.append("Model")
    lines.append(f"  threads:        {cpds.n_threads}")
    lines.append(f"  shared states:  {len(cpds.shared_states)}")
    for index, pds in enumerate(cpds.threads):
        lines.append(
            f"  thread {index + 1}:       {pds.name or f'P{index + 1}'} "
            f"(|Σ|={len(pds.alphabet)}, |Δ|={len(pds.actions)})"
        )
    lines.append(f"  initial state:  {cpds.initial_state()}")
    lines.append(f"  property:       {prop.describe()}")

    lines.append("")
    lines.append("Finite context reachability (Sec. 5)")
    for index, (finite, loop) in enumerate(
        zip(report.fcr.thread_finite, report.fcr.thread_has_loop)
    ):
        verdict = "finite" if finite else "INFINITE"
        loops = "has loops" if loop else "loop-free"
        lines.append(f"  thread {index + 1}: shallow reach {verdict} (PSA {loops})")
    route = (
        "explicit engines: Alg. 3(T(Rk)) ∥ Scheme 1(Rk)"
        if report.fcr.holds
        else "symbolic engine: Alg. 3(T(Sk))"
    )
    lines.append(f"  -> {route}")

    lines.append("")
    lines.append("Outcome")
    lines.append(f"  verdict:        {report.verdict.value.upper()}")
    lines.append(f"  concluded by:   {report.winner}")
    if report.verdict is Verdict.SAFE:
        lines.append(f"  kmax (Rk):      {report.bound_text('rk')}")
        lines.append(f"  kmax (T(Rk)):   {report.bound_text('trk')}")
        lines.append("  the property holds for EVERY number of contexts")
    elif report.verdict is Verdict.UNSAFE:
        lines.append(f"  bug bound:      {report.result.bound} context(s)")
        if report.result.witness is not None:
            lines.append(f"  witness:        {report.result.witness}")
    else:
        lines.append(f"  explored up to: k = {report.result.bound}")
        lines.append(f"  reason:         {report.result.message}")

    trace = report.result.trace
    if trace is not None:
        lines.append("")
        lines.append(f"Witness trace ({trace.n_contexts} contexts, {len(trace)} steps)")
        current_thread: int | None = None
        for step in trace.steps:
            if step.thread != current_thread:
                lines.append(f"  -- context switch: thread {step.thread + 1} runs --")
                current_thread = step.thread
            label = step.action.label or step.action.kind.value
            lines.append(f"    {label:<12} -> {step.state}")
    return "\n".join(lines)
