#!/usr/bin/env python3
"""Writing and verifying your own concurrent Boolean programs (App. B).

Walks the full front-end pipeline on a small producer/consumer protocol:
tokens → AST → semantic analysis → CFG → CPDS → verification, then
refutes a deliberately broken variant and prints its counterexample.

Run:  python examples/boolean_programs.py
"""

from repro.bp import analyze, build_cfg, compile_source, parse_program, pretty_program, tokenize
from repro.cuba import Cuba, check_fcr

SAFE_PROTOCOL = """
// One-slot handoff: the producer fills the slot, the consumer drains it.
decl full, value, consumed;

void producer() {
  while (consumed) { skip; }
  atomic {
    assume (!full);
    value := 1;
    full := 1;
  }
}

void consumer() {
  decl got;
  while (!full) { skip; }
  atomic {
    got := value;
    full := 0;
  }
  assert (got);          // the slot never yields a stale value
  consumed := 1;
}

void main() {
  thread_create(&producer);
  thread_create(&consumer);
}
"""

# The broken variant reads the slot without waiting for `full`.
BROKEN_PROTOCOL = SAFE_PROTOCOL.replace("while (!full) { skip; }", "skip;")


def main() -> None:
    print("== Front-end pipeline ==")
    tokens = tokenize(SAFE_PROTOCOL)
    print(f"tokens: {len(tokens)}")
    program = parse_program(SAFE_PROTOCOL)
    print(f"functions: {', '.join(program.function_names)}")
    table = analyze(program)
    print(f"thread roots: {', '.join(table.thread_roots)}")
    for name in ("producer", "consumer"):
        cfg = build_cfg(program.function(name))
        print(f"CFG of {name}: {cfg.n_locations} locations")
    print()

    print("== Pretty-printed (round-trippable) source ==")
    print(pretty_program(program))

    print("== Verifying the safe protocol ==")
    compiled = compile_source(SAFE_PROTOCOL)
    print(f"CPDS: {compiled.cpds.n_threads} threads, "
          f"{sum(len(t.actions) for t in compiled.cpds.threads)} actions")
    print(check_fcr(compiled.cpds))
    report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=20)
    print(f"verdict: {report.verdict.value} "
          f"(kmax = {report.bound_text('trk')}/{report.bound_text('rk')})")
    print()

    print("== Verifying the broken protocol ==")
    compiled = compile_source(BROKEN_PROTOCOL)
    report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=20)
    print(f"verdict: {report.verdict.value} at context bound {report.result.bound}")
    trace = report.result.trace
    print(f"counterexample ({trace.n_contexts} contexts):")
    for step in trace.steps:
        tops = ", ".join(
            compiled.describe_symbol(stack[0]) if stack else "done"
            for stack in step.state.stacks
        )
        print(f"  T{step.thread + 1}: {compiled.describe_shared(step.state.shared)}  [{tops}]")


if __name__ == "__main__":
    main()
