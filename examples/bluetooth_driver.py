#!/usr/bin/env python3
"""The Windows NT Bluetooth driver case study (Table 2, rows 1-3).

Verifies the three driver versions: versions 1 and 2 harbor classic
concurrency bugs (flag check before taking a reference; reference
released before the I/O completes), which CUBA finds at small context
bounds, with witness traces.  Version 3 is correct — and unlike
context-bounded tools, CUBA *proves* it safe for unboundedly many
context switches.

Run:  python examples/bluetooth_driver.py
"""

from repro import Cuba
from repro.cuba import check_fcr
from repro.models.bluetooth import bluetooth, bluetooth_source
from repro.util import measure, render_table


def main() -> None:
    print("Boolean program for version 1 (1 stopper + 1 adder):")
    print(bluetooth_source(1, 1, 1))
    print()

    rows = []
    trace_to_show = None
    for version in (1, 2, 3):
        for stoppers, adders in ((1, 1), (1, 2), (2, 1)):
            compiled = bluetooth(version, stoppers, adders)
            fcr = check_fcr(compiled.cpds)
            verifier = Cuba(compiled.cpds, compiled.prop)
            outcome = measure(lambda: verifier.verify(max_rounds=25))
            report = outcome.value
            rows.append(
                [
                    f"Bluetooth-{version}",
                    f"{stoppers}+{adders}",
                    "yes" if fcr.holds else "no",
                    report.verdict.value,
                    report.result.bound if report.verdict.value == "unsafe" else "—",
                    report.bound_text("rk"),
                    report.bound_text("trk"),
                    f"{outcome.seconds:.2f}",
                ]
            )
            if version == 1 and (stoppers, adders) == (1, 1):
                trace_to_show = (compiled, report)

    print(
        render_table(
            ["program", "threads", "FCR", "verdict", "bug k", "k(Rk)", "k(T(Rk))", "time(s)"],
            rows,
        )
    )

    if trace_to_show is not None:
        compiled, report = trace_to_show
        trace = report.result.trace
        print()
        print(
            f"Version 1 witness ({trace.n_contexts} contexts — the TOCTOU race):"
        )
        print(f"  start: {compiled.describe_shared(trace.initial.shared)}")
        for step in trace.steps:
            q = step.state.shared
            tops = ", ".join(
                compiled.describe_symbol(stack[0]) if stack else "done"
                for stack in step.state.stacks
            )
            print(f"  T{step.thread + 1}: -> {compiled.describe_shared(q)}  [{tops}]")


if __name__ == "__main__":
    main()
