#!/usr/bin/env python3
"""Quickstart: the paper's running example (Fig. 1) end to end.

Builds the two-thread CPDS of Fig. 1, prints its context-bounded
reachability table (the right half of Fig. 1), shows the generator
machinery of Ex. 13/14, and runs the full CUBA verifier.

Run:  python examples/quickstart.py
"""

from repro import AlwaysSafe, Cuba, SharedStateReachability
from repro.cuba import algorithm3, check_fcr, compute_z, generator_analysis
from repro.models import fig1_cpds
from repro.reach import ExplicitReach
from repro.util import render_table


def print_reachability_table(levels: int = 6) -> None:
    """Regenerate the table of Fig. 1 (right)."""
    engine = ExplicitReach(fig1_cpds(), track_traces=False)
    engine.ensure_level(levels)
    rows = []
    for k in range(levels + 1):
        new_states = " ".join(sorted(str(s) for s in engine.states_new_at(k)))
        new_visible = " ".join(sorted(str(v) for v in engine.visible_new_at(k)))
        rows.append([k, new_states or "—", new_visible or "— (plateau)"])
    print(render_table(["k", "Rk \\ Rk-1", "T(Rk) \\ T(Rk-1)"], rows))


def main() -> None:
    cpds = fig1_cpds()
    print("== Fig. 1 CPDS ==")
    print(f"initial state: {cpds.initial_state()}")
    print()

    print("== Context-bounded reachability (Fig. 1, right) ==")
    print_reachability_table()
    print()

    print("== FCR check (Sec. 5 / Fig. 4) ==")
    print(check_fcr(cpds))
    print()

    print("== Generators (Ex. 13 / Ex. 14) ==")
    analysis = generator_analysis(cpds)
    z = compute_z(cpds)
    print(f"Z  (context-insensitive overapproximation): {len(z)} visible states")
    reachable_generators = analysis.intersect(z)
    print("G∩Z =", ", ".join(sorted(str(v) for v in reachable_generators)))
    print()

    print("== Alg. 3 over T(Rk) ==")
    result = algorithm3(cpds, AlwaysSafe(), engine="explicit")
    print(result)
    for rejected in result.stats["plateaus_rejected"]:
        missing = ", ".join(sorted(str(v) for v in rejected["missing"]))
        print(
            f"  plateau at k={rejected['k']} rejected: "
            f"generator(s) {missing} still unseen"
        )
    print()

    print("== Full Cuba front-end ==")
    report = Cuba(cpds, AlwaysSafe()).verify()
    print(f"verdict: {report.verdict.value} (winner: {report.winner})")
    print(f"kmax(Rk) = {report.bound_text('rk')}, kmax(T(Rk)) = {report.bound_text('trk')}")
    print()

    print("== Refutation with a witness trace ==")
    report = Cuba(cpds, SharedStateReachability({3})).verify()
    print(f"verdict: {report.verdict.value} at context bound {report.result.bound}")
    print(f"trace: {report.result.trace}")
    print()

    print("== Persistent analysis service: submit twice, hit the store ==")
    # The service layer (PR 5) content-addresses each problem
    # (CPDS + property + engine config), stores verdicts and engine
    # snapshots in sqlite, and deduplicates identical work: the first
    # submission runs an engine, the second is answered from the store
    # without touching one — METER proves it.  `cuba serve` wraps this
    # same core in a JSON-over-HTTP server; `cuba submit` is its client.
    import tempfile
    from pathlib import Path

    from repro import format_cpds
    from repro.service import AnalysisRequest, AnalysisService, AnalysisStore
    from repro.util.meter import scoped

    with tempfile.TemporaryDirectory() as workdir:
        service = AnalysisService(AnalysisStore(Path(workdir) / "store.sqlite"))
        request = AnalysisRequest(
            cpds_text=format_cpds(cpds), property_spec="shared:3", max_rounds=10
        )
        with scoped() as first_work:
            first = service.run(request)
        with scoped() as second_work:
            second = service.run(request)
        service.close()
    print(
        f"first submit:  {first['verdict']} at k={first['bound']} "
        f"(engine runs: {first_work.get('service.engine_runs', 0)})"
    )
    print(
        f"second submit: {second['verdict']} at k={second['bound']} "
        f"(engine runs: {second_work.get('service.engine_runs', 0)}, "
        f"store hit: {second['cached']})"
    )
    assert second["cached"] and second_work.get("service.engine_runs", 0) == 0
    print()

    print("== A second lane: WUBA, write-bounded instead of context-bounded ==")
    # Engines are *lanes* registered in repro.reach.registry; run_lane
    # drives any of them generically.  The wuba lane's level k holds the
    # states reachable with at most k shared-state WRITES (each level
    # closed under write-free computation), so the same Fig. 1 bug
    # surfaces at write bound 3 — and a (Wk) plateau, unlike (Rk), is a
    # full fixpoint.  On the CLI: `cuba verify file.cpds --lane wuba`
    # (aliases: rk/sk/wk).
    from repro.cuba.lanes import run_lane
    from repro.reach import registry

    print(f"registered lanes: {', '.join(registry.lane_names())}")
    applicable = registry.applicable_lanes(cpds, SharedStateReachability({3}))
    print(f"applicable to Fig. 1: {', '.join(applicable)}")
    result = run_lane("wuba", cpds, SharedStateReachability({3}), max_rounds=6)
    print(result)
    print()

    print("== Observability: spans, latency histograms, /metrics ==")
    # Tracing is off by default and free while off; flip it on and any
    # run records nested spans (request -> lane.run -> <lane>.level ->
    # saturation/replay), exportable as Chrome trace-event JSON for
    # chrome://tracing / Perfetto.  On the CLI:
    # `cuba verify file.cpds --trace out.json`.  Against a live
    # `cuba serve`: `POST /trace {"enabled": true}` toggles capture,
    # `GET /trace` exports, `GET /metrics` serves Prometheus text
    # (counters + per-lane request latency histograms), and every
    # submit emits one structured audit line
    # (`--log-format json` for machine-shippable logs).
    from repro.obs import trace
    from repro.obs.metrics import LATENCY
    from repro.obs.prometheus import render

    trace.clear()
    trace.enable()
    run_lane("explicit", cpds, SharedStateReachability({3}), max_rounds=6)
    trace.disable()
    spans = trace.take()
    names = sorted({span["name"] for span in spans})
    print(f"recorded {len(spans)} spans: {', '.join(names)}")
    p99 = LATENCY.percentile("store_transaction", 0.99, op="get")
    if p99 is not None:
        print(f"store get p99: {p99 * 1000:.2f}ms")
    scrape = render()  # the exact /metrics body
    print(f"/metrics exposition: {len(scrape.splitlines())} sample lines")
    print()

    print("== Multiprocess view saturation (jobs=N) ==")
    # Each frontier level's unique (thread, shared, stack) views are
    # independent, so the explicit engine can saturate them across a
    # pool of worker processes while replay and the seen-set stay in
    # the parent.  Levels, verdicts, and METER expansion counts are
    # identical to jobs=1; wall time drops on multi-core machines.
    # Execution knobs travel in one EngineConfig accepted by
    # scheme1_rk, Cuba, every engine, and the CLI:
    # `cuba verify file.cpds --lane explicit --jobs 4`.
    from repro.cuba import scheme1_rk
    from repro.reach import EngineConfig
    from repro.reach.parallel import pool_cache_clear

    result = scheme1_rk(cpds, AlwaysSafe(), config=EngineConfig(jobs=2))
    print(result)
    pool_cache_clear()  # shut the worker pool down at program end


if __name__ == "__main__":
    main()
