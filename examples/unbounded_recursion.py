#!/usr/bin/env python3
"""Programs beyond finite context reachability (Secs. 5-6).

Two benchmarks whose stacks pump *within a single context* — the
situation where explicit state enumeration is impossible and the
pushdown-store-automata engine earns its keep:

* the paper's Fig. 2 / K-Induction program (Ex. 8), on which the prior
  CBA+k-induction approach fails to terminate;
* Stefan-1 from Schwoon's thesis, scaled over thread counts.

Run:  python examples/unbounded_recursion.py
"""

from repro import GlobalState
from repro.core import AlwaysSafe
from repro.cuba import algorithm3, check_fcr, scheme1_rk
from repro.models import kinduction, stefan
from repro.models.kinduction import kinduction_source
from repro.reach import SymbolicReach
from repro.util import measure, render_table


def kinduction_demo() -> None:
    print("== K-Induction (the paper's Fig. 2, Ex. 8) ==")
    print(kinduction_source())
    cpds, prop = kinduction()

    report = check_fcr(cpds)
    print(report)
    print("-> explicit enumeration is impossible; Scheme 1(Rk) gives up:")
    result = scheme1_rk(cpds, AlwaysSafe(), max_rounds=5, max_states_per_context=2_000)
    print(f"   {result}")
    print()

    print("-> the symbolic engine handles it (Ex. 8's facts):")
    engine = SymbolicReach(cpds)
    engine.ensure_level(3)
    witness = GlobalState(1, ((4,), (9,)))
    print(f"   ⟨1|4,9⟩ ∈ R2: {engine.accepts(witness, 2)}")
    print(f"   ⟨1|4,9⟩ ∈ R1: {engine.accepts(witness, 1)}")
    deep = GlobalState(0, ((2, 4, 4, 4), (6,)))
    print(f"   unbounded recursion inside one context, ⟨0|2444,6⟩ ∈ R1: "
          f"{engine.accepts(deep, 1)}")

    result = algorithm3(cpds, prop, engine="symbolic", max_rounds=10)
    print(f"   Alg. 3(T(Sk)): {result}")
    print()


def stefan_demo() -> None:
    print("== Stefan-1 (Schwoon's thesis; Table 2 row 8) ==")
    rows = []
    for n in (2, 3, 4):
        cpds, prop = stefan(n)
        outcome = measure(
            lambda: algorithm3(cpds, prop, engine="symbolic", max_rounds=10)
        )
        result = outcome.value
        rows.append(
            [n, "no", result.verdict.value, result.bound,
             f"{outcome.seconds:.2f}", f"{outcome.peak_mb:.1f}"]
        )
    print(render_table(
        ["threads", "FCR", "verdict", "kmax", "time(s)", "mem(MB)"], rows
    ))
    print("(8 threads exhausts resources — so did the paper's run: '−OOM'.)")


if __name__ == "__main__":
    kinduction_demo()
    stefan_demo()
