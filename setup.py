"""Setup shim: enables `python setup.py develop` in offline environments
where pip's PEP-517 path is unavailable (no `wheel` package).

The library itself is stdlib-only; the ``[fast]`` extra pulls in numpy
for the vectorized replay backend (``backend="numpy"`` /
``backend="auto"``, see :mod:`repro.reach.vectorized`) — purely
optional, every code path falls back to the pure-int loops without it.
"""

from setuptools import find_packages, setup

setup(
    name="cuba-repro",
    version="0.8.0",
    description="Reproduction of CUBA: context-unbounded analysis of "
    "concurrent programs (PLDI 2018)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    extras_require={
        "fast": ["numpy>=1.24"],
    },
)
