#!/usr/bin/env python3
"""Standalone entry point for the BENCH perf-trajectory runner.

Usage (from the repo root)::

    python benchmarks/runner.py --quick            # CI smoke lane
    python benchmarks/runner.py                    # full Table 2 sweep
    python benchmarks/runner.py --quick --compare BENCH_<stamp>.json

Thin wrapper around :mod:`repro.bench.runner` (also reachable as
``cuba bench --json``); it only makes ``src/`` importable when the
package is not installed.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if SRC.is_dir() and str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.runner import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
