"""Shared infrastructure for the benchmark harnesses.

Each harness collects result rows into the session-wide sink; the tables
are printed in the terminal summary (after pytest-benchmark's own
timings), reproducing the paper's tables/figures as text.
"""

from __future__ import annotations

import pytest

from repro.util.table import render_table

_SINK: dict[str, dict] = {}


@pytest.fixture(scope="session")
def report_sink():
    """``sink(title, headers)`` returns a list to append rows to."""

    def get(title: str, headers):
        entry = _SINK.setdefault(title, {"headers": list(headers), "rows": []})
        return entry["rows"]

    return get


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, entry in _SINK.items():
        if not entry["rows"]:
            continue
        terminalreporter.write_sep("=", title)
        table = render_table(entry["headers"], entry["rows"])
        terminalreporter.write_line(table)
    _SINK.clear()
