"""Experiment E-sat — worklist ``post*`` engine vs the naive oracle.

For the smallest configuration of each Table 2 suite, saturate every
thread's initial configuration with the production worklist engine
(:func:`repro.pds.post_star`) and the sweep-until-fixpoint oracle
(:func:`repro.pds.post_star_naive`), reporting wall-clock time and the
:data:`repro.util.METER` work counters side by side.  The engine's
contract — strictly fewer rule applications — is asserted here as well
as in tier-1 (``tests/pds/test_saturation_meter.py``); this harness adds
the measured table to the terminal summary.

Marked ``quick``: this file is the CI benchmark smoke lane
(``pytest benchmarks -m quick``).
"""

import time

import pytest

from repro.models.registry import smallest_per_row
from repro.pds import PDSState, post_star, post_star_naive, psa_for_configs
from repro.pds.saturation import format_saturation_stats
from repro.util import scoped

BENCHES = smallest_per_row()


@pytest.mark.quick
@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.row)
def test_saturation_engine_vs_naive(bench, report_sink):
    rows = report_sink(
        "post* saturation — worklist engine vs naive oracle",
        [
            "program", "thread", "worklist rules", "naive rules",
            "ratio", "worklist t(ms)", "naive t(ms)", "detail",
        ],
    )
    cpds, _prop = bench.build()
    initial = cpds.initial_state()
    for index, pds in enumerate(cpds.threads):
        psa = psa_for_configs(pds, [PDSState(initial.shared, initial.stacks[index])])

        start = time.perf_counter()
        with scoped() as work:
            fast = post_star(pds, psa)
        fast_seconds = time.perf_counter() - start

        start = time.perf_counter()
        with scoped() as oracle_work:
            slow = post_star_naive(pds, psa)
        slow_seconds = time.perf_counter() - start

        fast_apps = work.get("post_star.rule_applications", 0)
        slow_apps = oracle_work.get("post_star_naive.rule_applications", 0)
        assert fast_apps < slow_apps, (bench.row, index)
        for shared in pds.shared_states:
            assert fast.tops(shared) == slow.tops(shared)

        rows.append(
            [
                bench.row,
                f"P{index + 1}",
                fast_apps,
                slow_apps,
                f"{slow_apps / max(fast_apps, 1):.1f}x",
                f"{fast_seconds * 1e3:.2f}",
                f"{slow_seconds * 1e3:.2f}",
                format_saturation_stats(work),
            ]
        )
