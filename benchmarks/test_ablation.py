"""Experiment E8 — ablations for the design choices DESIGN.md calls out.

* **Engine ablation**: Scheme 1 over explicit sets vs over pushdown
  store automata on FCR benchmarks — quantifies the paper's claim that
  "an explicit-state approach (provided FCR) is competitive and far
  easier to implement" (Sec. 6).
* **Generator-test ablation**: how many stuttering plateaus Alg. 3
  rejects before certifying convergence, and how large ``G∩Z`` is —
  the machinery that makes the visible-state sequence usable at all
  (without it, the first plateau would yield an unsound "safe").
  Restricted to the rows where Alg. 3 is the concluding method; on the
  Boolean-program rows the overapproximation ``Z`` retains unreachable
  generators and Alg. 3 alone would not terminate — the non-termination
  caveat the paper itself states, covered by Scheme 1 in the front-end.
"""

import pytest

from repro.core import AlwaysSafe, Verdict
from repro.cuba import algorithm3, scheme1_rk, scheme1_sk
from repro.models import TABLE2, fig1_cpds
from repro.util import measure

#: FCR-satisfying safe rows, smallest configurations.
EXPLICIT_VS_SYMBOLIC = [
    b for b in TABLE2
    if b.safe and b.fcr and b.config in ("1+1", "1•+2", "2•")
]


@pytest.mark.parametrize("bench", EXPLICIT_VS_SYMBOLIC, ids=lambda b: b.row)
def test_engine_ablation(bench, benchmark, report_sink):
    rows = report_sink(
        "Ablation — Scheme 1: explicit sets vs store automata (FCR rows)",
        ["program", "explicit t(s)", "symbolic t(s)", "slowdown", "k(Rk)", "k(Sk)"],
    )
    cpds, prop = bench.build()

    def run_both():
        explicit = measure(
            lambda: scheme1_rk(cpds, prop, max_rounds=bench.max_rounds)
        )
        symbolic = measure(
            lambda: scheme1_sk(cpds, prop, max_rounds=bench.max_rounds)
        )
        return explicit, symbolic

    explicit, symbolic = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert explicit.value.verdict is Verdict.SAFE
    assert symbolic.value.verdict is Verdict.SAFE
    rows.append(
        [
            bench.row,
            f"{explicit.seconds:.2f}",
            f"{symbolic.seconds:.2f}",
            f"{symbolic.seconds / max(explicit.seconds, 1e-9):.1f}x",
            explicit.value.bound,
            symbolic.value.bound,
        ]
    )


#: Rows on which Alg. 3's generator test certifies convergence.
GENERATOR_ROWS = [
    b for b in TABLE2
    if b.row in ("6/K-Induction", "7/Proc-2", "8/Stefan-1", "9/Dekker")
    and not b.skip_run
]


@pytest.mark.parametrize("bench", GENERATOR_ROWS, ids=lambda b: b.name)
def test_generator_ablation(bench, benchmark, report_sink):
    rows = report_sink(
        "Ablation — stuttering detection workload",
        ["program", "threads", "|Z|", "|G∩Z|", "plateaus rejected", "kmax"],
    )
    cpds, prop = bench.build()
    engine = "explicit" if bench.fcr else "symbolic"
    result = benchmark.pedantic(
        lambda: algorithm3(cpds, prop, engine=engine, max_rounds=bench.max_rounds),
        rounds=1,
        iterations=1,
    )
    assert result.verdict is Verdict.SAFE
    rows.append(
        [
            bench.row,
            bench.config,
            result.stats["Z"],
            result.stats["G∩Z"],
            len(result.stats["plateaus_rejected"]),
            result.bound,
        ]
    )


def test_fig1_stuttering_is_exercised(benchmark, report_sink):
    """Fig. 1 is the canonical stutterer: exactly one rejected plateau."""
    result = benchmark(
        lambda: algorithm3(fig1_cpds(), AlwaysSafe(), engine="explicit")
    )
    assert len(result.stats["plateaus_rejected"]) == 1
    assert result.stats["plateaus_rejected"][0]["k"] == 2


def test_set_representation_ablation(benchmark, report_sink):
    """The paper's Sec. 5 representation choice: extensional sets vs
    BDDs for the finite visible-state sets T(Rk).  At benchmark scale
    plain Python sets win on time; the BDD's O(1) canonicity-based
    equality is the trade-off the paper's discussion anticipates."""
    import time

    from repro.bdd import VisibleSetBDD
    from repro.models import bluetooth
    from repro.reach import ExplicitReach

    rows = report_sink(
        "Ablation — T(Rk) representation: extensional set vs BDD",
        ["store", "insert+dedup t(s)", "equality test", "members"],
    )
    compiled = bluetooth(3, 1, 1)
    engine = ExplicitReach(compiled.cpds, track_traces=False)
    engine.ensure_level(6)
    visibles = [
        (v.shared, *v.tops) for v in engine.visible_up_to()
    ] * 3  # repeated inserts exercise dedup

    def run_extensional():
        store: set = set()
        for row in visibles:
            store.add(row)
        return store

    def run_bdd():
        store = VisibleSetBDD.for_arity(3)
        for row in visibles:
            store.add(row)
        return store

    t0 = time.perf_counter()
    extensional = run_extensional()
    t_ext = time.perf_counter() - t0
    t0 = time.perf_counter()
    bdd_store = benchmark.pedantic(run_bdd, rounds=1, iterations=1)
    t_bdd = time.perf_counter() - t0

    assert len(bdd_store) == len(extensional)
    assert set(bdd_store) == extensional
    rows.append(["set()", f"{t_ext:.4f}", "O(n) compare", len(extensional)])
    rows.append(["BDD", f"{t_bdd:.4f}", "O(1) root compare", len(bdd_store)])
