"""Experiment E-bench — the BENCH perf-trajectory runner, smoke-tested.

Runs :mod:`repro.bench.runner` on a two-row subset in quick mode,
validates the ``cuba-bench/1`` payload schema (the contract ROADMAP.md
documents and CI's bench lane consumes), exercises the regression gate,
and asserts the memory discipline of this PR: the automaton and
saturation record classes are ``__slots__``-only — no stray per-instance
``__dict__`` on the objects the engines allocate by the thousand.

Marked ``quick``: part of the CI benchmark smoke lane
(``pytest benchmarks -m quick``).
"""

import json

import pytest

from repro.bench.runner import (
    compare_bench,
    merge_modes,
    run_suite,
    write_bench_json,
)

pytestmark = pytest.mark.quick


@pytest.fixture(scope="module")
def payload():
    return run_suite(quick=True, rows={"6", "9"}, max_rounds=4, repeats=1)


class TestRunnerPayload:
    def test_schema_and_metadata(self, payload):
        assert payload["schema"] == "cuba-bench/1"
        assert payload["quick"] is True
        assert payload["calibration_seconds"] > 0
        assert payload["python"]

    def test_workloads_cover_both_engines_and_micro(self, payload):
        lanes = {(w["name"], w["lane"]) for w in payload["workloads"]}
        names = {name for name, _ in lanes}
        assert any(name.startswith("6/") for name in names)
        assert any(name.startswith("9/") for name in names)
        assert ("9/Dekker [2•]", "explicit") in lanes  # Dekker satisfies FCR
        assert any(lane == "canonical-micro" for _, lane in lanes)

    def test_modes_record_time_and_meter(self, payload):
        for workload in payload["workloads"]:
            for mode, record in workload["modes"].items():
                assert record["seconds"] >= 0, (workload["name"], mode)
                assert isinstance(record["meter"], dict)
            if workload["lane"] == "symbolic":
                meter = workload["modes"]["optimized"]["meter"]
                assert meter.get("symbolic.expansions", 0) > 0
                # Batching invariant, persisted: never more saturations
                # than unique frontier views.
                assert meter["symbolic.expansions"] <= meter.get(
                    "symbolic.level_unique_views", 0
                )

    def test_explicit_lane_runs_batched_vs_per_state_pair(self, payload):
        """The explicit lane's optimized mode is the sharded engine and
        its meters carry the one-saturation-per-unique-view proof; the
        legacy mode is the per-state oracle (one saturation per view)."""
        explicit = [w for w in payload["workloads"] if w["lane"] == "explicit"]
        assert explicit, "quick suite must include explicit-lane rows"
        for workload in explicit:
            meter = workload["modes"]["optimized"]["meter"]
            unique = meter.get("explicit.level_unique_views", 0)
            assert unique > 0
            assert meter.get("explicit.level_views", 0) >= unique
            # Every unique view per level is one saturation or one
            # cross-level cache hit — never more.
            assert (
                meter.get("explicit.expansions", 0)
                + meter.get("explicit.context_cache_hits", 0)
                == unique
            )
            legacy = workload["modes"]["legacy"]["meter"]
            # The per-state oracle never shards: no view counters.
            assert "explicit.level_unique_views" not in legacy

    def test_totals_sum_workloads(self, payload):
        total = sum(w["modes"]["optimized"]["seconds"] for w in payload["workloads"])
        assert payload["totals"]["optimized_seconds"] == pytest.approx(
            total, abs=1e-3
        )

    def test_written_file_round_trips(self, payload, tmp_path):
        path = write_bench_json(payload, tmp_path)
        assert path.name == f"BENCH_{payload['stamp']}.json"
        assert json.loads(path.read_text())["totals"] == payload["totals"]


class TestRegressionGate:
    def test_self_comparison_passes(self, payload):
        ok, messages = compare_bench(payload, payload, tolerance=0.25)
        assert ok, messages

    @staticmethod
    def _scaled(payload, factor):
        scaled = json.loads(json.dumps(payload))
        for workload in scaled["workloads"]:
            for record in workload["modes"].values():
                record["seconds"] *= factor
        return scaled

    def test_regression_detected(self, payload):
        slower = self._scaled(payload, 2.0)
        ok, messages = compare_bench(slower, payload, tolerance=0.25)
        assert not ok
        assert any("REGRESSION" in m for m in messages)

    def test_calibration_normalizes_machine_speed(self, payload):
        # Same workload numbers on a machine measured 2x slower overall
        # must NOT read as a regression once normalized.
        slower_machine = self._scaled(payload, 2.0)
        slower_machine["calibration_seconds"] *= 2.0
        ok, _messages = compare_bench(slower_machine, payload, tolerance=0.25)
        assert ok

    def test_extra_workloads_compare_shared_only(self, payload):
        """A same-config baseline with extra workloads must not skew the
        gate: only shared workloads are summed."""
        bigger = json.loads(json.dumps(payload))
        bigger["workloads"].append(
            {
                "name": "999/Imaginary [9+9]",
                "lane": "symbolic",
                "modes": {"optimized": {"seconds": 1e6, "meter": {}}},
            }
        )
        ok, messages = compare_bench(payload, bigger, tolerance=0.25)
        assert ok, messages
        assert any("excluded" in m for m in messages)
        # And a regression within the shared set is still caught.
        ok, _messages = compare_bench(self._scaled(payload, 2.0), bigger)
        assert not ok

    def test_per_lane_regression_detected(self, payload):
        """A regression confined to one lane must fail the gate even if
        another lane's (inflated) win keeps the overall total flat.
        Times are set synthetically so every lane clears the gate's
        noise floor regardless of how fast this machine ran the rows."""
        lanes = sorted({w["lane"] for w in payload["workloads"]})
        assert "explicit" in lanes, "quick suite must include explicit rows"
        baseline = json.loads(json.dumps(payload))
        for workload in baseline["workloads"]:
            for record in workload["modes"].values():
                record["seconds"] = 1.0
        victim = "explicit"
        skewed = json.loads(json.dumps(baseline))
        for workload in skewed["workloads"]:
            # Victim lane 2x slower; the rest 2x faster — the summed
            # total stays within tolerance, only the lane gate can fire.
            factor = 2.0 if workload["lane"] == victim else 0.5
            for record in workload["modes"].values():
                record["seconds"] *= factor
        ok, messages = compare_bench(skewed, baseline, tolerance=0.25)
        assert not ok
        assert any(f"lane {victim}" in m and "REGRESSION" in m for m in messages)

    def test_lane_gate_skips_noise_floor_lanes(self, payload):
        """Millisecond lanes are excluded from the per-lane gate (they
        still count toward the gated overall total)."""
        tiny = json.loads(json.dumps(payload))
        for workload in tiny["workloads"]:
            for record in workload["modes"].values():
                record["seconds"] = 1e-4
        ok, messages = compare_bench(tiny, tiny, tolerance=0.25)
        assert ok
        assert any("not gated" in m for m in messages)

    def test_mismatched_configuration_refuses_comparison(self, payload):
        """A full-run baseline must not silently neutralize the quick
        gate: mismatched configurations fail loudly."""
        full = json.loads(json.dumps(payload))
        full["quick"] = False
        ok, messages = compare_bench(payload, full, tolerance=0.25)
        assert not ok
        assert any("NOT COMPARABLE" in m for m in messages)

    def test_latest_comparable_baseline_skips_mismatched(self, payload, tmp_path):
        from repro.bench.runner import latest_comparable_baseline

        matching = json.loads(json.dumps(payload))
        matching["stamp"] = "20000101T000000Z"
        write_bench_json(matching, tmp_path)
        full = json.loads(json.dumps(payload))
        full["quick"] = False
        full["stamp"] = "20990101T000000Z"  # newer but incomparable
        write_bench_json(full, tmp_path)
        chosen = latest_comparable_baseline(payload, tmp_path)
        assert chosen is not None and "20000101" in chosen.name
        assert latest_comparable_baseline(full | {"max_rounds": 99}, tmp_path) is None

    def test_merge_before_grafts_mode(self, payload):
        other = json.loads(json.dumps(payload))
        merged = merge_modes(payload, other, "before")
        assert merged == len(payload["workloads"])
        assert payload["totals"]["before_seconds"] > 0
        assert "speedup_vs_before" in payload["totals"]


class TestLaneRegistryIntegration:
    def test_wuba_rows_present_for_applicable_models(self, payload):
        """Dekker (row 9) satisfies WCR, so the default engine set must
        produce wuba workloads for it; row 6 (K-Induction) fails WCR
        and must not."""
        wuba = {w["name"] for w in payload["workloads"] if w["lane"] == "wuba"}
        assert any(name.startswith("9/") for name in wuba)
        assert not any(name.startswith("6/") for name in wuba)

    def test_wuba_rows_carry_lane_meters(self, payload):
        for workload in payload["workloads"]:
            if workload["lane"] != "wuba":
                continue
            meter = workload["modes"]["optimized"]["meter"]
            assert meter.get("wuba.expansions", 0) > 0

    def test_alias_spelled_baseline_still_matches(self, payload):
        """A baseline file that spelled a lane by a registry alias
        (``wk``/``rk``/``sk``) must keep matching the canonical names —
        comparable_configs + workload matching go through
        ``_lane_token``."""
        aliased = json.loads(json.dumps(payload))
        spellings = {"wuba": "wk", "explicit": "rk", "symbolic": "sk"}
        for workload in aliased["workloads"]:
            workload["lane"] = spellings.get(workload["lane"], workload["lane"])
        ok, messages = compare_bench(payload, aliased, tolerance=0.25)
        assert ok, messages
        # Every workload matched: nothing excluded, no absent lanes.
        assert not any("excluded" in m or "absent" in m for m in messages)

    def test_new_lane_reported_not_silently_ungated(self, payload):
        """A lane with no baseline yet (first run after it lands) is
        called out in the gate report instead of vanishing."""
        assert any(w["lane"] == "wuba" for w in payload["workloads"])
        pre_lane = json.loads(json.dumps(payload))
        pre_lane["workloads"] = [
            w for w in pre_lane["workloads"] if w["lane"] != "wuba"
        ]
        ok, messages = compare_bench(payload, pre_lane, tolerance=0.25)
        assert ok, messages
        assert any(
            "lane wuba" in m and "absent from the baseline" in m for m in messages
        )
        # The mirror case: a lane that vanished from the current run.
        ok, messages = compare_bench(pre_lane, payload, tolerance=0.25)
        assert ok, messages
        assert any(
            "lane wuba" in m and "missing from the current run" in m
            for m in messages
        )


class TestJobsField:
    def test_jobs_recorded_and_default(self, payload):
        """The payload records its saturation worker count; absent means
        the pre-PR 4 serial default."""
        assert payload["jobs"] == 1

    def test_mismatched_jobs_refuses_comparison(self, payload):
        """A jobs=2 run must not be gated against a serial baseline (and
        vice versa): wall times carry worker startup/IPC and scale with
        core count."""
        parallel = json.loads(json.dumps(payload))
        parallel["jobs"] = 2
        ok, messages = compare_bench(parallel, payload, tolerance=0.25)
        assert not ok
        assert any("NOT COMPARABLE" in m for m in messages)
        # Pre-PR 4 baselines lack the field entirely: treated as jobs=1.
        legacy = json.loads(json.dumps(payload))
        del legacy["jobs"]
        ok, messages = compare_bench(payload, legacy, tolerance=0.25)
        assert ok, messages

    def test_parallel_mode_runs_explicit_lanes_only(self):
        """The opt-in ``parallel`` mode (jobs=2 saturation) measures the
        explicit lanes and skips symbolic/canonical-micro, recording the
        worker count and a parallel-vs-serial ratio per entry."""
        from repro.reach.parallel import pool_cache_clear

        try:
            payload = run_suite(
                quick=True,
                rows={"9"},
                modes=("optimized", "parallel"),
                max_rounds=3,
                repeats=1,
            )
        finally:
            pool_cache_clear()
        by_lane = {w["lane"]: w for w in payload["workloads"]}
        explicit = by_lane["explicit"]
        assert explicit["modes"]["parallel"]["jobs"] == 2
        assert explicit["modes"]["parallel"]["seconds"] > 0
        assert "parallel_speedup" in explicit
        assert "parallel" not in by_lane["symbolic"]["modes"]
        assert "parallel" not in by_lane["canonical-micro"]["modes"]
        # Both modes reach the same verdict at the same bound.
        assert (
            explicit["modes"]["parallel"].get("verdict")
            == explicit["modes"]["optimized"].get("verdict")
        )


class TestShardMode:
    def test_shard_mode_runs_the_sharded_advance(self):
        """The ``shard`` sub-mode measures the fully sharded advance
        (saturation in-process, member x edge replay on the pool) on
        the explicit lanes only, with its own serial-vs-sharded ratio."""
        from repro.reach.parallel import pool_cache_clear

        try:
            payload = run_suite(
                quick=True,
                rows={"9"},
                modes=("optimized", "shard"),
                max_rounds=3,
                repeats=1,
            )
        finally:
            pool_cache_clear()
        by_lane = {w["lane"]: w for w in payload["workloads"]}
        explicit = by_lane["explicit"]
        assert explicit["modes"]["shard"]["jobs"] == 2
        assert explicit["modes"]["shard"]["seconds"] > 0
        assert "shard_speedup" in explicit
        assert "shard" not in by_lane["symbolic"]["modes"]
        assert "shard" not in by_lane["canonical-micro"]["modes"]
        assert (
            explicit["modes"]["shard"].get("verdict")
            == explicit["modes"]["optimized"].get("verdict")
        )
        # The sharded replay actually fanned out worker units.
        meter = explicit["modes"]["shard"]["meter"]
        assert meter.get("explicit.replay_shards", 0) > 0

    def test_mismatched_shards_refuses_comparison(self, payload):
        """A --shards run is a different hardware story: not gated
        against a serial baseline.  Absent means 0 (pre-PR 6 files stay
        comparable when the knob is unused)."""
        sharded = json.loads(json.dumps(payload))
        sharded["shards"] = 4
        ok, messages = compare_bench(sharded, payload, tolerance=0.25)
        assert not ok
        assert any("NOT COMPARABLE" in m for m in messages)
        legacy = json.loads(json.dumps(payload))
        del legacy["shards"]
        ok, messages = compare_bench(payload, legacy, tolerance=0.25)
        assert ok, messages


class TestBackendField:
    def test_backend_recorded_and_resolved(self, payload):
        """The payload records the *resolved* replay backend — never the
        ``auto`` alias, which would make comparability depend on what the
        reader has installed."""
        from repro.reach.vectorized import numpy_available

        expected = "numpy" if numpy_available() else "python"
        assert payload["backend"] == expected

    def test_forced_python_recorded(self):
        sub = run_suite(
            quick=True, rows={"9"}, modes=("optimized",),
            max_rounds=2, repeats=1, backend="python",
        )
        assert sub["backend"] == "python"

    def test_mismatched_backend_refuses_comparison(self, payload):
        """A vectorized run must not be gated against a pure-python
        baseline (or vice versa): the whole point of the backend is a
        different wall-time story.  Pre-PR 8 baselines lack the field
        entirely: treated as python."""
        other = json.loads(json.dumps(payload))
        other["backend"] = "numpy" if payload["backend"] == "python" else "python"
        ok, messages = compare_bench(payload, other, tolerance=0.25)
        assert not ok
        assert any("NOT COMPARABLE" in m for m in messages)
        legacy = json.loads(json.dumps(payload))
        del legacy["backend"]
        current = json.loads(json.dumps(payload))
        current["backend"] = "python"
        ok, messages = compare_bench(current, legacy, tolerance=0.25)
        assert ok, messages


class TestMemoryDiscipline:
    """The satellite's memory assertion: hot-path records are slotted."""

    SLOTTED = [
        "repro.automata.nfa:NFA",
        "repro.automata.canonical:CanonicalNFA",
        "repro.automata.canonical:Signature",
        "repro.automata.intern:SymbolTable",
        "repro.pds.saturation:PostStarEngine",
        "repro.pds.action:Action",
        "repro.reach.symbolic:SymbolicState",
    ]

    @pytest.mark.parametrize("spec", SLOTTED)
    def test_no_instance_dict(self, spec):
        module_name, class_name = spec.split(":")
        module = __import__(module_name, fromlist=[class_name])
        cls = getattr(module, class_name)
        assert "__dict__" not in dir(cls) or not hasattr(
            _instantiate(cls), "__dict__"
        ), f"{spec} instances carry a __dict__ — __slots__ chain is broken"

    def test_nfa_instance_rejects_adhoc_attributes(self):
        from repro.automata.nfa import NFA

        nfa = NFA(initial=[0])
        with pytest.raises(AttributeError):
            nfa.scratch = 1  # type: ignore[attr-defined]


def _instantiate(cls):
    from repro.automata.canonical import CanonicalNFA, Signature
    from repro.automata.intern import SymbolTable
    from repro.automata.nfa import NFA
    from repro.pds.action import Action
    from repro.pds.pds import PDS
    from repro.pds.saturation import PostStarEngine
    from repro.reach.symbolic import SymbolicState

    if cls is NFA:
        return NFA(initial=[0])
    if cls is CanonicalNFA:
        return CanonicalNFA()
    if cls is Signature:
        return Signature((("a",), (False,), ((0,),)), 0)
    if cls is SymbolTable:
        return SymbolTable(["a"])
    if cls is PostStarEngine:
        pds = PDS(0)
        pds.rule(0, "a", 0, ["a"])
        return PostStarEngine(pds)
    if cls is Action:
        return Action(0, ("a",), 0, ("a",))
    if cls is SymbolicState:
        return SymbolicState(0, (NFA(initial=[0]),), (None,))
    raise AssertionError(f"no instantiation recipe for {cls}")
