#!/usr/bin/env python3
"""CI gate: a multi-core runner must show a real parallel win.

Usage: ``python benchmarks/check_parallel_speedup.py BENCH.json [...]``
(paths or globs; the newest payload carrying a parallel/shard mode is
checked).

On a runner with >= 2 CPUs, at least one multi-core-eligible workload
must show ``parallel_speedup > 1.0`` or ``shard_speedup > 1.0`` —
otherwise the jobs=N machinery is overhead, not parallelism, and the
lane fails.  On a single-core runner (or a payload recorded on one) the
gate skips: there is nothing to win there, only IPC overhead, and
failing would just punish the hardware.

Exit codes: 0 pass/skip, 1 no speedup on eligible hardware, 2 usage or
payload problems (no files, no parallel/shard modes recorded).
"""

import glob
import json
import os
import sys


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_parallel_speedup.py BENCH.json [...]", file=sys.stderr)
        return 2
    paths = sorted(
        {path for pattern in argv[1:] for path in glob.glob(pattern)}
    )
    if not paths:
        print(f"no BENCH files match {argv[1:]}", file=sys.stderr)
        return 2
    candidates = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if any(
            key in workload
            for workload in payload.get("workloads", [])
            for key in ("parallel_speedup", "shard_speedup")
        ):
            candidates.append((payload.get("stamp", ""), path, payload))
    if not candidates:
        print(
            "no payload records a parallel or shard mode — run the bench "
            "runner with --modes ...,parallel,shard first",
            file=sys.stderr,
        )
        return 2
    _stamp, path, payload = max(candidates)
    cores = payload.get("cpu_count") or os.cpu_count() or 1
    if cores < 2:
        print(
            f"{path}: recorded on {cores} CPU(s) — parallel speedup is "
            "not expected there, skipping the gate"
        )
        return 0
    best = (0.0, None, None)
    for workload in payload.get("workloads", []):
        for key in ("parallel_speedup", "shard_speedup"):
            ratio = workload.get(key)
            if ratio is not None and ratio > best[0]:
                best = (ratio, workload.get("name"), key)
    ratio, name, key = best
    if ratio > 1.0:
        print(f"{path}: {name} {key}={ratio} on {cores} CPUs — pass")
        return 0
    print(
        f"{path}: no workload beats serial on {cores} CPUs "
        f"(best {key}={ratio} on {name}) — the jobs=N path is overhead, "
        "not parallelism",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
