"""Experiments E3/E4 — Figure 1's reachability table and Figure 3's Z.

Regenerates the ``Rk \\ Rk−1`` / ``T(Rk) \\ T(Rk−1)`` table for the
running example, asserts it matches the paper cell by cell, and times
the explicit engine computing it.  Also reproduces the Fig. 3 finite
abstraction and the Ex. 13 set ``Z``.
"""

from repro.cpds import GlobalState, VisibleState
from repro.cuba import compute_z
from repro.models import fig1_cpds
from repro.pds import EMPTY
from repro.reach import ExplicitReach


def gs(shared, stack1, stack2):
    return GlobalState(shared, (tuple(stack1), tuple(stack2)))


def vs(shared, *tops):
    return VisibleState(shared, tuple(tops))


PAPER_LEVELS = [
    {gs(0, [1], [4])},
    {gs(1, [2], [4]), gs(0, [1], [])},
    {gs(2, [2], [5]), gs(1, [2], []), gs(3, [2], [4, 6])},
    {gs(0, [1], [4, 6]), gs(1, [2], [4, 6])},
    {gs(0, [1], [6]), gs(2, [2], [5, 6]), gs(3, [2], [4, 6, 6])},
    {gs(0, [1], [4, 6, 6]), gs(1, [2], [4, 6, 6]), gs(1, [2], [6])},
    {gs(0, [1], [6, 6]), gs(2, [2], [5, 6, 6]), gs(3, [2], [4, 6, 6, 6])},
]

PAPER_Z = {
    vs(0, 1, 4), vs(1, 2, 4), vs(2, 2, 5), vs(3, 2, 4),
    vs(0, 1, EMPTY), vs(1, 2, EMPTY), vs(0, 1, 6), vs(1, 2, 6),
}


def test_fig1_reachability_table(benchmark, report_sink):
    rows = report_sink(
        "Figure 1 — reachability table (regenerated)",
        ["k", "Rk \\ Rk-1", "T(Rk) \\ T(Rk-1)"],
    )

    def explore():
        engine = ExplicitReach(fig1_cpds(), track_traces=False)
        engine.ensure_level(6)
        return engine

    engine = benchmark(explore)
    for k, expected in enumerate(PAPER_LEVELS):
        assert engine.states_new_at(k) == expected, f"R{k}"
        rows.append(
            [
                k,
                " ".join(sorted(str(s) for s in engine.states_new_at(k))),
                " ".join(sorted(str(v) for v in engine.visible_new_at(k))) or "(plateau)",
            ]
        )


def test_fig3_overapproximation_z(benchmark, report_sink):
    rows = report_sink("Figure 3 / Ex. 13 — context-insensitive Z", ["Z member"])
    z = benchmark(lambda: compute_z(fig1_cpds()))
    assert z == PAPER_Z
    for visible in sorted(z, key=str):
        rows.append([str(visible)])
