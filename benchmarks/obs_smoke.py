#!/usr/bin/env python3
"""CI ``obs-smoke`` acceptance driver: the observability surface end to
end against a real ``cuba serve`` subprocess.

Usage (from the repo root)::

    python benchmarks/obs_smoke.py --out obs-out

The script

1. spawns ``cuba serve --log-format json`` on an ephemeral port,
2. turns span capture on over HTTP (``POST /trace``),
3. submits a quick workload twice (fresh run, then store hit),
4. scrapes ``/metrics`` and re-parses it with the strict
   :func:`repro.obs.prometheus.parse_text` — any malformed line fails
   the lane — asserting a nonzero per-lane
   ``cuba_service_request_seconds`` histogram,
5. exports the Chrome trace (``GET /trace``) into ``--out`` as the CI
   artifact and checks the expected span names arrived, and
6. checks the server's stderr carried one JSON audit line per submit.

Exit codes: 0 all checks pass, 1 an observability check failed,
2 environment problems (server never became healthy).
"""

import argparse
import http.client
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if SRC.is_dir() and str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.cpds import format_cpds  # noqa: E402
from repro.errors import ServiceError  # noqa: E402
from repro.models import fig1_cpds  # noqa: E402
from repro.obs.prometheus import parse_text  # noqa: E402
from repro.service import ServiceClient  # noqa: E402


def _raw(port: int, method: str, path: str, payload: dict | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _check(condition: bool, label: str) -> bool:
    print(f"{'ok' if condition else 'FAIL'}: {label}")
    return condition


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="obs-out", help="artifact directory (trace JSON)"
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")

    failures = 0
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as scratch:
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", str(port),
                "--store", str(Path(scratch) / "store.sqlite"),
                "--log-format", "json",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            client = ServiceClient(port=port, timeout=60)
            for _ in range(200):
                try:
                    client.health()
                    break
                except ServiceError:
                    time.sleep(0.05)
            else:
                print("cuba serve never became healthy", file=sys.stderr)
                return 2

            status, body = _raw(port, "POST", "/trace", {"enabled": True})
            failures += not _check(
                status == 200 and json.loads(body)["tracing"] is True,
                "POST /trace enables span capture",
            )

            fig1 = format_cpds(fig1_cpds())
            first = client.submit(
                fig1, property_spec="shared:3", engine="explicit", max_rounds=10
            )
            second = client.submit(
                fig1, property_spec="shared:3", engine="explicit", max_rounds=10
            )
            failures += not _check(
                first["verdict"] == second["verdict"] == "unsafe",
                "both submits verdict unsafe",
            )
            failures += not _check(
                not first["cached"] and second["cached"],
                "fresh run then store hit",
            )
            failures += not _check(
                first["engine_seconds"] >= 0.0
                and first["queue_seconds"] >= 0.0,
                "response separates engine_seconds and queue_seconds",
            )

            # /metrics must be strictly parseable Prometheus text with a
            # populated per-lane request histogram.
            scrape = client.metrics()
            (out / "metrics.txt").write_text(scrape)
            try:
                samples = parse_text(scrape)
            except ValueError as bad:
                print(f"FAIL: /metrics is not valid Prometheus: {bad}")
                samples = {}
                failures += 1
            request_counts = samples.get(
                "cuba_service_request_seconds_count", {}
            )
            by_lane = {
                dict(labels).get("lane"): value
                for labels, value in request_counts.items()
            }
            failures += not _check(
                sum(by_lane.values()) >= 2 and all(by_lane),
                f"per-lane request histogram populated ({by_lane})",
            )
            failures += not _check(
                any(name.endswith("_total") for name in samples),
                "METER counters exported alongside histograms",
            )

            # The Chrome trace artifact: request → engine phases.
            status, body = _raw(port, "GET", "/trace")
            trace_path = out / "obs_smoke_trace.json"
            trace_path.write_bytes(body)
            doc = json.loads(body)
            names = {event["name"] for event in doc["traceEvents"]}
            failures += not _check(
                status == 200
                and {"service.request", "service.engine_run", "lane.run"}
                <= names
                and any(name.endswith(".level") for name in names),
                f"trace artifact has request/engine/level spans "
                f"({len(doc['traceEvents'])} events -> {trace_path})",
            )
            # The default serve executor is the process pool, so the
            # fresh run's engine spans were recorded in a worker and
            # adopted by the parent — the trace must show both pids.
            pids = {event["pid"] for event in doc["traceEvents"]}
            failures += not _check(
                "executor.dispatch" in names and len(pids) >= 2,
                f"worker spans re-parented across processes (pids={pids})",
            )

            client.shutdown()
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
            stderr = server.stderr.read() if server.stderr else ""

        audits = []
        for line in stderr.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("logger") == "cuba.audit":
                audits.append(record)
        failures += not _check(
            len(audits) == 2
            and all(record.get("fingerprint") for record in audits)
            and [record.get("store") for record in audits] == ["miss", "hit"],
            f"one JSON audit line per submit ({len(audits)} found)",
        )

    if failures:
        print(f"{failures} observability check(s) failed", file=sys.stderr)
        return 1
    print("obs smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
