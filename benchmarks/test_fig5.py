"""Experiment E2 — Figure 5: Cuba vs the context-bounded baseline.

The paper plots Cuba against JMoped (runtime left, memory right) on
suites 1–5 and 9.  JMoped is a Java/BDD tool unavailable offline; per
DESIGN.md §4 the substitute is our own implementation of the same
algorithm JMoped uses — Qadeer/Rehof context-bounded exploration over
pushdown store automata — run, as the paper does, "with the same context
bound at which Cuba terminates".

The series printed at the end are the scatter-plot coordinates.  The
reproduction target is the *shape*: comparable resources on unsafe
instances (both stop at the bug), and Cuba additionally proving safety
on the safe ones — with the explicit engine (available under FCR)
typically cheaper than the PSA baseline, the paper's "an explicit-state
approach is competitive" takeaway.

One configuration per suite (the smallest) keeps the PSA baseline's
runtime tractable; the paper's larger configurations change the
constants, not the comparison's shape.
"""

import pytest

from repro.core import Verdict
from repro.cuba import Cuba, context_bounded_analysis
from repro.models import TABLE2
from repro.util import measure

#: Smallest configuration of each Fig. 5 suite.
FIG5_CONFIGS = {
    "1/Bluetooth-1": "1+1",
    "2/Bluetooth-2": "1+1",
    "3/Bluetooth-3": "1+1",
    "4/BST-Insert": "1+1",
    "5/FileCrawler": "1•+2",
    "9/Dekker": "2•",
}

BENCHES = [
    b for b in TABLE2 if FIG5_CONFIGS.get(b.row) == b.config
]


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.row)
def test_fig5_point(bench, benchmark, report_sink):
    rows = report_sink(
        "Figure 5 — Cuba vs context-bounded baseline (scatter series)",
        [
            "suite", "safe?", "k",
            "cuba time(s)", "baseline time(s)",
            "cuba mem(MB)", "baseline mem(MB)",
            "winner(t)",
        ],
    )
    cpds, prop = bench.build()

    def run_pair():
        cuba = measure(lambda: Cuba(cpds, prop).verify(max_rounds=bench.max_rounds))
        bound = cuba.value.result.bound
        if cuba.value.trk_bound is not None:
            bound = max(bound, cuba.value.trk_bound)
        cpds2, prop2 = bench.build()  # fresh model: no warm caches
        baseline = measure(
            lambda: context_bounded_analysis(cpds2, prop2, bound=bound)
        )
        return cuba, baseline

    cuba, baseline = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    report = cuba.value

    # Verdict agreement: on unsafe rows both must find the bug; on safe
    # rows only Cuba concludes (CBA structurally cannot).
    if bench.safe:
        assert report.verdict is Verdict.SAFE
        assert baseline.value.verdict is Verdict.UNKNOWN
    else:
        assert report.verdict is Verdict.UNSAFE
        assert baseline.value.verdict is Verdict.UNSAFE
        assert baseline.value.bound == report.result.bound

    rows.append(
        [
            bench.row,
            "✓" if bench.safe else "✗",
            report.result.bound if not bench.safe else report.bound_text("trk"),
            f"{cuba.seconds:.2f}",
            f"{baseline.seconds:.2f}",
            f"{cuba.peak_mb:.1f}",
            f"{baseline.peak_mb:.1f}",
            "cuba" if cuba.seconds <= baseline.seconds else "baseline",
        ]
    )
