"""Experiment E1 — Table 2, the paper's main results table.

For every benchmark row: FCR status, verdict, the collapse bounds of
``(Rk)`` and ``(T(Rk))``, runtime and peak memory, printed side by side
with the paper's reported numbers.  The qualitative agreement asserted
here (verdicts, FCR, small kmax) is the reproduction target; absolute
times differ (Python explicit/symbolic engines vs the authors' C++
tool on a Xeon server).
"""

import pytest

from repro.core import Verdict
from repro.cuba import Cuba, check_fcr
from repro.models import TABLE2, runnable_benchmarks
from repro.util import measure

ROWS = runnable_benchmarks()


@pytest.mark.parametrize("bench", ROWS, ids=lambda b: b.name)
def test_table2_row(bench, benchmark, report_sink):
    rows = report_sink(
        "Table 2 — measured vs paper",
        [
            "program", "threads", "FCR?", "Safe?",
            "k(Rk)", "k(TRk)", "time(s)", "mem(MB)",
            "paper:k(Rk)", "paper:k(TRk)", "paper:t(s)", "paper:mem",
        ],
    )
    cpds, prop = bench.build()
    fcr = check_fcr(cpds)
    assert fcr.holds == bench.fcr

    def run():
        return measure(lambda: Cuba(cpds, prop).verify(max_rounds=bench.max_rounds))

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    report = outcome.value

    expected = Verdict.SAFE if bench.safe else Verdict.UNSAFE
    assert report.verdict is expected

    if report.verdict is Verdict.UNSAFE:
        k_rk = k_trk = f"({report.result.bound})"
    else:
        k_rk = report.bound_text("rk")
        k_trk = report.bound_text("trk")
    rows.append(
        [
            bench.row, bench.config,
            "●" if fcr.holds else "○",
            "✓" if report.verdict is Verdict.SAFE else "✗",
            k_rk, k_trk,
            f"{outcome.seconds:.2f}", f"{outcome.peak_mb:.1f}",
            bench.paper_k_rk, bench.paper_k_trk,
            bench.paper_time, bench.paper_mem,
        ]
    )


def test_table2_oom_rows(report_sink):
    """Rows the paper (and we) cannot complete: listed, not run."""
    rows = report_sink(
        "Table 2 — measured vs paper",
        ["program", "threads", "FCR?", "Safe?", "k(Rk)", "k(TRk)",
         "time(s)", "mem(MB)", "paper:k(Rk)", "paper:k(TRk)",
         "paper:t(s)", "paper:mem"],
    )
    skipped = [b for b in TABLE2 if b.skip_run]
    assert len(skipped) == 1
    for bench in skipped:
        rows.append(
            [bench.row, bench.config, "○", "—", "≥8", "≥8",
             "—", "OOM", bench.paper_k_rk, bench.paper_k_trk, "—", "OOM"]
        )
