"""Experiment E5 — Figure 4: deciding FCR via PSA loop analysis.

The paper determines FCR for the Fig. 1 and Fig. 2 programs by building
each thread's ``post*(Q×Σ≤1)`` store automaton and checking for loops:
the Fig. 1 automata are loop-free (FCR holds), the Fig. 2 automata have
self-loops (FCR fails).  This harness reproduces those verdicts and
times the analysis, including the per-thread PSA sizes.
"""

import pytest

from repro.cuba import check_fcr, thread_shallow_psa
from repro.models import TABLE2, fig1_cpds, fig2_cpds


@pytest.mark.parametrize(
    "name, build, expect_fcr",
    [("Fig. 1", fig1_cpds, True), ("Fig. 2", fig2_cpds, False)],
    ids=["fig1", "fig2"],
)
def test_fig4_verdict(name, build, expect_fcr, benchmark, report_sink):
    rows = report_sink(
        "Figure 4 — FCR determination",
        ["program", "thread", "PSA states", "PSA transitions", "loops?", "R(Q×Σ≤1) finite?"],
    )
    cpds = build()
    report = benchmark(lambda: check_fcr(cpds))
    assert report.holds == expect_fcr
    for index, pds in enumerate(cpds.threads):
        psa = thread_shallow_psa(pds)
        rows.append(
            [
                name,
                f"P{index + 1}",
                len(psa.automaton),
                psa.automaton.num_transitions(),
                "yes" if psa.has_loop() else "no",
                "yes" if psa.language_is_finite() else "no",
            ]
        )


def test_fcr_across_suite(report_sink):
    """FCR verdicts for every benchmark program (Table 2's FCR column)."""
    rows = report_sink(
        "FCR across the benchmark suite", ["program", "threads", "FCR", "paper"]
    )
    seen = set()
    for bench in TABLE2:
        if bench.skip_run or bench.row in seen:
            continue
        seen.add(bench.row)
        cpds, _prop = bench.build()
        report = check_fcr(cpds)
        assert report.holds == bench.fcr
        rows.append(
            [
                bench.row,
                bench.config,
                "●" if report.holds else "○",
                "●" if bench.fcr else "○",
            ]
        )
