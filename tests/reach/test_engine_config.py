"""EngineConfig and the deprecated per-knob keyword shim.

The old spellings (``jobs=``, ``batched=``, ``backend=``, ...) must keep
working on every public entry point while warning once per call; modern
``config=EngineConfig(...)`` callers must never warn.
"""

import pickle
import warnings

import pytest

from repro.core.property import AlwaysSafe
from repro.models import fig1_cpds
from repro.reach.config import EngineConfig, merge_legacy_kwargs
from repro.reach.explicit import ExplicitReach
from repro.reach.symbolic import SymbolicReach


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.jobs == 1
        assert config.batched is True
        assert config.backend == "auto"
        assert config.shard_replay is True
        assert config.shard_min_work is None
        assert config.incremental is True

    def test_replace_returns_new_frozen_instance(self):
        config = EngineConfig()
        changed = config.replace(jobs=4, backend="csr")
        assert changed.jobs == 4 and changed.backend == "csr"
        assert config.jobs == 1  # original untouched
        with pytest.raises(Exception):
            changed.jobs = 8  # frozen

    def test_picklable_for_worker_processes(self):
        config = EngineConfig(jobs=3, shard_min_work=128)
        assert pickle.loads(pickle.dumps(config)) == config


class TestLegacyKwargShim:
    def test_merge_folds_and_warns(self):
        with pytest.deprecated_call(match="somewhere.*batched, jobs"):
            merged = merge_legacy_kwargs(None, "somewhere", jobs=2, batched=False)
        assert merged == EngineConfig(jobs=2, batched=False)

    def test_merge_none_values_silent(self):
        base = EngineConfig(jobs=5)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            merged = merge_legacy_kwargs(base, "somewhere", jobs=None, batched=None)
        assert merged is base

    def test_explicit_engine_legacy_kwarg_warns(self):
        with pytest.deprecated_call(match="ExplicitReach"):
            engine = ExplicitReach(fig1_cpds(), batched=False)
        assert engine.config.batched is False

    def test_symbolic_engine_legacy_kwarg_warns(self):
        with pytest.deprecated_call(match="SymbolicReach"):
            engine = SymbolicReach(fig1_cpds(), batched=False)
        assert engine.batched is False

    def test_scheme1_rk_legacy_kwarg_warns(self):
        from repro.cuba.scheme1 import scheme1_rk

        with pytest.deprecated_call(match="scheme1_rk"):
            result = scheme1_rk(fig1_cpds(), AlwaysSafe(), max_rounds=2, jobs=1)
        assert result is not None

    def test_cba_legacy_kwarg_warns(self):
        from repro.cuba.cba import context_bounded_analysis

        with pytest.deprecated_call(match="context_bounded_analysis"):
            context_bounded_analysis(fig1_cpds(), AlwaysSafe(), 2, batched=False)

    def test_cuba_legacy_kwarg_warns(self):
        from repro.cuba.verifier import Cuba

        with pytest.deprecated_call(match="Cuba"):
            verifier = Cuba(fig1_cpds(), AlwaysSafe(), jobs=2)
        assert verifier.config.jobs == 2

    def test_modern_config_path_never_warns(self):
        from repro.cuba.scheme1 import scheme1_rk
        from repro.cuba.verifier import Cuba

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ExplicitReach(fig1_cpds(), config=EngineConfig(batched=False))
            SymbolicReach(fig1_cpds(), config=EngineConfig(batched=False))
            Cuba(fig1_cpds(), AlwaysSafe(), config=EngineConfig(jobs=2))
            scheme1_rk(
                fig1_cpds(), AlwaysSafe(), max_rounds=2, config=EngineConfig()
            )

    def test_legacy_kwarg_overrides_config(self):
        # Explicit old-style value beats the config field, matching what
        # pre-shim call sites expect while they migrate.
        with pytest.deprecated_call():
            merged = merge_legacy_kwargs(
                EngineConfig(jobs=1), "somewhere", jobs=8
            )
        assert merged.jobs == 8
