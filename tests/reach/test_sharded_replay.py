"""Sharded-replay differential and invariant suite (PR 6).

Three-way differential: the serial engine (``jobs=1``), the PR 4
saturation-only fan-out (``jobs=2, shard_replay=False``) and the fully
sharded advance (``jobs=2`` with saturation AND member x edge replay on
the worker pool, ``shard_min_work=0`` so every level shards) must
produce identical global-state levels, identical ``T(Rk)`` sequences,
and *exact* METER equality — parallel replay moves work across
processes, it must not create, skip, or double-count any.  On every
mode the batching invariant ``expansions + context_cache_hits ==
level_unique_views`` must hold over the summed shards.

Run on every FCR registry row and on ≥40 random CPDS seeds (non-FCR
instances must diverge identically in all three modes), plus witness
validation for traces reconstructed through the sharded merge path.
"""

import pytest

from repro.errors import ContextExplosionError
from repro.models.random_gen import RandomSpec, random_cpds
from repro.models.registry import smallest_per_row
from repro.reach import parallel
from repro.reach.explicit import ExplicitReach
from repro.reach.witness import validate_trace
from repro.util.meter import METER

K = 2

FCR_BENCHES = smallest_per_row(lambda b: b.fcr)

METER_KEYS = (
    "explicit.expansions",
    "explicit.level_views",
    "explicit.level_unique_views",
    "explicit.context_cache_hits",
    "explicit.context_cache_misses",
)


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    parallel.pool_cache_clear()


def _three_engines(cpds, max_states=None):
    """serial / saturation-only / fully-sharded, in that order."""
    kwargs = {"track_traces": False}
    if max_states is not None:
        kwargs["max_states_per_context"] = max_states
    return [
        ExplicitReach(cpds, jobs=1, **kwargs),
        ExplicitReach(cpds, jobs=2, shard_replay=False, **kwargs),
        ExplicitReach(cpds, jobs=2, shard_min_work=0, **kwargs),
    ]


def _run_with_meter(engine, k_max):
    before = METER.snapshot()
    engine.ensure_level(k_max)
    return METER.delta(before)


def _assert_agreement(engines, deltas, k_max, context="", require_shards=True):
    for k in range(k_max + 1):
        assert (
            engines[0].states_new_at(k)
            == engines[1].states_new_at(k)
            == engines[2].states_new_at(k)
        ), f"{context} k={k}: levels disagree"
        assert (
            engines[0].visible_new_at(k)
            == engines[1].visible_new_at(k)
            == engines[2].visible_new_at(k)
        ), f"{context} k={k}: visible projections disagree"
    for key in METER_KEYS:
        assert (
            deltas[0].get(key, 0) == deltas[1].get(key, 0) == deltas[2].get(key, 0)
        ), f"{context} METER {key}: {[d.get(key, 0) for d in deltas]}"
    # The batching invariant over the summed shards, on every mode.
    for mode, delta in zip(("serial", "saturation-only", "sharded"), deltas):
        assert delta.get("explicit.expansions", 0) + delta.get(
            "explicit.context_cache_hits", 0
        ) == delta.get("explicit.level_unique_views", 0), f"{context} {mode}"
    # The fully sharded engine actually took the sharded path (edge-less
    # instances legitimately ship zero units — callers relax the check).
    if require_shards:
        assert deltas[2].get("explicit.replay_shards", 0) > 0, context
    assert deltas[1].get("explicit.replay_shards", 0) == 0, context


class TestThreeWayDifferential:
    @pytest.mark.parametrize("bench", FCR_BENCHES, ids=lambda b: b.row)
    def test_registry_rows(self, bench):
        cpds, _prop = bench.build()
        engines = _three_engines(cpds)
        deltas = [_run_with_meter(engine, K) for engine in engines]
        _assert_agreement(engines, deltas, K, context=bench.row)

    @pytest.mark.parametrize("seed", range(40))
    def test_randomized(self, seed):
        """Random CPDSs agree level for level with exact METER equality;
        non-FCR instances diverge in every mode."""
        spec = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=5)
        cpds = random_cpds(seed, spec)
        engines = _three_engines(cpds, max_states=300)
        deltas = []
        exploded = []
        for engine in engines:
            try:
                deltas.append(_run_with_meter(engine, K))
                exploded.append(False)
            except ContextExplosionError:
                deltas.append(None)
                exploded.append(True)
        assert exploded[0] == exploded[1] == exploded[2], (
            f"seed {seed}: divergence disagrees across modes: {exploded}"
        )
        if exploded[0]:
            return
        # A new state past level 0 can only come from replaying an edge,
        # so its existence proves the sharded path had units to ship.
        grew = any(engines[0].states_new_at(k) for k in range(1, K + 1))
        _assert_agreement(
            engines, deltas, K, context=f"seed {seed}", require_shards=grew
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_sharded_traces_are_real_executions(self, seed):
        """Witness parents recorded through the shard merge pass (the
        worker's parents-first row order + the parent's ``intern_packed``
        dedup) reconstruct traces that replay against the CPDS step
        semantics."""
        spec = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=4)
        cpds = random_cpds(seed, spec)
        engine = ExplicitReach(cpds, max_states_per_context=300, jobs=2,
                               shard_min_work=0)
        try:
            engine.ensure_level(K)
        except ContextExplosionError:
            pytest.skip("non-FCR instance")
        for state in engine.states_up_to(K):
            validate_trace(cpds, engine.trace(state))


class TestShardGating:
    def test_work_threshold_keeps_small_levels_serial(self):
        """Below ``shard_min_work`` the replay stays in-process — no
        shard units are ever shipped — and results are unchanged."""
        cpds, _prop = FCR_BENCHES[0].build()
        engine = ExplicitReach(
            cpds, track_traces=False, jobs=2, shard_min_work=10**9
        )
        before = METER.snapshot()
        engine.ensure_level(K)
        delta = METER.delta(before)
        assert delta.get("explicit.replay_shards", 0) == 0
        oracle = ExplicitReach(cpds, track_traces=False, jobs=1)
        oracle.ensure_level(K)
        assert engine.states_up_to(K) == oracle.states_up_to(K)

    def test_shard_replay_off_never_shards(self):
        cpds, _prop = FCR_BENCHES[0].build()
        engine = ExplicitReach(
            cpds, track_traces=False, jobs=2, shard_replay=False,
            shard_min_work=0,
        )
        before = METER.snapshot()
        engine.ensure_level(K)
        assert METER.delta(before).get("explicit.replay_shards", 0) == 0

    def test_replay_only_mode_leases_a_pool(self):
        """``parallel_saturation=False`` (the bench ``shard`` sub-mode)
        saturates in-process but still fans the replay out."""
        cpds, _prop = FCR_BENCHES[0].build()
        engine = ExplicitReach(
            cpds, track_traces=False, jobs=2, parallel_saturation=False,
            shard_min_work=0,
        )
        before = METER.snapshot()
        engine.ensure_level(K)
        delta = METER.delta(before)
        assert delta.get("explicit.replay_shards", 0) > 0
        oracle = ExplicitReach(cpds, track_traces=False, jobs=1)
        oracle.ensure_level(K)
        assert engine.states_up_to(K) == oracle.states_up_to(K)

    def test_stats_and_validation(self):
        cpds, _prop = FCR_BENCHES[0].build()
        engine = ExplicitReach(cpds, jobs=2)
        assert engine.stats()["shard_replay"] is True
        assert ExplicitReach(cpds, jobs=2, shard_replay=False).stats()[
            "shard_replay"
        ] is False
        with pytest.raises(ValueError):
            ExplicitReach(cpds, jobs=2, shard_min_work=-1)


class TestShardedSnapshotResume:
    def test_restore_carries_the_execution_knobs(self):
        """A snapshot taken on a serial engine resumes with the sharded
        advance (pure execution knobs) and continues identically."""
        cpds, _prop = FCR_BENCHES[0].build()
        origin = ExplicitReach(cpds, track_traces=False, jobs=1)
        origin.ensure_level(1)
        blob = origin.snapshot()
        resumed = ExplicitReach.restore(cpds, blob, jobs=2)
        assert resumed.jobs == 2 and resumed.shard_replay is True
        resumed.shard_min_work = 0
        resumed.ensure_level(K)
        oracle = ExplicitReach(cpds, track_traces=False, jobs=1)
        oracle.ensure_level(K)
        for k in range(K + 1):
            assert resumed.states_new_at(k) == oracle.states_new_at(k)
        frozen = ExplicitReach.restore(cpds, blob, jobs=1, shard_replay=False)
        assert frozen.shard_replay is False
