"""Batched frontier expansion ≡ per-state expansion, level for level.

:meth:`SymbolicReach.advance` groups each level's thread views by
``(thread, shared, signature)`` and expands every unique view once; the
per-state path (``batched=False``) is the seed behavior kept as the
differential oracle.  The two must produce identical symbolic-state
levels and identical ``T(Sk)`` sequences on every registry model, and
METER must confirm the batching invariant: one saturation per unique
view per level (none at all for views already memoized across levels).
"""

import pytest

from repro.models.registry import smallest_per_row
from repro.reach.symbolic import SymbolicReach
from repro.util.meter import METER, scoped

K = 3

FCR_BENCHES = smallest_per_row(lambda b: b.fcr)
ALL_BENCHES = smallest_per_row()


def _signature_levels(engine):
    return [
        frozenset((s.shared, s.signatures) for s in level) for level in engine.levels
    ]


@pytest.mark.parametrize("bench", ALL_BENCHES, ids=lambda b: b.row)
def test_batched_levels_match_per_state_levels(bench):
    cpds, _prop = bench.build()
    batched = SymbolicReach(cpds, batched=True)
    per_state = SymbolicReach(cpds, batched=False)
    batched.ensure_level(K)
    per_state.ensure_level(K)
    assert _signature_levels(batched) == _signature_levels(per_state)
    for k in range(K + 1):
        assert batched.visible_up_to(k) == per_state.visible_up_to(k), f"k={k}"
        assert batched.visible_new_at(k) == per_state.visible_new_at(k), f"k={k}"


@pytest.mark.parametrize("bench", FCR_BENCHES[:3], ids=lambda b: b.row)
def test_batched_matches_non_incremental_per_state(bench):
    """Cross both axes: batched+incremental vs per-state without any
    cross-level memo (the fully naive path)."""
    cpds, _prop = bench.build()
    fast = SymbolicReach(cpds, incremental=True, batched=True)
    naive = SymbolicReach(cpds, incremental=False, batched=False)
    fast.ensure_level(K)
    naive.ensure_level(K)
    assert _signature_levels(fast) == _signature_levels(naive)


@pytest.mark.parametrize("bench", ALL_BENCHES[:4], ids=lambda b: b.row)
def test_one_expansion_per_unique_view_per_level(bench):
    """METER invariant: without the cross-level memo, the number of
    saturations per level equals the number of unique views; with it,
    saturations can only be fewer (memoized views are free)."""
    cpds, _prop = bench.build()
    engine = SymbolicReach(cpds, incremental=False, batched=True)
    for _ in range(K):
        with scoped() as level_work:
            engine.advance()
        unique = level_work.get("symbolic.level_unique_views", 0)
        expansions = level_work.get("symbolic.expansions", 0)
        views = level_work.get("symbolic.level_views", 0)
        assert expansions == unique, (
            f"level {engine.k}: {expansions} saturations for {unique} unique views"
        )
        assert views >= unique

    memo = SymbolicReach(cpds, incremental=True, batched=True)
    before = METER.snapshot()
    memo.ensure_level(K)
    delta = METER.delta(before)
    assert delta.get("symbolic.expansions", 0) <= delta.get(
        "symbolic.level_unique_views", 0
    )


def test_per_state_mode_expands_duplicates():
    """Sanity check that the oracle really is less shared: on a model
    whose frontier repeats thread views (FileCrawler), the per-state
    non-incremental path saturates strictly more often than batching."""
    bench = next(b for b in ALL_BENCHES if b.row.startswith("5/"))
    cpds, _prop = bench.build()
    with scoped() as batched_work:
        SymbolicReach(cpds, incremental=False, batched=True).ensure_level(K)
    with scoped() as per_state_work:
        SymbolicReach(cpds, incremental=False, batched=False).ensure_level(K)
    assert (
        per_state_work["symbolic.expansions"] > batched_work["symbolic.expansions"]
    )
