"""Symbolic engine tests: Fig. 1 cross-validation and Fig. 2 (Ex. 8).

Fig. 2 is the decisive case: its per-context reachable sets are infinite
(no FCR), so only the symbolic engine can analyze it.
"""

import pytest

from repro.cpds import GlobalState, VisibleState
from repro.models import fig1_cpds, fig2_cpds
from repro.models.figure2 import BOTTOM
from repro.pds import EMPTY
from repro.reach import ExplicitReach, SymbolicReach
from repro.reach.symbolic import nfa_tops, word_nfa


def gs(shared, stack1, stack2):
    return GlobalState(shared, (tuple(stack1), tuple(stack2)))


class TestWordNfa:
    def test_accepts_exactly_the_word(self):
        nfa = word_nfa(("a", "b"))
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["a", "b", "b"])
        assert not nfa.accepts([])

    def test_empty_word(self):
        nfa = word_nfa(())
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])


class TestNfaTops:
    def test_tops_of_word(self):
        assert nfa_tops(word_nfa(("a", "b"))) == frozenset({"a"})

    def test_tops_of_empty_word(self):
        assert nfa_tops(word_nfa(())) == frozenset({EMPTY})

    def test_tops_through_epsilon(self):
        from repro.automata import EPSILON, NFA

        nfa = NFA(initial=["i"], accepting=["f"])
        nfa.add_transition("i", EPSILON, "m")
        nfa.add_transition("m", "x", "f")
        assert nfa_tops(nfa) == frozenset({"x"})

    def test_dead_edges_ignored(self):
        from repro.automata import NFA

        nfa = NFA(initial=["i"], accepting=["f"])
        nfa.add_transition("i", "x", "f")
        nfa.add_transition("i", "y", "junk")
        assert nfa_tops(nfa) == frozenset({"x"})


class TestFig1CrossValidation:
    """On an FCR program both engines must agree on every T level."""

    def test_visible_levels_agree_with_explicit(self):
        explicit = ExplicitReach(fig1_cpds())
        symbolic = SymbolicReach(fig1_cpds())
        explicit.ensure_level(7)
        symbolic.ensure_level(7)
        for k in range(8):
            assert symbolic.visible_up_to(k) == explicit.visible_up_to(k), f"k={k}"

    def test_membership_matches_explicit(self):
        explicit = ExplicitReach(fig1_cpds())
        symbolic = SymbolicReach(fig1_cpds())
        explicit.ensure_level(4)
        symbolic.ensure_level(4)
        for k in (1, 2, 3, 4):
            for state in explicit.states_up_to(k):
                assert symbolic.accepts(state, k), f"{state} missing at k={k}"

    def test_does_not_accept_unreachable(self):
        symbolic = SymbolicReach(fig1_cpds())
        symbolic.ensure_level(4)
        assert not symbolic.accepts(gs(0, [2], [4]))
        assert not symbolic.accepts(gs(3, [1], [4]))

    def test_initial_level(self):
        symbolic = SymbolicReach(fig1_cpds())
        assert symbolic.visible_up_to(0) == frozenset(
            {VisibleState(0, (1, 4))}
        )
        assert symbolic.accepts(fig1_cpds().initial_state(), 0)


class TestFig2Example8:
    """Ex. 8: ⟨1|4,9⟩ ∈ R2 \\ R1; the sequence (Rk) collapses at 2."""

    @pytest.fixture(scope="class")
    def symbolic(self):
        engine = SymbolicReach(fig2_cpds())
        engine.ensure_level(4)
        return engine

    def test_witness_in_r2(self, symbolic):
        witness = gs(1, [4], [9])
        assert symbolic.accepts(witness, 2)

    def test_witness_not_in_r1(self, symbolic):
        witness = gs(1, [4], [9])
        assert not symbolic.accepts(witness, 1)

    def test_unbounded_recursion_within_one_context(self, symbolic):
        # foo can push 2 (4)^n within its very first context.
        for depth in (1, 2, 3):
            state = gs(0, [2] + [4] * depth, [6])
            assert symbolic.accepts(state, 1), f"depth {depth}"

    def test_initial_state_accepted(self, symbolic):
        assert symbolic.accepts(gs(BOTTOM, [2], [6]), 0)

    def test_sampled_r3_states_already_in_r2(self, symbolic):
        """R2 = R3 (Ex. 8): every small state in γ(S3) is in γ(S2)."""
        from itertools import product

        alphabet1 = [2, 3, 4, 5]
        alphabet2 = [6, 7, 8, 9]
        stacks1 = [()] + [tuple(w) for n in (1, 2) for w in product(alphabet1, repeat=n)]
        stacks2 = [()] + [tuple(w) for n in (1, 2) for w in product(alphabet2, repeat=n)]
        for shared in (BOTTOM, 0, 1):
            for stack1 in stacks1:
                for stack2 in stacks2:
                    state = GlobalState(shared, (stack1, stack2))
                    if symbolic.accepts(state, 3):
                        assert symbolic.accepts(state, 2), f"{state} new at 3"
