"""Explicit engine tests, centered on the paper's Fig. 1 golden table."""

import pytest

from repro.cpds import GlobalState, VisibleState
from repro.models import fig1_cpds
from repro.pds import EMPTY
from repro.reach import ExplicitReach


def gs(shared, stack1, stack2):
    return GlobalState(shared, (tuple(stack1), tuple(stack2)))


def vs(shared, top1, top2):
    return VisibleState(shared, (top1, top2))


#: The reachability table of Fig. 1 (right), rows Rk \ Rk−1 for k = 0..6.
FIG1_LEVELS = [
    {gs(0, [1], [4])},
    {gs(1, [2], [4]), gs(0, [1], [])},
    {gs(2, [2], [5]), gs(1, [2], []), gs(3, [2], [4, 6])},
    {gs(0, [1], [4, 6]), gs(1, [2], [4, 6])},
    {gs(0, [1], [6]), gs(2, [2], [5, 6]), gs(3, [2], [4, 6, 6])},
    {gs(0, [1], [4, 6, 6]), gs(1, [2], [4, 6, 6]), gs(1, [2], [6])},
    {gs(0, [1], [6, 6]), gs(2, [2], [5, 6, 6]), gs(3, [2], [4, 6, 6, 6])},
]

#: The visible-state column T(Rk) \ T(Rk−1) of Fig. 1 for k = 0..6.
FIG1_VISIBLE_LEVELS = [
    {vs(0, 1, 4)},
    {vs(1, 2, 4), vs(0, 1, EMPTY)},
    {vs(2, 2, 5), vs(1, 2, EMPTY), vs(3, 2, 4)},
    set(),
    {vs(0, 1, 6)},
    {vs(1, 2, 6)},
    set(),
]


@pytest.fixture
def engine():
    reach = ExplicitReach(fig1_cpds())
    reach.ensure_level(6)
    return reach


class TestFig1GoldenTable:
    def test_global_levels_match_paper(self, engine):
        for k, expected in enumerate(FIG1_LEVELS):
            assert engine.states_new_at(k) == expected, f"R{k} mismatch"

    def test_visible_levels_match_paper(self, engine):
        for k, expected in enumerate(FIG1_VISIBLE_LEVELS):
            assert engine.visible_new_at(k) == expected, f"T(R{k}) mismatch"

    def test_plateau_structure(self, engine):
        # (T(Rk)) plateaus at 2 (stuttering) and at 5 (Ex. 5 / Ex. 9).
        assert engine.visible_plateaued_at(3)
        assert not engine.visible_plateaued_at(4)
        assert not engine.visible_plateaued_at(5)
        assert engine.visible_plateaued_at(6)

    def test_global_sequence_never_plateaus_up_to_6(self, engine):
        # (Rk) diverges on Fig. 1 (Ex. 5): every level adds states.
        for k in range(1, 7):
            assert not engine.plateaued_at(k)

    def test_cumulative_counts(self, engine):
        assert len(engine.states_up_to(0)) == 1
        assert len(engine.states_up_to(2)) == 6
        assert len(engine.states_up_to(6)) == sum(len(level) for level in FIG1_LEVELS)

    def test_visible_up_to_is_union(self, engine):
        expected = set()
        for level in FIG1_VISIBLE_LEVELS[:5]:
            expected |= level
        assert engine.visible_up_to(4) == expected

    def test_monotone_cumulative_visible(self, engine):
        for k in range(1, 7):
            assert engine.visible_up_to(k - 1) <= engine.visible_up_to(k)


class TestTraces:
    def test_trace_to_initial_is_empty(self):
        reach = ExplicitReach(fig1_cpds())
        trace = reach.trace(fig1_cpds().initial_state())
        assert len(trace) == 0
        assert trace.n_contexts == 0

    def test_trace_to_deep_state(self, engine):
        target = gs(3, [2], [4, 6, 6])
        trace = engine.trace(target)
        assert trace.target == target
        assert trace.initial == fig1_cpds().initial_state()
        # Verify every step is a real transition of the claimed thread.
        from repro.cpds import global_successors

        current = trace.initial
        for step in trace.steps:
            options = {
                (thread, state)
                for thread, _a, state in global_successors(fig1_cpds(), current)
            }
            assert (step.thread, step.state) in options
            current = step.state

    def test_trace_context_count_bounded_by_level(self, engine):
        # A state first reached at bound k has a witness with ≤ k contexts.
        for k, level in enumerate(FIG1_LEVELS):
            for state in level:
                assert engine.trace(state).n_contexts <= k

    def test_trace_requires_tracking(self):
        reach = ExplicitReach(fig1_cpds(), track_traces=False)
        with pytest.raises(ValueError):
            reach.trace(fig1_cpds().initial_state())

    def test_trace_unknown_state(self, engine):
        with pytest.raises(KeyError):
            engine.trace(gs(0, [2], [4]))

    def test_find_visible(self, engine):
        found = engine.find_visible(vs(0, 1, 6))
        assert found is not None
        assert found.visible() == vs(0, 1, 6)
        assert engine.find_visible(vs(3, 1, 4)) is None

    def test_trace_str_formats_path(self, engine):
        trace = engine.trace(gs(1, [2], [4]))
        assert "f1[T1]" in str(trace)
