"""End-to-end: explicit and symbolic engines agree on ``T(Sk)``.

``γ(Sk) = Rk`` (paper App. E), so the two engines must produce identical
visible-projection sequences ``T(R0), T(R1), ...`` on every model both
support — i.e. every registry benchmark satisfying FCR (the explicit
engine's precondition).  The agreement must hold with incremental reuse
enabled *and* disabled, and the four runs must agree level by level,
which pins down both the cross-engine semantics and the exactness of the
incremental caches (expansion memoization, context-tree memoization).

One configuration per registry row — the smallest — keeps the quadratic
explicit product spaces tier-1-affordable; larger configurations change
constants, not semantics (they share the thread programs).
"""

import pytest

from repro.models.registry import smallest_per_row
from repro.reach.explicit import ExplicitReach
from repro.reach.symbolic import SymbolicReach

#: Context bound up to which the sequences are compared.
K = 3

BENCHES = smallest_per_row(lambda b: b.fcr)


def _visible_sequence(engine, k_max):
    engine.ensure_level(k_max)
    return tuple(engine.visible_up_to(k) for k in range(k_max + 1))


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.row)
def test_explicit_and_symbolic_tsk_sequences_match(bench):
    cpds, _prop = bench.build()
    runs = {
        "explicit+inc": ExplicitReach(cpds, track_traces=False, incremental=True),
        "explicit": ExplicitReach(cpds, track_traces=False, incremental=False),
        "symbolic+inc": SymbolicReach(cpds, incremental=True),
        "symbolic": SymbolicReach(cpds, incremental=False),
    }
    sequences = {name: _visible_sequence(engine, K) for name, engine in runs.items()}
    reference = sequences["explicit"]
    for name, sequence in sequences.items():
        assert sequence == reference, (
            f"{bench.row}: T(Sk) sequence of {name} diverges from the "
            f"cache-free explicit engine at some k <= {K}"
        )
    # Per-level increments must agree too (they derive from the same
    # cumulative sets, but this pins _record_visible bookkeeping).
    for name, engine in runs.items():
        for k in range(K + 1):
            assert engine.visible_new_at(k) == runs["explicit"].visible_new_at(k)


@pytest.mark.parametrize("bench", BENCHES[:2], ids=lambda b: b.row)
def test_symbolic_membership_matches_explicit_states(bench):
    """Spot check beyond projections: every explicitly reached global
    state is accepted by the symbolic state sets at the same bound."""
    cpds, _prop = bench.build()
    explicit = ExplicitReach(cpds, track_traces=False)
    symbolic = SymbolicReach(cpds)
    explicit.ensure_level(K)
    symbolic.ensure_level(K)
    for k in range(K + 1):
        for state in explicit.states_up_to(k):
            assert symbolic.accepts(state, k), (state, k)
