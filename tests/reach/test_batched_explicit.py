"""Sharded/batched explicit expansion ≡ seed per-state expansion.

:meth:`ExplicitReach.advance` shards each frontier level by the moving
thread's interned local view ``(thread, shared_id, stack_id)`` and
saturates every unique view once, replaying the id-encoded context tree
across the shard; the per-state path (``batched=False``) is the seed
behavior kept as the differential oracle.  The two must produce
identical global-state levels and identical ``T(Rk)`` sequences on
every FCR registry row and on randomized CPDSs, and METER must confirm
the batching invariant: one ``thread_context_post``-grade saturation
per unique view per level (none at all for views already memoized
across levels)."""

import pytest

from repro.errors import ContextExplosionError
from repro.models.random_gen import RandomSpec, random_cpds
from repro.models.registry import smallest_per_row
from repro.reach.explicit import ExplicitReach
from repro.reach.witness import validate_trace
from repro.util.meter import METER, scoped

K = 3

FCR_BENCHES = smallest_per_row(lambda b: b.fcr)


def _levels(engine, k_max):
    engine.ensure_level(k_max)
    return [engine.states_new_at(k) for k in range(k_max + 1)]


@pytest.mark.parametrize("bench", FCR_BENCHES, ids=lambda b: b.row)
def test_batched_levels_match_per_state_levels(bench):
    cpds, _prop = bench.build()
    batched = ExplicitReach(cpds, track_traces=False, batched=True)
    per_state = ExplicitReach(cpds, track_traces=False, batched=False)
    assert _levels(batched, K) == _levels(per_state, K)
    for k in range(K + 1):
        assert batched.visible_up_to(k) == per_state.visible_up_to(k), f"k={k}"
        assert batched.visible_new_at(k) == per_state.visible_new_at(k), f"k={k}"
    assert batched.first_seen == per_state.first_seen


@pytest.mark.parametrize("bench", FCR_BENCHES[:3], ids=lambda b: b.row)
def test_batched_matches_non_incremental_per_state(bench):
    """Cross both axes: batched+incremental vs per-state without any
    cross-level memo (the fully naive seed path)."""
    cpds, _prop = bench.build()
    fast = ExplicitReach(cpds, track_traces=False, incremental=True, batched=True)
    naive = ExplicitReach(cpds, track_traces=False, incremental=False, batched=False)
    assert _levels(fast, K) == _levels(naive, K)


@pytest.mark.parametrize("bench", FCR_BENCHES[:4], ids=lambda b: b.row)
def test_one_expansion_per_unique_view_per_level(bench):
    """METER invariant: without the cross-level memo, the number of
    context saturations per level equals the number of unique
    ``(thread, shared, local-view)`` shards; with it, saturations can
    only be fewer and every shard is accounted for as a saturation or a
    cache hit."""
    cpds, _prop = bench.build()
    engine = ExplicitReach(cpds, track_traces=False, incremental=False, batched=True)
    for _ in range(K):
        with scoped() as level_work:
            engine.advance()
        unique = level_work.get("explicit.level_unique_views", 0)
        expansions = level_work.get("explicit.expansions", 0)
        views = level_work.get("explicit.level_views", 0)
        assert expansions == unique, (
            f"level {engine.k}: {expansions} saturations for {unique} unique views"
        )
        assert views >= unique

    memo = ExplicitReach(cpds, track_traces=False, incremental=True, batched=True)
    before = METER.snapshot()
    memo.ensure_level(K)
    delta = METER.delta(before)
    unique = delta.get("explicit.level_unique_views", 0)
    assert delta.get("explicit.expansions", 0) <= unique
    assert (
        delta.get("explicit.expansions", 0)
        + delta.get("explicit.context_cache_hits", 0)
        == unique
    )


def test_per_state_mode_expands_duplicates():
    """Sanity check that the oracle really is less shared: on a model
    whose frontier repeats thread views (FileCrawler), the per-state
    non-incremental path saturates strictly more often than sharding."""
    bench = next(b for b in FCR_BENCHES if b.row.startswith("5/"))
    cpds, _prop = bench.build()
    with scoped() as batched_work:
        ExplicitReach(
            cpds, track_traces=False, incremental=False, batched=True
        ).ensure_level(K)
    with scoped() as per_state_work:
        ExplicitReach(
            cpds, track_traces=False, incremental=False, batched=False
        ).ensure_level(K)
    assert (
        per_state_work["explicit.expansions"] > batched_work["explicit.expansions"]
    )


@pytest.mark.parametrize("n_threads", [15, 16, 17, 20])
def test_many_threads_views_do_not_alias(n_threads):
    """The packed view key's thread field is sized per engine: with more
    than 16 threads a fixed 4-bit field would silently alias views (a
    thread index spilling into the stack-id field) and corrupt Rk."""
    spec = RandomSpec(
        n_threads=n_threads, n_shared=2, n_symbols=2, rules_per_thread=2
    )
    cpds = random_cpds(7, spec)
    batched = ExplicitReach(
        cpds, max_states_per_context=200, track_traces=False, batched=True
    )
    per_state = ExplicitReach(
        cpds, max_states_per_context=200, track_traces=False, batched=False
    )
    exploded = [False, False]
    for position, engine in enumerate((batched, per_state)):
        try:
            engine.ensure_level(2)
        except ContextExplosionError:
            exploded[position] = True
    assert exploded[0] == exploded[1]
    if not exploded[0]:
        for k in range(3):
            assert batched.states_new_at(k) == per_state.states_new_at(k)


@pytest.mark.parametrize("seed", range(40))
def test_randomized_differential(seed):
    """Randomized CPDSs: batched and per-state engines agree level for
    level; divergent (non-FCR) instances must diverge identically."""
    spec = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=5)
    cpds = random_cpds(seed, spec)
    batched = ExplicitReach(
        cpds, max_states_per_context=300, track_traces=False, batched=True
    )
    per_state = ExplicitReach(
        cpds, max_states_per_context=300, track_traces=False, batched=False
    )
    exploded = [False, False]
    for position, engine in enumerate((batched, per_state)):
        try:
            engine.ensure_level(K)
        except ContextExplosionError:
            exploded[position] = True
    assert exploded[0] == exploded[1], f"seed {seed}: divergence disagrees"
    if exploded[0]:
        return
    for k in range(K + 1):
        assert batched.states_new_at(k) == per_state.states_new_at(k), (
            f"seed {seed}, k={k}"
        )
        assert batched.visible_new_at(k) == per_state.visible_new_at(k)


@pytest.mark.parametrize("seed", range(10))
def test_randomized_batched_traces_are_real_executions(seed):
    """Every witness the batched engine reconstructs replays against the
    CPDS step semantics (the guarantee behind UNSAFE counterexamples)."""
    spec = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=4)
    cpds = random_cpds(seed, spec)
    engine = ExplicitReach(cpds, max_states_per_context=300, batched=True)
    try:
        engine.ensure_level(2)
    except ContextExplosionError:
        pytest.skip("non-FCR instance")
    for state in engine.states_up_to(2):
        validate_trace(cpds, engine.trace(state))  # raises on illegal steps


@pytest.mark.parametrize("batched", [True, False], ids=["batched", "per-state"])
def test_divergence_rolls_back_partial_level(batched):
    """A ContextExplosionError mid-advance must leave the interned core
    exactly as before the call: no half-committed states in first_seen
    or the table, and stats consistent (sum of levels == n_states)."""
    from repro.models import fig2_cpds

    cpds = fig2_cpds()  # diverges within one context
    engine = ExplicitReach(cpds, max_states_per_context=5, batched=batched)
    n_before = engine.n_states
    keys_before = len(engine.table)
    k_before = engine.k
    with pytest.raises(ContextExplosionError):
        engine.ensure_level(3)
    assert engine.n_states == n_before
    assert len(engine.table) == keys_before
    assert engine.k == k_before
    assert sum(len(level) for level in engine.levels) == engine.n_states
    assert engine.states_up_to() == frozenset([cpds.initial_state()])
    # The initial state's witness entry survives; nothing dangles.
    assert len(engine.trace(cpds.initial_state())) == 0


def test_warm_start_after_plateau_query():
    """Regression: querying observations at the plateau and then asking
    ``ensure_level`` for more rounds must keep the interned core
    consistent (empty levels, stable cumulative sets, no new work)."""
    bench = next(b for b in FCR_BENCHES if b.row.startswith("9/"))
    cpds, _prop = bench.build()
    engine = ExplicitReach(cpds, batched=True)
    while not engine.plateaued_at(engine.k):
        engine.advance()
    k0 = engine.k
    states_at_plateau = engine.states_up_to()
    visible_at_plateau = engine.visible_up_to()
    n_states = engine.n_states
    with scoped() as warm_work:
        engine.ensure_level(k0 + 2)
    assert engine.k == k0 + 2
    for k in range(k0, k0 + 3):
        assert engine.plateaued_at(k)
        assert engine.states_new_at(k) == frozenset()
    assert engine.states_up_to() == states_at_plateau
    assert engine.visible_up_to() == visible_at_plateau
    assert engine.n_states == n_states
    # An empty frontier shards into zero views: no saturation happens.
    assert warm_work.get("explicit.expansions", 0) == 0
    assert warm_work.get("explicit.level_unique_views", 0) == 0
