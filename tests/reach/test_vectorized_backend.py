"""Replay-backend differential and fallback suite (PR 8).

Three-way differential: the pure-python engine (``backend="python"``),
the vectorized serial engine (``backend="numpy"``, jobs=1) and the
vectorized sharded engine (``backend="numpy"``, jobs=2, every level
sharded) must produce identical global-state levels and *exact* METER
equality on the five-counter differential set — the backend changes how
a level replays, never what it computes.  At jobs=1 the guarantee is
stronger still: first-occurrence interning makes the numpy engine assign
the *same dense ids and witness parents* as the serial loop, asserted
directly.

Fallback contract: keys wider than int64 (forced here by widening the
packed-field geometry) must route the level to the pure-int loop
automatically — same results, ``explicit.replay_numpy_fallbacks``
bumped, zero vectorized views.  Without numpy, ``backend="auto"``
resolves to python and ``backend="numpy"`` is a constructor error.
"""

import pytest

from repro.cpds import interning
from repro.errors import ContextExplosionError
from repro.models.random_gen import RandomSpec, random_cpds
from repro.models.registry import smallest_per_row
from repro.reach import parallel, vectorized
from repro.reach.explicit import ExplicitReach
from repro.reach.witness import validate_trace
from repro.util.meter import METER

K = 2

FCR_BENCHES = smallest_per_row(lambda b: b.fcr)

METER_KEYS = (
    "explicit.expansions",
    "explicit.level_views",
    "explicit.level_unique_views",
    "explicit.context_cache_hits",
    "explicit.context_cache_misses",
)

HAVE_NUMPY = vectorized.numpy_available()
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    parallel.pool_cache_clear()


@pytest.fixture()
def no_numpy(monkeypatch):
    """Simulate a numpy-less environment for the resolution tests."""
    monkeypatch.setattr(vectorized, "_numpy", None)
    monkeypatch.setattr(vectorized, "_numpy_checked", True)


def _three_engines(cpds, max_states=None):
    """python / numpy-serial / numpy-sharded, in that order."""
    kwargs = {"track_traces": False}
    if max_states is not None:
        kwargs["max_states_per_context"] = max_states
    return [
        ExplicitReach(cpds, jobs=1, backend="python", **kwargs),
        ExplicitReach(cpds, jobs=1, backend="numpy", **kwargs),
        ExplicitReach(cpds, jobs=2, shard_min_work=0, backend="numpy", **kwargs),
    ]


def _run_with_meter(engine, k_max):
    before = METER.snapshot()
    engine.ensure_level(k_max)
    return METER.delta(before)


def _assert_agreement(engines, deltas, k_max, context=""):
    for k in range(k_max + 1):
        assert (
            engines[0].states_new_at(k)
            == engines[1].states_new_at(k)
            == engines[2].states_new_at(k)
        ), f"{context} k={k}: levels disagree"
        assert (
            engines[0].visible_new_at(k)
            == engines[1].visible_new_at(k)
            == engines[2].visible_new_at(k)
        ), f"{context} k={k}: visible projections disagree"
    for key in METER_KEYS:
        assert (
            deltas[0].get(key, 0) == deltas[1].get(key, 0) == deltas[2].get(key, 0)
        ), f"{context} METER {key}: {[d.get(key, 0) for d in deltas]}"
    # The batching invariant holds per backend and mode.
    for mode, delta in zip(("python", "numpy", "numpy-sharded"), deltas):
        assert delta.get("explicit.expansions", 0) + delta.get(
            "explicit.context_cache_hits", 0
        ) == delta.get("explicit.level_unique_views", 0), f"{context} {mode}"
    # The python engine never touches the vectorized path.
    assert deltas[0].get("explicit.replay_numpy_views", 0) == 0, context
    assert deltas[0].get("explicit.replay_numpy_fallbacks", 0) == 0, context


@needs_numpy
class TestThreeWayDifferential:
    @pytest.mark.parametrize("bench", FCR_BENCHES, ids=lambda b: b.row)
    def test_registry_rows(self, bench):
        cpds, _prop = bench.build()
        engines = _three_engines(cpds)
        deltas = [_run_with_meter(engine, K) for engine in engines]
        _assert_agreement(engines, deltas, K, context=bench.row)

    @pytest.mark.parametrize("seed", range(40))
    def test_randomized(self, seed):
        """Random CPDSs agree level for level with exact METER equality;
        non-FCR instances diverge identically on every backend."""
        spec = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=5)
        cpds = random_cpds(seed, spec)
        engines = _three_engines(cpds, max_states=300)
        deltas = []
        exploded = []
        for engine in engines:
            try:
                deltas.append(_run_with_meter(engine, K))
                exploded.append(False)
            except ContextExplosionError:
                deltas.append(None)
                exploded.append(True)
        assert exploded[0] == exploded[1] == exploded[2], (
            f"seed {seed}: divergence disagrees across backends: {exploded}"
        )
        if exploded[0]:
            return
        _assert_agreement(engines, deltas, K, context=f"seed {seed}")

    def test_vectorized_path_actually_engages(self):
        """The differential is vacuous if every view stays under the
        work floor: the biggest FCR row must vectorize some views.
        FileCrawler's level 3 replays ~16k member × edge pairs — well
        above NUMPY_MIN_WORK, where the small Bluetooth rows stay
        scalar by design."""
        cpds, _prop = next(
            b for b in FCR_BENCHES if "FileCrawler" in b.name
        ).build()
        engine = ExplicitReach(cpds, track_traces=False, backend="numpy")
        delta = _run_with_meter(engine, 3)
        assert delta.get("explicit.replay_numpy_views", 0) > 0
        assert delta.get("explicit.replay_numpy_fallbacks", 0) == 0

    def test_serial_numpy_assigns_identical_ids_and_parents(self):
        """jobs=1 numpy is bit-for-bit the serial loop: same dense id
        order, same packed column, same witness parents."""
        for bench in FCR_BENCHES[:3]:
            cpds, _prop = bench.build()
            py = ExplicitReach(cpds, backend="python")
            np_ = ExplicitReach(cpds, backend="numpy")
            py.ensure_level(K)
            np_.ensure_level(K)
            assert list(py.table._packed) == list(np_.table._packed), bench.row
            assert py._first_seen == np_._first_seen, bench.row
            assert py._parents == np_._parents, bench.row

    @pytest.mark.parametrize("seed", range(6))
    def test_numpy_sharded_traces_are_real_executions(self, seed):
        """Witness parents recorded through the vectorized worker rows
        (first-occurrence order preserves parents-first) reconstruct
        traces that replay against the CPDS step semantics."""
        spec = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=4)
        cpds = random_cpds(seed, spec)
        engine = ExplicitReach(
            cpds, max_states_per_context=300, jobs=2,
            shard_min_work=0, backend="numpy",
        )
        try:
            engine.ensure_level(K)
        except ContextExplosionError:
            pytest.skip("non-FCR instance")
        for state in engine.states_up_to(K):
            validate_trace(cpds, engine.trace(state))


@needs_numpy
class TestWideKeyFallback:
    def test_wide_keys_route_to_the_python_loop(self, monkeypatch):
        """With the packed fields widened past int64 (the PR 6 wide-key
        regime, forced via the initial field width) a numpy engine must
        fall back automatically and still match the python engine."""
        monkeypatch.setattr(interning, "_INITIAL_BITS", 40)
        cpds, _prop = FCR_BENCHES[0].build()
        py = ExplicitReach(cpds, backend="python")
        np_ = ExplicitReach(cpds, backend="numpy")
        assert not vectorized.table_fits_int64(np_.table)
        before = METER.snapshot()
        py.ensure_level(K)
        np_.ensure_level(K)
        delta = METER.delta(before)
        assert np_.resolved_backend == "numpy"  # the knob, not the route
        assert delta.get("explicit.replay_numpy_fallbacks", 0) > 0
        assert delta.get("explicit.replay_numpy_views", 0) == 0
        for k in range(K + 1):
            assert py.states_new_at(k) == np_.states_new_at(k)
        assert py._parents == np_._parents

    def test_wide_keys_route_sharded_units_to_the_python_loop(self, monkeypatch):
        """Workers re-check widths per unit: a wide-key sharded numpy
        engine produces the same levels as the serial python engine."""
        monkeypatch.setattr(interning, "_INITIAL_BITS", 40)
        cpds, _prop = FCR_BENCHES[0].build()
        py = ExplicitReach(cpds, track_traces=False, backend="python")
        sh = ExplicitReach(
            cpds, track_traces=False, jobs=2,
            shard_min_work=0, backend="numpy",
        )
        py.ensure_level(K)
        sh.ensure_level(K)
        for k in range(K + 1):
            assert py.states_new_at(k) == sh.states_new_at(k)

    def test_width_predicate_matches_the_geometry(self):
        cpds, _prop = FCR_BENCHES[0].build()
        engine = ExplicitReach(cpds, track_traces=False)
        assert vectorized.table_fits_int64(engine.table)
        assert not vectorized.unit_fits([1 << 70] * 64, list(range(64)))
        assert not vectorized.unit_fits([1] * 64, [1 << 70] + list(range(63)))
        assert vectorized.unit_fits([1] * 64, list(range(64)))


class TestBackendResolution:
    def test_unknown_backend_rejected(self):
        cpds, _prop = FCR_BENCHES[0].build()
        with pytest.raises(ValueError, match="backend"):
            ExplicitReach(cpds, backend="cuda")

    def test_auto_without_numpy_resolves_python(self, no_numpy):
        cpds, _prop = FCR_BENCHES[0].build()
        engine = ExplicitReach(cpds, backend="auto")
        assert engine.resolved_backend == "python"
        engine.ensure_level(1)
        assert engine.stats()["backend"] == "python"

    def test_forced_numpy_without_numpy_is_an_error(self, no_numpy):
        cpds, _prop = FCR_BENCHES[0].build()
        with pytest.raises(ValueError, match="numpy is not installed"):
            ExplicitReach(cpds, backend="numpy")

    @needs_numpy
    def test_auto_with_numpy_resolves_numpy(self):
        cpds, _prop = FCR_BENCHES[0].build()
        engine = ExplicitReach(cpds, backend="auto")
        assert engine.resolved_backend == "numpy"
        assert engine.stats()["backend"] == "numpy"

    def test_stats_report_the_backend(self):
        cpds, _prop = FCR_BENCHES[0].build()
        engine = ExplicitReach(cpds, backend="python")
        assert engine.stats()["backend"] == "python"


@needs_numpy
class TestSnapshotBackendKnob:
    def test_restore_swaps_the_backend(self):
        """The backend is a pure execution knob: a snapshot taken under
        numpy resumes under python (and vice versa) and continues
        identically — nothing backend-specific is serialized."""
        cpds, _prop = FCR_BENCHES[0].build()
        origin = ExplicitReach(cpds, backend="numpy")
        origin.ensure_level(1)
        blob = origin.snapshot()
        resumed = ExplicitReach.restore(cpds, blob, backend="python")
        assert resumed.resolved_backend == "python"
        resumed.ensure_level(K)
        oracle = ExplicitReach(cpds, backend="numpy")
        oracle.ensure_level(K)
        for k in range(K + 1):
            assert resumed.states_new_at(k) == oracle.states_new_at(k)
