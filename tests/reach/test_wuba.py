"""WUBA lane tests: the ``(Wk)`` levels against a naive write-counting
oracle, the WCR precondition, and the fixpoint property.

The oracle is a 0/1-BFS over :func:`repro.cpds.global_successors` with
weight 1 exactly on the *writing* actions (``to_shared != from_shared``)
— a direct transcription of the ``Wk`` definition with none of the
engine's factorized-closure machinery, so agreement proves the
commuting-closure decomposition, not just the code against itself.
"""

from collections import deque

import pytest

from repro.cpds.semantics import global_successors, thread_write_free_post
from repro.cuba.lanes import run_lane
from repro.core.property import AlwaysSafe, SharedStateReachability
from repro.core.result import Verdict
from repro.models import fig1_cpds, fig2_cpds
from repro.models.random_gen import RandomSpec, random_cpds
from repro.models.registry import smallest_per_row
from repro.reach.wuba import WubaReach, write_free_sub_pds


def oracle_levels(cpds, max_writes: int, cap: int = 200_000):
    """``W0..Wk`` by 0/1-BFS: ``dist[state]`` = min #writes to reach it
    (write-free edges cost 0 via appendleft, writes cost 1)."""
    start = cpds.initial_state()
    dist = {start: 0}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        # Re-queued states re-expand with their best-known distance —
        # wasteful but sound, and every improvement re-enqueues.
        d = dist[state]
        for _thread, action, nxt in global_successors(cpds, state):
            weight = 1 if action.to_shared != state.shared else 0
            nd = d + weight
            if nd > max_writes or dist.get(nxt, nd + 1) <= nd:
                continue
            dist[nxt] = nd
            if weight:
                queue.append(nxt)
            else:
                queue.appendleft(nxt)
            assert len(dist) <= cap, "oracle exploded"
    levels = [set() for _ in range(max_writes + 1)]
    for state, d in dist.items():
        levels[d].add(state)
    return [frozenset(level) for level in levels]


def wuba_applicable_rows():
    rows = []
    for bench in smallest_per_row():
        cpds, prop = bench.build()
        if WubaReach.applicable(cpds, prop):
            rows.append(pytest.param(cpds, id=bench.name))
    return rows


class TestAgainstOracle:
    def test_fig1_levels_match(self):
        cpds = fig1_cpds()
        engine = WubaReach(cpds)
        engine.ensure_level(6)
        assert engine.levels[:7] == oracle_levels(cpds, 6)

    @pytest.mark.parametrize("cpds", wuba_applicable_rows())
    def test_registry_rows_match(self, cpds):
        depth = 5
        engine = WubaReach(cpds)
        engine.ensure_level(depth)
        assert engine.levels[: depth + 1] == oracle_levels(cpds, depth)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_models_match(self, seed):
        cpds = random_cpds(seed, RandomSpec(rules_per_thread=5, push_bias=0.2))
        if not WubaReach.applicable(cpds):
            pytest.skip("random model violates WCR")
        engine = WubaReach(cpds)
        engine.ensure_level(4)
        assert engine.levels[:5] == oracle_levels(cpds, 4)

    def test_incremental_memo_is_pure(self):
        cpds = fig1_cpds()
        warm = WubaReach(cpds, incremental=True)
        cold = WubaReach(cpds, incremental=False)
        warm.ensure_level(5)
        cold.ensure_level(5)
        assert warm.levels == cold.levels


class TestFixpoint:
    """A ``(Wk)`` plateau is the full reachable set — cross-validated
    against the explicit engine's independent ``(Rk)`` fixpoint."""

    @pytest.mark.parametrize("cpds", wuba_applicable_rows())
    def test_plateau_equals_explicit_reachable_set(self, cpds):
        from repro.cuba.fcr import check_fcr
        from repro.reach.explicit import ExplicitReach

        if not check_fcr(cpds).holds:
            pytest.skip("explicit engine needs FCR")
        wuba = WubaReach(cpds)
        for _ in range(40):
            if not wuba.advance():
                break
        else:
            pytest.skip("no Wk plateau within 40 writes")
        explicit = ExplicitReach(cpds, track_traces=False)
        for _ in range(60):
            explicit.advance()
            if explicit.plateaued_at(explicit.k):
                break
        else:
            pytest.skip("no Rk plateau within 60 contexts")
        reachable = set()
        for k in range(explicit.k + 1):
            reachable |= explicit.states_new_at(k)
        assert wuba.states_up_to() == frozenset(reachable)

    def test_plateau_is_sticky(self):
        engine = WubaReach(fig1_cpds())
        engine.ensure_level(3)
        # fig1 never plateaus (stacks grow forever) — check the inverse.
        assert not engine.plateaued_at(3)


class TestApplicability:
    def test_fig1_satisfies_wcr(self):
        assert WubaReach.applicable(fig1_cpds())

    def test_fig2_violates_wcr(self):
        # Fig. 2's write-free loop pushes unboundedly: closures are
        # infinite, the lane must refuse up front.
        assert not WubaReach.applicable(fig2_cpds())

    def test_write_free_sub_pds_keeps_only_preserving_actions(self):
        pds = fig1_cpds().thread(0)
        sub = write_free_sub_pds(pds)
        assert all(a.to_shared == a.from_shared for a in sub.actions)
        kept = sum(1 for a in pds.actions if a.to_shared == a.from_shared)
        assert len(tuple(sub.actions)) == kept

    def test_thread_write_free_post_pins_shared(self):
        cpds = fig1_cpds()
        state = cpds.initial_state()
        closure = thread_write_free_post(
            cpds.thread(0), state.shared, state.stacks[0]
        )
        assert state.stacks[0] in closure  # reflexive


class TestVerdicts:
    def test_unsafe_shared_state_found_at_minimal_write_bound(self):
        result = run_lane(
            "wuba", fig1_cpds(), SharedStateReachability({3}), max_rounds=10
        )
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 3
        assert result.method == "scheme1(Wk)"

    def test_unknown_when_no_plateau(self):
        result = run_lane("wuba", fig1_cpds(), AlwaysSafe(), max_rounds=8)
        assert result.verdict is Verdict.UNKNOWN

    def test_safe_on_plateauing_model(self):
        for bench in smallest_per_row():
            cpds, prop = bench.build()
            if bench.row.startswith("9/"):
                result = run_lane("wuba", cpds, prop, max_rounds=30)
                assert result.verdict is Verdict.SAFE
                assert "collapse" in result.message
                return
        pytest.fail("Dekker row missing from registry")
