"""Lane-contract conformance: every registered lane, one parametrized
suite.

A lane that registers (:mod:`repro.reach.registry`) promises the full
engine contract of :class:`~repro.reach.base.ReachabilityEngine` — the
class attributes the dispatch surfaces read, ``applicable`` as the
precondition, ``create``/``snapshot``/``restore_engine`` for the
service, and a ``stats`` schema the bench payloads persist.  These
tests are what "adding a lane is one module" rests on: a new
``@register``-decorated class passes or fails this file, not a trail of
per-surface breakage.
"""

import warnings

import pytest

from repro.bench.runner import _METER_PREFIXES
from repro.models import fig1_cpds
from repro.reach import registry
from repro.reach.base import ReachabilityEngine
from repro.reach.config import EngineConfig
from repro.service.server import _METER_WINDOW_PREFIXES

LANES = registry.lane_names()


def lane_params():
    return [pytest.param(name, id=name) for name in LANES]


class TestRegistry:
    def test_builtin_lanes_registered(self):
        assert set(LANES) >= {"explicit", "symbolic", "wuba"}

    def test_aliases_resolve(self):
        assert registry.canonical_lane("rk") == "explicit"
        assert registry.canonical_lane("sk") == "symbolic"
        assert registry.canonical_lane("wk") == "wuba"
        assert registry.canonical_lane("Explicit") == "explicit"

    def test_unknown_lane_raises(self):
        from repro.errors import CubaError

        with pytest.raises(CubaError, match="registered lanes"):
            registry.canonical_lane("bdd")

    def test_snapshot_kinds_unique(self):
        kinds = [registry.engine_class(name).snapshot_kind for name in LANES]
        assert len(kinds) == len(set(kinds))

    def test_engine_for_kind_round_trips(self):
        for name in LANES:
            cls = registry.engine_class(name)
            assert registry.engine_for_kind(cls.snapshot_kind) is cls


class TestContract:
    @pytest.mark.parametrize("lane", lane_params())
    def test_attributes_well_formed(self, lane):
        cls = registry.engine_class(lane)
        assert issubclass(cls, ReachabilityEngine)
        assert cls.lane == lane
        assert cls.sequence_name
        assert cls.meter_prefix.endswith(".")
        assert cls.snapshot_kind > 0
        assert isinstance(cls.supports_witness, bool)
        assert cls.preferred_algorithm in ("scheme1", "algorithm3")

    @pytest.mark.parametrize("lane", lane_params())
    def test_meter_prefix_reaches_bench_and_service(self, lane):
        # The bench payloads and the service /meter window must both
        # persist a lane's work counters, or a new lane's perf work is
        # invisible to the trajectory gate.
        prefix = registry.engine_class(lane).meter_prefix
        assert prefix in _METER_PREFIXES
        assert prefix in _METER_WINDOW_PREFIXES

    @pytest.mark.parametrize("lane", lane_params())
    def test_applicable_returns_bool(self, lane):
        cls = registry.engine_class(lane)
        assert cls.applicable(fig1_cpds()) in (True, False)

    @pytest.mark.parametrize("lane", lane_params())
    def test_create_and_advance(self, lane):
        cpds = fig1_cpds()
        cls = registry.engine_class(lane)
        if not cls.applicable(cpds):
            pytest.skip(f"lane {lane} not applicable to fig1")
        engine = registry.create(lane, cpds, config=EngineConfig())
        assert engine.k == 0
        engine.advance()
        assert engine.k == 1
        assert engine.visible_up_to(1) >= engine.visible_up_to(0)

    @pytest.mark.parametrize("lane", lane_params())
    def test_snapshot_restore_round_trip(self, lane):
        cpds = fig1_cpds()
        cls = registry.engine_class(lane)
        if not cls.applicable(cpds):
            pytest.skip(f"lane {lane} not applicable to fig1")
        engine = cls.create(cpds)
        engine.advance()
        engine.advance()
        blob = engine.snapshot()
        from repro.service.snapshot import snapshot_kind

        assert snapshot_kind(blob) == cls.snapshot_kind
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            restored = cls.restore_engine(cpds, blob, config=EngineConfig())
        assert restored.k == engine.k
        for k in range(engine.k + 1):
            assert restored.visible_new_at(k) == engine.visible_new_at(k)
        # A restored engine must keep advancing identically.
        engine.advance()
        restored.advance()
        assert restored.visible_new_at(restored.k) == engine.visible_new_at(engine.k)

    @pytest.mark.parametrize("lane", lane_params())
    def test_stats_schema(self, lane):
        cpds = fig1_cpds()
        cls = registry.engine_class(lane)
        if not cls.applicable(cpds):
            pytest.skip(f"lane {lane} not applicable to fig1")
        engine = cls.create(cpds)
        engine.advance()
        stats = engine.stats()
        assert isinstance(stats, dict)
        assert "levels" in stats

    @pytest.mark.parametrize("lane", lane_params())
    def test_run_lane_dispatches(self, lane):
        from repro.core.property import AlwaysSafe
        from repro.cuba.lanes import run_lane

        cpds = fig1_cpds()
        cls = registry.engine_class(lane)
        if not cls.applicable(cpds):
            from repro.errors import CubaError

            with pytest.raises(CubaError, match="not applicable"):
                run_lane(lane, cpds, AlwaysSafe(), max_rounds=2)
            return
        result = run_lane(lane, cpds, AlwaysSafe(), max_rounds=2)
        assert cls.sequence_name in result.method
